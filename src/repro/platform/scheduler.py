"""The Scheduler: fetches datasets and dispatches queries to executor nodes.

Section III, step 2: "when the Scheduler receives the task, it fetches the
dataset and invokes an Executor node"; step 3: "the computation needed to
perform the task is off-loaded to the worker nodes"; step 4: "when the
computation is completed, results and logs are written to the datastore".

The scheduler owns the task table (so the Status component and the gateway
can look tasks up by id), materialises datasets from the catalog into the
datastore on first use and, when the last query finishes, serialises the
rankings into the datastore under the task's comparison id.

Dispatch is *batched and cached*: the queries of a task are grouped by
``(dataset, algorithm, parameters)``, queries whose ranking is already in the
platform-wide :class:`~repro.platform.cache.ResultCache` are answered without
touching an executor, and the remainder of each group is submitted as one
batched execution so the per-dataset work (CSR build, transition matrix) is
paid once per group instead of once per query.  Identical queries that are
in flight — whether from the same task or from concurrently submitted ones —
are deduplicated through a single-flight table, so the platform never
computes the same ranking twice concurrently.

Dispatch is also *event-driven*: every submission registers a
:class:`~repro.platform.jobs.JobRecord` in the scheduler's
:class:`~repro.platform.jobs.JobRegistry` and emits a typed event at every
state transition (``submitted``, ``query_started``, ``query_cached``,
``query_completed``, ``query_failed``, ``cancelled``, ``task_done``), so the
Status component, the REST long-poll/SSE endpoints and the CLI ``--follow``
renderer observe progress by reading the append-only per-job event log
instead of busy-polling counters.  :meth:`Scheduler.submit` returns as soon
as the job is registered — dataset materialisation, cache lookup and batch
execution all happen on the worker pool — and cancellation is cooperative:
:meth:`Scheduler.cancel` raises the job's flag, which is checked before
each batch group is dispatched.  A cancelled group's single-flight entries
are only abandoned when no *other* live job has joined them; shared keys
keep computing so one user's cancel can never poison a concurrent identical
query.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..algorithms.registry import get_algorithm
from ..datasets.catalog import DatasetCatalog
from ..exceptions import (
    DeadlineExceededError,
    JobCancelledError,
    StorageError,
    TaskNotFoundError,
)
from ..ranking.result import Ranking
from .cache import CacheKey, ResultCache, _canonical_parameters
from .datastore import DataStore
from .executor import ExecutorPool
from .jobs import JobRecord, JobRegistry, JobState
from .resilience import deadline_scope
from .tasks import Query, QuerySet, Task, TaskState
from .telemetry import add_span_event, child_span, trace_scope

__all__ = ["Scheduler"]

#: A group of same-(dataset, algorithm, parameters) queries: the group key
#: plus the (query index, query) members in task order.
GroupKey = Tuple[str, str, Tuple[Tuple[str, Any], ...]]


class Scheduler:
    """Dispatches tasks to the executor pool and records results.

    Parameters
    ----------
    datastore:
        Destination for results and logs; also owns the platform-wide
        :class:`~repro.platform.cache.ResultCache` consulted before any
        dispatch.  The scheduler works against the abstract store surface, so
        a :class:`~repro.platform.sharding.ShardedDataStore` (whose
        ``result_cache`` routes each key to the shard owning its dataset)
        drops in without any scheduling change.
    catalog:
        Source of datasets referenced by task queries.
    executor_pool:
        The pool of computational nodes that actually run the algorithms.
    job_registry:
        The registry job lifecycles and event logs live in; a fresh bounded
        :class:`~repro.platform.jobs.JobRegistry` is created when omitted.
    max_finished_tasks:
        Retention bound of the task table, mirroring the job registry's:
        active tasks are never evicted, but once the number of *terminal*
        tasks exceeds the bound the oldest ones are dropped from memory.
        Their permalinks keep resolving — results, rankings and status are
        served from the result payload persisted in the datastore — so the
        table no longer grows with lifetime submission count.
    """

    #: Default terminal-task retention (mirrors the job registry's bound at
    #: a multiple that keeps weeks of permalinks hot in memory).
    DEFAULT_MAX_FINISHED_TASKS = 1024

    def __init__(
        self,
        datastore: DataStore,
        catalog: DatasetCatalog,
        executor_pool: ExecutorPool,
        *,
        job_registry: Optional[JobRegistry] = None,
        max_finished_tasks: Optional[int] = None,
    ) -> None:
        if max_finished_tasks is None:
            max_finished_tasks = self.DEFAULT_MAX_FINISHED_TASKS
        if max_finished_tasks < 1:
            raise ValueError(
                f"max_finished_tasks must be a positive integer, got {max_finished_tasks}"
            )
        self._datastore = datastore
        self._catalog = catalog
        self._pool = executor_pool
        self._cache = datastore.result_cache
        self.jobs = job_registry if job_registry is not None else JobRegistry()
        self._max_finished_tasks = max_finished_tasks
        self._tasks_evicted = 0
        self._tasks: Dict[str, Task] = {}
        #: Single-flight table: cache key -> future of the ranking being
        #: computed right now, so concurrent identical queries never compute
        #: twice.  Entries are published here before dispatch and moved into
        #: the cache before removal, leaving no window to sneak a duplicate in.
        self._inflight: Dict[CacheKey, "Future[Ranking]"] = {}
        #: Which jobs are waiting on each single-flight key; consulted at the
        #: cancellation boundary so only exclusively-owned keys are abandoned.
        self._inflight_jobs: Dict[CacheKey, Set[str]] = {}
        #: Outstanding work units (group dispatches + fallback sub-dispatches)
        #: per job; when a cancelled job's count drains to zero it is
        #: finalised with state CANCELLED.
        self._outstanding: Dict[str, int] = {}
        self._batches_dispatched = 0
        self._queries_batched = 0
        self._largest_batch = 0
        #: Jobs settled with a typed ``deadline_exceeded`` event instead of
        #: ever occupying a worker (see :meth:`overload_stats`).
        self._deadlines_exceeded = 0
        #: Callbacks run after each settled work unit (see
        #: :meth:`register_maintenance_hook`).
        self._maintenance_hooks: List[Callable[[], None]] = []
        self._lock = threading.RLock()
        # Serialises first-use dataset materialisation so concurrent cold
        # starts don't double-store (store_dataset treats a re-store as a
        # re-upload and would needlessly invalidate fresh cache entries).
        self._materialise_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    # task lookup
    # ------------------------------------------------------------------ #
    def get_task(self, task_id: str) -> Task:
        """Return the task with identifier ``task_id`` (raises if unknown)."""
        with self._lock:
            task = self._tasks.get(task_id)
        if task is None:
            raise TaskNotFoundError(task_id)
        return task

    def list_tasks(self) -> List[Task]:
        """Return every task still in the bounded table, newest last."""
        with self._lock:
            return list(self._tasks.values())

    def _evict_finished_tasks(self) -> None:
        """Drop the oldest terminal tasks beyond the bound (lock held).

        Mirrors :meth:`~repro.platform.jobs.JobRegistry._evict_finished`:
        active tasks are never evicted, and an evicted task's permalink still
        resolves through the result payload the datastore persists (see
        :meth:`rankings_for` / :meth:`stored_result`).
        """
        terminal = [
            task_id for task_id, task in self._tasks.items() if task.state.is_terminal()
        ]
        for task_id in terminal[: max(0, len(terminal) - self._max_finished_tasks)]:
            del self._tasks[task_id]
            self._tasks_evicted += 1

    def stored_result(self, task_id: str) -> dict:
        """Return the persisted result payload of a task (permalink fallback).

        Raises :class:`TaskNotFoundError` when the datastore holds no result
        under the id — evicted FAILED/CANCELLED tasks never stored one, so
        their permalinks genuinely expire with the table entry.
        """
        try:
            return self._datastore.get_result(task_id)
        except StorageError:
            raise TaskNotFoundError(task_id) from None

    # ------------------------------------------------------------------ #
    # dataset materialisation
    # ------------------------------------------------------------------ #
    def _fetch_dataset(self, dataset_id: str):
        """Return ``(compiled graph, version)``, materialising on first use.

        Executors receive the datastore's cached
        :class:`~repro.graph.compiled.CompiledGraph` artifact rather than the
        raw :class:`DirectedGraph`, so the CSR/transpose/dangling structures
        are compiled once per dataset version instead of once per dispatch.
        """
        if not self._datastore.has_dataset(dataset_id):
            with self._materialise_lock:
                if not self._datastore.has_dataset(dataset_id):
                    graph = self._catalog.load(dataset_id)
                    self._datastore.store_dataset(dataset_id, graph)
        return self._datastore.fetch_compiled_with_version(dataset_id)

    # ------------------------------------------------------------------ #
    # grouping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _group_queries(query_set: QuerySet) -> "OrderedDict[GroupKey, List[Tuple[int, Query]]]":
        """Group a task's queries by (dataset, algorithm, canonical parameters)."""
        groups: "OrderedDict[GroupKey, List[Tuple[int, Query]]]" = OrderedDict()
        for index, query in enumerate(query_set):
            group_key: GroupKey = (
                query.dataset_id,
                query.algorithm,
                _canonical_parameters(query.parameters),
            )
            groups.setdefault(group_key, []).append((index, query))
        return groups

    def _register(self, task: Task) -> Tuple[JobRecord, "OrderedDict[GroupKey, List[Tuple[int, Query]]]"]:
        """Create the job record, register the task and count its work units."""
        job = self.jobs.create(
            task.task_id, task.total_queries, trace_id=task.trace_id
        )
        groups = self._group_queries(task.query_set)
        with self._lock:
            self._tasks.pop(task.task_id, None)
            self._tasks[task.task_id] = task
            self._outstanding[task.task_id] = len(groups)
            self._evict_finished_tasks()
        job.append("submitted", total_queries=task.total_queries)
        task.mark_running()
        return job, groups

    # ------------------------------------------------------------------ #
    # submission
    # ------------------------------------------------------------------ #
    def submit(self, task: Task) -> str:
        """Schedule every query of ``task`` for asynchronous execution.

        Returns the task id as soon as the job is registered: dataset
        materialisation, cache lookups and batch execution all run on the
        worker pool, so submission never blocks on the comparison itself.
        Progress is observable through the job's event log (the Status
        component, :meth:`events_since` cursors) or :meth:`wait`.
        """
        job, groups = self._register(task)
        self._datastore.append_log(
            task.task_id,
            f"[scheduler] task {task.task_id} accepted with {task.total_queries} queries",
        )
        for (dataset_id, algorithm, _), members in groups.items():
            self._pool.submit_work(
                self._run_group_async, job, task, dataset_id, algorithm, members
            )
        return task.task_id

    def run_synchronously(self, task: Task) -> Task:
        """Execute every query of ``task`` on the calling thread (no concurrency).

        Useful for the CLI, for tests and for benchmarks where deterministic
        single-threaded timing is preferable.  The result cache is consulted
        and populated exactly as in :meth:`submit`, each group's misses run
        as one batched execution, and the same lifecycle events are emitted,
        so a synchronous run is observable (and cancellable from another
        thread) exactly like an asynchronous one.
        """
        job, groups = self._register(task)
        try:
            for (dataset_id, algorithm, _), members in groups.items():
                try:
                    # The trace span rides along with the deadline: whatever
                    # thread serves the group re-installs both, so spans
                    # opened deep in storage land under the submission root.
                    with trace_scope(task.trace_span), deadline_scope(task.deadline):
                        proceed = self._process_group(
                            job, task, dataset_id, algorithm, members, synchronous=True
                        )
                finally:
                    self._work_unit_done(job, task)
                if not proceed or task.state is TaskState.FAILED:
                    break
        finally:
            # Breaking out early (cancellation, failed dataset load) leaves
            # the skipped groups' work units undrained — reconcile so a
            # cancelled synchronous run still finalises to CANCELLED.
            with self._lock:
                self._outstanding.pop(task.task_id, None)
            if job.cancel_requested and not job.state.is_terminal():
                self._finalise_cancelled(job, task)
        # The per-future waits inside the groups unblock on set_result,
        # which *precedes* the done-callbacks that record rankings and
        # persist results (they run on the settling thread).  Block on the
        # job's terminal event — emitted after persistence — so a
        # synchronous caller always returns with the step-4 state readable,
        # exactly like wait_for.
        job.wait_done()
        return task

    def _run_group_async(
        self,
        job: JobRecord,
        task: Task,
        dataset_id: str,
        algorithm: str,
        members: List[Tuple[int, Query]],
    ) -> None:
        """Pool entry point for one group: process it, then settle the unit."""
        try:
            with trace_scope(task.trace_span), deadline_scope(task.deadline):
                self._process_group(
                    job, task, dataset_id, algorithm, members, synchronous=False
                )
        finally:
            self._work_unit_done(job, task)

    def _process_group(
        self,
        job: JobRecord,
        task: Task,
        dataset_id: str,
        algorithm: str,
        members: List[Tuple[int, Query]],
        *,
        synchronous: bool,
    ) -> bool:
        """Serve one (dataset, algorithm, parameters) group of ``task``.

        Cache hits are recorded immediately, identical in-flight queries are
        joined, and the remaining misses execute as one batched run on the
        current thread (a pool worker for :meth:`submit`, the caller for
        :meth:`run_synchronously`).  The cooperative cancel flag is checked
        at the two dispatch boundaries: before any work, and again after the
        single-flight registration just before the batch executes.

        Returns ``False`` when the remaining groups of the task should not
        be processed (cancellation observed, the job already terminal —
        e.g. a sibling group failed — or the dataset failed to load).
        """
        with child_span(
            "group_dispatch",
            dataset=dataset_id,
            algorithm=algorithm,
            queries=len(members),
        ):
            return self._process_group_traced(
                job, task, dataset_id, algorithm, members, synchronous=synchronous
            )

    def _process_group_traced(
        self,
        job: JobRecord,
        task: Task,
        dataset_id: str,
        algorithm: str,
        members: List[Tuple[int, Query]],
        *,
        synchronous: bool,
    ) -> bool:
        if job.cancel_requested or job.state.is_terminal():
            return False
        # Deadline boundary, mirroring the cancel boundary above: an expired
        # task's group returns without computing, so the deadline costs no
        # worker time beyond this check.
        if task.deadline_expired():
            self._settle_deadline_exceeded(job, task)
            return False
        try:
            with child_span("dataset_fetch", dataset=dataset_id):
                graph, version = self._fetch_dataset(dataset_id)
        except DeadlineExceededError:
            # The deadline ran out mid-storage-IO (the replicated store
            # checks it between failover sources): settle typed, not as a
            # dataset-load failure.
            self._settle_deadline_exceeded(job, task)
            return False
        except Exception as exc:
            message = f"cannot load dataset {dataset_id!r}: {exc}"
            task.mark_failed(message)
            self._datastore.append_log(
                task.task_id, f"[scheduler] FAILED to load {dataset_id}: {exc}"
            )
            job.finish(JobState.FAILED, error=message)
            return False
        hits: List[Tuple[int, Ranking]] = []
        waiters: List[Tuple["Future[Ranking]", int, bool]] = []
        to_compute: List[Tuple[CacheKey, Query, int]] = []
        with child_span("cache_lookup", dataset=dataset_id, algorithm=algorithm) as lookup:
            with self._lock:
                for index, query in members:
                    key = ResultCache.key_for(
                        query.dataset_id, query.algorithm, query.parameters,
                        query.source, version=version,
                    )
                    cached = self._cache.get(key)
                    if cached is not None:
                        hits.append((index, cached))
                        continue
                    future = self._inflight.get(key)
                    joined = future is not None
                    if future is None:
                        future = Future()
                        self._inflight[key] = future
                        to_compute.append((key, query, index))
                    self._inflight_jobs.setdefault(key, set()).add(job.job_id)
                    waiters.append((future, index, joined))
            lookup.annotate(
                hits=len(hits),
                joined=sum(1 for _, _, was_joined in waiters if was_joined),
                misses=len(to_compute),
            )
        if hits:
            self._datastore.append_log(
                task.task_id,
                f"[scheduler] served {len(hits)} cached result(s) for "
                f"{algorithm} on {dataset_id}",
            )
            for index, ranking in hits:
                self._record_ranking(job, task, index, ranking, event="query_cached")
        for _, index, joined in waiters:
            payload: Dict[str, Any] = {
                "query": index, "algorithm": algorithm, "dataset_id": dataset_id,
            }
            if joined:
                payload["joined"] = True
                # The group span records each single-flight join: this query
                # rides a computation some other group already dispatched.
                add_span_event("singleflight_join", query=index)
            job.append("query_started", **payload)
        for future, index, _ in waiters:
            future.add_done_callback(
                lambda finished, index=index: self._on_ranking_ready(
                    job, task, index, finished
                )
            )
        if to_compute:
            # Second cancellation boundary: the single-flight entries are
            # published, so a concurrent identical query may already depend
            # on them — abandon only the keys no other job has joined.
            if job.cancel_requested:
                to_compute = self._abandon_exclusive_keys(job, to_compute)
            if to_compute:
                self._execute_group(job, task, to_compute, graph, algorithm)
        if synchronous:
            with child_span("singleflight_wait", waiters=len(waiters)):
                for future, _, _ in waiters:
                    try:
                        future.result()
                    except Exception:
                        # The per-query error was recorded by the done-callback;
                        # a synchronous run reports it via the task state.
                        pass
        return True

    def _abandon_exclusive_keys(
        self,
        job: JobRecord,
        to_compute: List[Tuple[CacheKey, Query, int]],
    ) -> List[Tuple[CacheKey, Query, int]]:
        """Settle this job's exclusively-owned keys as cancelled; keep the rest.

        The ownership decision and the removal from the single-flight table
        happen under one lock acquisition: a concurrent identical query must
        either join *before* (making the key shared, so it keeps computing)
        or find the table empty *after* and compute it itself — there is no
        window in which it can join a key that is about to be settled with
        this job's cancellation.
        """
        keep: List[Tuple[CacheKey, Query, int]] = []
        abandoned: List["Future[Ranking]"] = []
        with self._lock:
            for key, query, index in to_compute:
                if self._inflight_jobs.get(key, set()) - {job.job_id}:
                    keep.append((key, query, index))
                    continue
                future = self._inflight.pop(key, None)
                self._inflight_jobs.pop(key, None)
                if future is not None:
                    abandoned.append(future)
        error = JobCancelledError(job.job_id)
        for future in abandoned:
            future.set_exception(error)
        return keep

    def _execute_group(
        self,
        job: JobRecord,
        task: Task,
        to_compute: List[Tuple[CacheKey, Query, int]],
        graph,
        algorithm: str,
    ) -> None:
        """Execute one group's cache misses and publish their rankings.

        Algorithms with a native batch kernel run as one batched execution on
        the current thread; fallback algorithms (user-registered ones without
        a kernel) gain nothing from a grouped dispatch, so their queries
        spread across the pool as size-1 sub-batches instead.  A failed
        multi-query batch degrades to per-query execution so one bad query
        cannot poison siblings joined by concurrent tasks.
        """
        with child_span("batch_execute", algorithm=algorithm, batch=len(to_compute)):
            self._execute_group_traced(job, task, to_compute, graph, algorithm)

    def _execute_group_traced(
        self,
        job: JobRecord,
        task: Task,
        to_compute: List[Tuple[CacheKey, Query, int]],
        graph,
        algorithm: str,
    ) -> None:
        keys = [key for key, _, _ in to_compute]
        batch = [query for _, query, _ in to_compute]
        try:
            native_batch = get_algorithm(algorithm).has_native_batch
        except Exception:
            # Let the executor's error machinery surface unknown algorithms
            # through the normal failure path.
            native_batch = True
        if len(batch) > 1 and not native_batch:
            with self._lock:
                self._outstanding[task.task_id] = (
                    self._outstanding.get(task.task_id, 0) + len(to_compute)
                )
            for key, query, _ in to_compute:
                try:
                    single = self._pool.submit_batch([query], graph, log_id=task.task_id)
                except Exception as exc:
                    self._settle_inflight([key], error=exc)
                    self._work_unit_done(job, task)
                    continue
                self._note_batch(1)
                single.add_done_callback(
                    lambda finished, key=key: self._resolve_sub_batch(
                        job, task, key, finished
                    )
                )
            return
        self._note_batch(len(batch))
        try:
            outcome = self._pool.execute_batch_sync(batch, graph, log_id=task.task_id)
        except Exception as exc:
            if len(batch) == 1:
                self._settle_inflight(keys, error=exc)
                return
            self._datastore.append_log(
                task.task_id,
                f"[scheduler] batch of {len(batch)} failed ({exc}); "
                "retrying queries individually",
            )
            for key, query, _ in to_compute:
                try:
                    single = self._pool.execute_batch_sync(
                        [query], graph, log_id=task.task_id
                    )
                except Exception as single_exc:
                    self._settle_inflight([key], error=single_exc)
                    continue
                self._cache.put(key, single.rankings[0])
                self._settle_inflight([key], rankings=[single.rankings[0]])
            return
        for key, ranking in zip(keys, outcome.rankings):
            self._cache.put(key, ranking)
        self._settle_inflight(keys, rankings=outcome.rankings)

    def _resolve_sub_batch(
        self, job: JobRecord, task: Task, key: CacheKey, future: Future
    ) -> None:
        """Publish one finished size-1 sub-batch of a spread fallback group."""
        try:
            error = future.exception()
            if error is not None:
                self._settle_inflight([key], error=error)
                return
            ranking = future.result().rankings[0]
            self._cache.put(key, ranking)
            self._settle_inflight([key], rankings=[ranking])
        finally:
            self._work_unit_done(job, task)

    # ------------------------------------------------------------------ #
    # completion handling
    # ------------------------------------------------------------------ #
    def _settle_inflight(
        self,
        keys: List[CacheKey],
        *,
        rankings: Optional[List[Ranking]] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        """Remove single-flight entries and settle their per-key futures.

        Callers populate the cache *before* settling on success; a concurrent
        submitter checks the cache first, so every moment in time has each
        key either cached or in flight.
        """
        with self._lock:
            settled = [self._inflight.pop(key, None) for key in keys]
            for key in keys:
                self._inflight_jobs.pop(key, None)
        if error is not None:
            for per_key in settled:
                if per_key is not None:
                    per_key.set_exception(error)
            return
        for per_key, ranking in zip(settled, rankings or []):
            if per_key is not None:
                per_key.set_result(ranking)

    def _on_ranking_ready(
        self, job: JobRecord, task: Task, index: int, future: Future
    ) -> None:
        error = future.exception()
        if error is None:
            self._record_ranking(job, task, index, future.result())
            return
        if isinstance(error, JobCancelledError) and error.job_id == job.job_id:
            # Our own cancellation abandoning the key; the finaliser settles
            # the job and task state when the outstanding work drains.
            return
        message = str(error)
        task.mark_failed(message)
        self._datastore.append_log(
            task.task_id, f"[scheduler] query {index} FAILED: {error}"
        )
        job.append("query_failed", query=index, error=message)
        job.finish(JobState.FAILED, error=message)

    def _record_ranking(
        self,
        job: JobRecord,
        task: Task,
        index: int,
        ranking: Ranking,
        *,
        event: str = "query_completed",
    ) -> None:
        task.record_query_result(index, ranking)
        appended = job.append(
            event,
            query=index,
            completed_queries=task.completed_queries,
            total_queries=task.total_queries,
        )
        # The job stamps its own projected counter into the event under the
        # record lock, so exactly one completion event per job reports the
        # full count — that appender (and only it) persists the results and
        # finishes the job, after every sibling's event is already in the
        # log.  Deciding on the task state alone would let a racing sibling
        # finish the job before a slower thread's event was appended,
        # silently dropping it from the stream.
        if (
            appended is not None
            and appended.payload.get("completed_queries") == task.total_queries
            and task.state is TaskState.COMPLETED
        ):
            self._store_results(task)
            job.finish(JobState.DONE)

    def _store_results(self, task: Task) -> None:
        rankings = task.rankings()
        payload = {
            "comparison_id": task.task_id,
            "state": task.state.value,
            "queries": [query.as_dict() for query in task.query_set],
            "rankings": {
                str(index): ranking.to_dict() for index, ranking in sorted(rankings.items())
            },
        }
        # The settling thread may be a pool worker inside the group span or a
        # foreign thread resolving a join: re-install the task's root span so
        # the persistence write (and any replicated per-replica spans under
        # it) always lands in this task's trace, not the joiner's.
        with trace_scope(task.trace_span), child_span(
            "store_results", rankings=len(rankings)
        ):
            self._datastore.put_result(task.task_id, payload)
        self._datastore.append_log(
            task.task_id,
            f"[scheduler] task {task.task_id} {task.state.value}; results stored",
        )

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, task_id: str) -> bool:
        """Request cooperative cancellation of a submitted task.

        Returns ``True`` if the request was recorded (the job was still
        live).  Groups not yet dispatched are skipped at their next
        boundary check; batches already executing run to completion (their
        results still populate the cache), and the job is finished with
        state ``CANCELLED`` once the outstanding work has drained.

        Registry jobs without a task — the storage maintenance jobs
        (replicate/spill/rebalance) the gateway runs on this registry — are
        purely cooperative: the flag is raised here and the migration loop
        finishes the job at its next item boundary.
        """
        try:
            task = self.get_task(task_id)
        except TaskNotFoundError:
            job = self.jobs.find(task_id)
            if job is None:
                raise
            return job.request_cancel()
        job = self.jobs.find(task_id)
        if job is None:
            return False
        if not job.request_cancel():
            return False
        self._datastore.append_log(
            task_id, f"[scheduler] cancellation requested for task {task_id}"
        )
        with self._lock:
            outstanding = self._outstanding.get(task_id, 0)
        if outstanding == 0:
            # Nothing left on the pool (only joins on other jobs' in-flight
            # computations, or nothing at all): finalise immediately.
            self._finalise_cancelled(job, task)
        return True

    def _work_unit_done(self, job: JobRecord, task: Task) -> None:
        """Settle one outstanding work unit; finalise a drained cancelled job."""
        with self._lock:
            remaining = self._outstanding.get(task.task_id, 0) - 1
            if remaining > 0:
                self._outstanding[task.task_id] = remaining
            else:
                self._outstanding.pop(task.task_id, None)
        if remaining <= 0 and job.cancel_requested and not job.state.is_terminal():
            self._finalise_cancelled(job, task)
        self._run_maintenance_hooks()

    # ------------------------------------------------------------------ #
    # maintenance hooks
    # ------------------------------------------------------------------ #
    def register_maintenance_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` after every settled work unit (exceptions swallowed).

        The gateway points one at its storage-budget check, so policies like
        the automatic spill piggyback on scheduling activity instead of
        waiting for an operator request; its background prober covers idle
        periods.  Hooks run on whatever thread settled the unit and must be
        quick — launch a job for anything heavier.
        """
        with self._lock:
            self._maintenance_hooks.append(hook)

    def _run_maintenance_hooks(self) -> None:
        with self._lock:
            hooks = list(self._maintenance_hooks)
        for hook in hooks:
            try:
                hook()
            except Exception:
                continue  # maintenance must never fail the dispatch path

    def _settle_deadline_exceeded(self, job: JobRecord, task: Task) -> None:
        """Settle a job whose deadline expired before (or during) dispatch.

        Mirrors :meth:`_finalise_cancelled`: the typed event is appended
        *before* the terminal transition (terminal jobs drop appends), the
        task fails with a deadline message, and sibling groups observe the
        terminal job at their own boundary check and return immediately.
        """
        deadline_ms = task.deadline.deadline_ms if task.deadline is not None else None
        message = "deadline expired before execution" + (
            f" (deadline_ms={deadline_ms})" if deadline_ms is not None else ""
        )
        task.mark_failed(message)
        job.append(
            "deadline_exceeded",
            deadline_ms=deadline_ms,
            completed_queries=task.completed_queries,
            total_queries=task.total_queries,
        )
        if job.finish(JobState.FAILED, error=message):
            with self._lock:
                self._deadlines_exceeded += 1
            self._datastore.append_log(
                task.task_id,
                f"[scheduler] task {task.task_id} deadline expired with "
                f"{task.completed_queries}/{task.total_queries} queries done",
            )

    def _finalise_cancelled(self, job: JobRecord, task: Task) -> None:
        task.mark_cancelled()
        if job.finish(JobState.CANCELLED):
            self._datastore.append_log(
                task.task_id,
                f"[scheduler] task {task.task_id} cancelled with "
                f"{task.completed_queries}/{task.total_queries} queries done",
            )

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def _note_batch(self, size: int) -> None:
        with self._lock:
            self._batches_dispatched += 1
            self._queries_batched += size
            self._largest_batch = max(self._largest_batch, size)

    def batch_stats(self) -> Dict[str, Any]:
        """Return a snapshot of the batched-dispatch counters.

        ``batches`` counts dispatched batch executions, ``batched_queries``
        the queries they carried (cache hits never reach a batch), and
        ``largest_batch``/``mean_batch_size`` summarise how much per-dataset
        work the grouping amortised.
        """
        with self._lock:
            batches = self._batches_dispatched
            batched_queries = self._queries_batched
            largest = self._largest_batch
            inflight = len(self._inflight)
        return {
            "batches": batches,
            "batched_queries": batched_queries,
            "largest_batch": largest,
            "mean_batch_size": (batched_queries / batches) if batches else 0.0,
            "inflight_queries": inflight,
        }

    def cache_stats(self) -> Dict[str, Any]:
        """Return the result-cache counters (delegates to the datastore's cache)."""
        return self._cache.stats()

    def artifact_stats(self) -> Dict[str, Any]:
        """Return the compiled-artifact cache counters (delegates to the datastore)."""
        return self._datastore.artifact_stats()

    def overload_stats(self) -> Dict[str, Any]:
        """Return the scheduler's overload-protection counters."""
        with self._lock:
            return {"deadline_exceeded": self._deadlines_exceeded}

    # ------------------------------------------------------------------ #
    # waiting
    # ------------------------------------------------------------------ #
    def wait(self, task_id: str, *, timeout: Optional[float] = None) -> Task:
        """Block until the task reaches a terminal state (or the timeout expires).

        Implemented on the job's event cursor: ``task_done`` is emitted
        *after* the results are persisted, so a caller unblocked here always
        observes the complete step-4 state in the datastore.
        """
        task = self.get_task(task_id)
        job = self.jobs.find(task_id)
        if job is not None:
            job.wait_done(timeout)
            return task
        # The job record was evicted (long-finished task): nothing to wait on,
        # but tolerate a result write that is still racing the eviction.
        deadline = time.monotonic() + (timeout if timeout is not None else 30.0)
        while not task.is_done() and time.monotonic() < deadline:
            time.sleep(0.001)
        return task

    def rankings_for(self, task_id: str) -> Dict[int, Ranking]:
        """Return the rankings computed so far for ``task_id``.

        A task evicted from the bounded table falls back to the result
        payload persisted in the datastore, so old permalinks keep serving
        their rankings without holding them in memory forever.
        """
        try:
            return self.get_task(task_id).rankings()
        except TaskNotFoundError:
            payload = self.stored_result(task_id)
            return {
                int(index): Ranking.from_dict(serialised)
                for index, serialised in payload.get("rankings", {}).items()
            }

    def task_table_stats(self) -> Dict[str, Any]:
        """Return the bounded task table's occupancy (for ``platform_stats()``)."""
        with self._lock:
            tasks = list(self._tasks.values())
            evicted = self._tasks_evicted
        by_state: Dict[str, int] = {}
        for task in tasks:
            state = task.state.value
            by_state[state] = by_state.get(state, 0) + 1
        return {
            "tasks": len(tasks),
            "by_state": by_state,
            "evicted": evicted,
            "max_finished_tasks": self._max_finished_tasks,
        }
