"""Executor (computational) nodes and the worker pool.

The paper's computational nodes "are responsible for processing data
requests and can be scaled up or down depending on the system's workload.
They interact with the data stores to retrieve or store data and then return
the results to the API gateway."

:class:`ExecutorNode` runs a single query — fetch the dataset graph, run the
algorithm, time it, log the milestones — and :class:`ExecutorPool` manages a
configurable number of worker threads that execute queries concurrently.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .._validation import require_positive_int
from ..algorithms.registry import get_algorithm
from ..exceptions import AlgorithmNotFoundError, DeadlineExceededError, ExecutorError
from ..graph.compiled import CompiledGraph, SharedGraphHandle
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .datastore import DataStore
from .resilience import current_deadline, deadline_scope
from .shared_artifacts import SharedArtifactRegistry
from .tasks import Query
from .telemetry import child_span, current_span, trace_scope

__all__ = [
    "BatchExecutionOutcome",
    "ExecutionOutcome",
    "ExecutorNode",
    "ExecutorPool",
    "ProcessExecutorPool",
]

#: Prometheus-style histogram fed by both pool flavours, labelled by mode so
#: thread vs process batch latency is directly comparable on one scrape
#: (exposed as ``repro_executor_batch_ms`` — the registry adds the prefix).
BATCH_LATENCY_METRIC = "executor_batch_ms"


@dataclass
class ExecutionOutcome:
    """The result of executing one query on an executor node."""

    query: Query
    ranking: Ranking
    elapsed_seconds: float
    executor_name: str


@dataclass
class BatchExecutionOutcome:
    """The result of executing one batched group of queries on a node.

    ``rankings`` is aligned with ``queries``: the i-th ranking answers the
    i-th query of the batch.
    """

    queries: List[Query]
    rankings: List[Ranking]
    elapsed_seconds: float
    executor_name: str


def _require_uniform_batch(queries: Sequence[Query]) -> Query:
    """Validate that a batch shares one (dataset, algorithm, parameters).

    Returns the first query of the batch for convenience.
    """
    if not queries:
        raise ExecutorError("cannot execute an empty batch of queries")
    first = queries[0]
    for query in queries[1:]:
        if (
            query.dataset_id != first.dataset_id
            or query.algorithm != first.algorithm
            or dict(query.parameters) != dict(first.parameters)
        ):
            raise ExecutorError(
                "batched queries must share one dataset, algorithm and parameter "
                f"set; got ({first.dataset_id!r}, {first.algorithm!r}) vs "
                f"({query.dataset_id!r}, {query.algorithm!r})"
            )
    return first


class ExecutorNode:
    """One computational node: executes queries against datasets.

    Parameters
    ----------
    datastore:
        The datastore logs are appended to.
    name:
        Executor name used in log lines (``"executor-0"`` by default).
    """

    def __init__(self, datastore: DataStore, *, name: str = "executor-0") -> None:
        self._datastore = datastore
        self.name = name
        self._executed = 0
        self._lock = threading.Lock()

    @property
    def executed_queries(self) -> int:
        """Return how many queries this node has executed."""
        with self._lock:
            return self._executed

    def _note_executed(self, count: int) -> None:
        """Credit ``count`` queries executed on this node's behalf elsewhere."""
        with self._lock:
            self._executed += count

    def execute(self, query: Query, graph: DirectedGraph, *, log_id: Optional[str] = None) -> ExecutionOutcome:
        """Run ``query`` against ``graph`` and return the outcome.

        Raises
        ------
        ExecutorError
            If the algorithm raises; the original error message is preserved
            and also written to the task log.
        """
        log_id = log_id or "executor"
        algorithm = get_algorithm(query.algorithm)
        self._datastore.append_log(
            log_id,
            f"[{self.name}] start {algorithm.display_name} on {query.dataset_id} "
            f"(source={query.source or '-'})",
        )
        started = time.perf_counter()
        try:
            with child_span(
                "executor_run", executor=self.name, algorithm=algorithm.name,
                dataset=query.dataset_id,
            ):
                ranking = algorithm.run(
                    graph, source=query.source, parameters=dict(query.parameters)
                )
        except Exception as exc:
            self._datastore.append_log(
                log_id, f"[{self.name}] FAILED {algorithm.display_name}: {exc}"
            )
            raise ExecutorError(
                f"{algorithm.display_name} failed on {query.dataset_id}: {exc}"
            ) from exc
        elapsed = time.perf_counter() - started
        with self._lock:
            self._executed += 1
        self._datastore.append_log(
            log_id,
            f"[{self.name}] done {algorithm.display_name} on {query.dataset_id} "
            f"in {elapsed:.3f}s",
        )
        return ExecutionOutcome(
            query=query, ranking=ranking, elapsed_seconds=elapsed, executor_name=self.name
        )

    def execute_batch(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> BatchExecutionOutcome:
        """Run a group of same-(dataset, algorithm, parameters) queries at once.

        The whole group is handed to the algorithm's
        :meth:`~repro.algorithms.base.Algorithm.run_batch`, so algorithms with
        a native batch kernel amortise the per-graph work across the group.

        Raises
        ------
        ExecutorError
            If the queries disagree on algorithm or parameters, or if the
            algorithm raises (the original error message is preserved and
            also written to the task log).
        """
        queries = list(queries)
        first = _require_uniform_batch(queries)
        log_id = log_id or "executor"
        algorithm = get_algorithm(first.algorithm)
        self._datastore.append_log(
            log_id,
            f"[{self.name}] start batch of {len(queries)} x {algorithm.display_name} "
            f"on {first.dataset_id}",
        )
        started = time.perf_counter()
        try:
            with child_span(
                "executor_run", executor=self.name, algorithm=algorithm.name,
                dataset=first.dataset_id, batch=len(queries),
            ):
                rankings = algorithm.run_batch(
                    graph,
                    sources=[query.source for query in queries],
                    parameters=dict(first.parameters),
                )
        except Exception as exc:
            self._datastore.append_log(
                log_id, f"[{self.name}] FAILED batch {algorithm.display_name}: {exc}"
            )
            raise ExecutorError(
                f"{algorithm.display_name} batch failed on {first.dataset_id}: {exc}"
            ) from exc
        if len(rankings) != len(queries):
            # A miscounting third-party batch kernel must surface as an error
            # here; silently truncated results would leave scheduler waiters
            # hanging on rankings that never arrive.
            raise ExecutorError(
                f"{algorithm.display_name} batch returned {len(rankings)} rankings "
                f"for {len(queries)} queries"
            )
        elapsed = time.perf_counter() - started
        with self._lock:
            self._executed += len(queries)
        self._datastore.append_log(
            log_id,
            f"[{self.name}] done batch of {len(queries)} x {algorithm.display_name} "
            f"on {first.dataset_id} in {elapsed:.3f}s",
        )
        return BatchExecutionOutcome(
            queries=queries,
            rankings=rankings,
            elapsed_seconds=elapsed,
            executor_name=self.name,
        )


class ExecutorPool:
    """A scalable pool of executor nodes backed by a thread pool.

    Parameters
    ----------
    datastore:
        Shared datastore for logs.
    num_workers:
        Number of executor nodes (threads); can be changed later with
        :meth:`scale_to`, reproducing the "scaled up or down depending on the
        system's workload" property.
    metrics:
        Optional :class:`~repro.platform.telemetry.MetricsRegistry`; when
        given, batch round-trip latency is recorded in the mode-labelled
        ``repro_executor_batch_ms`` histogram.
    """

    #: Label carried on stats sections and latency histograms.
    mode = "thread"

    def __init__(
        self, datastore: DataStore, *, num_workers: int = 2, metrics: Any = None
    ) -> None:
        require_positive_int(num_workers, "num_workers")
        self._datastore = datastore
        self._metrics = metrics
        self._lock = threading.Lock()
        self._num_workers = num_workers
        self._nodes = [
            ExecutorNode(datastore, name=f"executor-{index}") for index in range(num_workers)
        ]
        self._pool = ThreadPoolExecutor(max_workers=num_workers, thread_name_prefix="executor")
        self._round_robin = 0
        self._busy_lock = threading.Lock()
        self._busy = 0

    @property
    def num_workers(self) -> int:
        """Return the current number of executor nodes."""
        with self._lock:
            return self._num_workers

    @property
    def busy_workers(self) -> int:
        """Return how many workers are executing a batch right now."""
        with self._busy_lock:
            return self._busy

    def _observe_batch(self, elapsed_seconds: float) -> None:
        if self._metrics is not None:
            self._metrics.observe(
                BATCH_LATENCY_METRIC,
                elapsed_seconds * 1000.0,
                help="Executor batch round-trip latency in milliseconds.",
                mode=self.mode,
            )

    def _run_batch_tracked(
        self,
        node: ExecutorNode,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> BatchExecutionOutcome:
        with self._busy_lock:
            self._busy += 1
        started = time.perf_counter()
        try:
            return node.execute_batch(queries, graph, log_id=log_id)
        finally:
            with self._busy_lock:
                self._busy -= 1
            self._observe_batch(time.perf_counter() - started)

    def invalidate_artifact(self, dataset_id: str) -> None:
        """Drop any per-dataset executor state (no-op for the thread tier)."""

    def stats(self) -> Dict[str, Any]:
        """Structured readout for the ``executors`` stats section."""
        return {
            "mode": self.mode,
            "num_workers": self.num_workers,
            "busy_workers": self.busy_workers,
            "executed_queries": self.total_executed(),
        }

    def scale_to(self, num_workers: int) -> None:
        """Change the number of executor nodes (takes effect for new submissions)."""
        require_positive_int(num_workers, "num_workers")
        with self._lock:
            old_pool = self._pool
            self._num_workers = num_workers
            self._nodes = [
                ExecutorNode(self._datastore, name=f"executor-{index}")
                for index in range(num_workers)
            ]
            self._pool = ThreadPoolExecutor(
                max_workers=num_workers, thread_name_prefix="executor"
            )
        old_pool.shutdown(wait=True)

    def _next_node(self) -> "Tuple[ExecutorNode, ThreadPoolExecutor]":
        """Pick the next node round-robin; returns it with the current pool."""
        with self._lock:
            node = self._nodes[self._round_robin % len(self._nodes)]
            self._round_robin += 1
            return node, self._pool

    def submit(
        self, query: Query, graph: DirectedGraph, *, log_id: Optional[str] = None
    ) -> "Future[ExecutionOutcome]":
        """Submit a query for asynchronous execution; returns a future."""
        node, pool = self._next_node()
        return pool.submit(node.execute, query, graph, log_id=log_id)

    def submit_work(self, fn, /, *args, **kwargs) -> Future:
        """Run an arbitrary callable on the worker pool; returns a future.

        Used by the scheduler to off-load whole group dispatches (dataset
        materialisation, cache lookups, batched execution) so that task
        submission returns immediately instead of pinning the caller.
        """
        with self._lock:
            pool = self._pool
        return pool.submit(fn, *args, **kwargs)

    def execute_sync(
        self, query: Query, graph: DirectedGraph, *, log_id: Optional[str] = None
    ) -> ExecutionOutcome:
        """Execute a query synchronously on the calling thread."""
        node, _ = self._next_node()
        return node.execute(query, graph, log_id=log_id)

    def submit_batch(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> "Future[BatchExecutionOutcome]":
        """Submit a batched group of queries for asynchronous execution."""
        node, pool = self._next_node()
        return pool.submit(self._run_batch_tracked, node, queries, graph, log_id=log_id)

    def execute_batch_sync(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> BatchExecutionOutcome:
        """Execute a batched group synchronously on the calling thread."""
        node, _ = self._next_node()
        return self._run_batch_tracked(node, queries, graph, log_id=log_id)

    def shutdown(self) -> None:
        """Shut the thread pool down, waiting for in-flight queries."""
        with self._lock:
            pool = self._pool
        pool.shutdown(wait=True)

    def total_executed(self) -> int:
        """Return the number of queries executed across all nodes."""
        with self._lock:
            return sum(node.executed_queries for node in self._nodes)


# --------------------------------------------------------------------------- #
# process executor tier
# --------------------------------------------------------------------------- #

#: Worker-side attach cache: (segment, version) -> CompiledGraph view.  Keeps
#: hot artifacts mapped across batches so repeated queries pay the attach
#: syscall once.  Bounded so a worker outliving many re-uploads does not pin
#: an unbounded number of dead segments.
_WORKER_ATTACH_CACHE: "OrderedDict[Tuple[str, int], CompiledGraph]" = OrderedDict()
_WORKER_ATTACH_MAX = 8


def _attach_shared_graph(handle: SharedGraphHandle) -> CompiledGraph:
    key = (handle.segment, handle.version)
    cached = _WORKER_ATTACH_CACHE.get(key)
    if cached is not None:
        _WORKER_ATTACH_CACHE.move_to_end(key)
        return cached
    compiled = CompiledGraph.from_shared(handle)
    _WORKER_ATTACH_CACHE[key] = compiled
    while len(_WORKER_ATTACH_CACHE) > _WORKER_ATTACH_MAX:
        _WORKER_ATTACH_CACHE.popitem(last=False)
    return compiled


def _process_worker_batch(
    handle: SharedGraphHandle,
    algorithm_name: str,
    sources: List[Any],
    parameters: Dict[str, Any],
) -> Dict[str, Any]:
    """Run one batch inside a worker process over a shared-memory graph.

    Always returns a status dict (never raises): exceptions are shipped back
    as typed payloads so the parent can convert them to :class:`ExecutorError`
    with the worker pid attached, and an algorithm missing from this worker's
    registry snapshot (e.g. registered in the parent after the fork) is
    reported as ``unavailable`` so the parent falls back to in-process
    execution instead of failing the batch.
    """
    started = time.perf_counter()
    try:
        algorithm = get_algorithm(algorithm_name)
    except AlgorithmNotFoundError:
        return {"status": "unavailable", "pid": os.getpid()}
    try:
        graph = _attach_shared_graph(handle)
        rankings = algorithm.run_batch(
            graph, sources=list(sources), parameters=dict(parameters)
        )
    except Exception as error:
        return {
            "status": "error",
            "pid": os.getpid(),
            "error_type": type(error).__name__,
            "message": str(error),
        }
    return {
        "status": "ok",
        "pid": os.getpid(),
        "elapsed_seconds": time.perf_counter() - started,
        "rankings": list(rankings),
    }


class ProcessExecutorPool(ExecutorPool):
    """Executor pool whose batch kernels run in worker *processes*.

    Same surface as :class:`ExecutorPool`, but ``submit_batch`` /
    ``execute_batch_sync`` cross a process boundary: the per-dataset
    :class:`~repro.graph.compiled.CompiledGraph` is exported once into shared
    memory (via :class:`~repro.platform.shared_artifacts.SharedArtifactRegistry`)
    and workers map it zero-copy — only the algorithm name, sources and
    parameters are pickled out, only :class:`~repro.ranking.result.Ranking`
    payloads come back.  Scheduler plumbing (``submit_work`` group closures,
    single-query ``submit``/``execute_sync``) stays in-process where
    thread-local deadlines, traces and datastore access live.

    Worker crashes surface as :class:`ExecutorError` — never a hung future —
    and the broken pool is rebuilt so subsequent submissions succeed.
    """

    mode = "process"

    def __init__(
        self, datastore: DataStore, *, num_workers: int = 2, metrics: Any = None
    ) -> None:
        super().__init__(datastore, num_workers=num_workers, metrics=metrics)
        self.artifacts = SharedArtifactRegistry(datastore)
        start_methods = multiprocessing.get_all_start_methods()
        # fork inherits the parent's algorithm-registry snapshot for free;
        # spawn (macOS/Windows) re-imports the package, which re-registers
        # the built-ins — test-registered algorithms use the fallback path.
        self._mp_context = multiprocessing.get_context(
            "fork" if "fork" in start_methods else "spawn"
        )
        self._process_lock = threading.Lock()
        self._worker_crashes = 0
        self._process_pool = ProcessPoolExecutor(
            max_workers=num_workers, mp_context=self._mp_context
        )

    # -- lifecycle ------------------------------------------------------ #
    def scale_to(self, num_workers: int) -> None:
        super().scale_to(num_workers)
        with self._process_lock:
            old_pool = self._process_pool
            self._process_pool = ProcessPoolExecutor(
                max_workers=num_workers, mp_context=self._mp_context
            )
        old_pool.shutdown(wait=True)

    def shutdown(self) -> None:
        super().shutdown()
        with self._process_lock:
            pool = self._process_pool
        pool.shutdown(wait=True)
        self.artifacts.close()

    def invalidate_artifact(self, dataset_id: str) -> None:
        """Unlink the shared segment for ``dataset_id`` (re-upload/drop)."""
        self.artifacts.invalidate(dataset_id)

    def stats(self) -> Dict[str, Any]:
        out = super().stats()
        out["worker_crashes"] = self._worker_crashes
        out.update(self.artifacts.stats())
        return out

    # -- dispatch ------------------------------------------------------- #
    def _dispatch(
        self,
        handle: SharedGraphHandle,
        algorithm_name: str,
        sources: List[Any],
        parameters: Dict[str, Any],
    ) -> Dict[str, Any]:
        with self._process_lock:
            pool = self._process_pool
        try:
            future = pool.submit(
                _process_worker_batch, handle, algorithm_name, sources, parameters
            )
            return future.result()
        except BrokenProcessPool as exc:
            self._rebuild_process_pool(pool)
            raise ExecutorError(
                f"executor worker process crashed mid-batch: {exc}"
            ) from exc

    def _rebuild_process_pool(self, broken: ProcessPoolExecutor) -> None:
        with self._process_lock:
            if self._process_pool is broken:
                self._worker_crashes += 1
                self._process_pool = ProcessPoolExecutor(
                    max_workers=self.num_workers, mp_context=self._mp_context
                )
        broken.shutdown(wait=False)

    # -- batch execution ------------------------------------------------ #
    def submit_batch(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> "Future[BatchExecutionOutcome]":
        """Submit a batch; the round-trip blocks one *thread*, not a core.

        The caller's deadline and trace context are thread-local, so they are
        captured here and re-installed on the pool thread that performs the
        process round-trip — late results are still discarded and executor
        spans still land in the parent trace.
        """
        deadline = current_deadline()
        span = current_span()
        with self._lock:
            pool = self._pool

        def run() -> BatchExecutionOutcome:
            with trace_scope(span), deadline_scope(deadline):
                return self.execute_batch_sync(queries, graph, log_id=log_id)

        return pool.submit(run)

    def execute_batch_sync(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> BatchExecutionOutcome:
        queries = list(queries)
        first = _require_uniform_batch(queries)
        log_id = log_id or "executor"
        algorithm = get_algorithm(first.algorithm)
        node, _ = self._next_node()
        if algorithm.process_local:
            # The kernel coordinates with in-process state (locks, events,
            # test gates); a worker would only see a fork-time copy of it.
            return self._run_batch_tracked(node, queries, graph, log_id=log_id)
        deadline = current_deadline()
        if deadline is not None and deadline.expired():
            raise DeadlineExceededError(
                f"deadline expired before process dispatch of "
                f"{algorithm.display_name} batch on {first.dataset_id}"
            )
        compiled = graph if isinstance(graph, CompiledGraph) else CompiledGraph(graph)
        self._datastore.append_log(
            log_id,
            f"[{node.name}] start batch of {len(queries)} x {algorithm.display_name} "
            f"on {first.dataset_id} (process)",
        )
        with self._busy_lock:
            self._busy += 1
        started = time.perf_counter()
        try:
            with child_span(
                "executor_run", executor=node.name, algorithm=algorithm.name,
                dataset=first.dataset_id, batch=len(queries), mode="process",
            ) as span:
                handle, release = self.artifacts.lease(first.dataset_id, compiled)
                try:
                    response = self._dispatch(
                        handle,
                        algorithm.name,
                        [query.source for query in queries],
                        dict(first.parameters),
                    )
                except ExecutorError as exc:
                    self._datastore.append_log(
                        log_id,
                        f"[{node.name}] FAILED batch {algorithm.display_name}: {exc}",
                    )
                    raise
                finally:
                    if release is not None:
                        release()
                if response["status"] == "unavailable":
                    # The algorithm is not in the worker's registry snapshot
                    # (registered in this process after the workers forked):
                    # run it in-process on the node instead.
                    span.annotate(fallback="in_process")
                    return node.execute_batch(queries, graph, log_id=log_id)
                span.annotate(worker_pid=response["pid"])
                if response["status"] == "error":
                    self._datastore.append_log(
                        log_id,
                        f"[{node.name}] FAILED batch {algorithm.display_name}: "
                        f"{response['message']}",
                    )
                    raise ExecutorError(
                        f"{algorithm.display_name} batch failed on "
                        f"{first.dataset_id}: {response['message']}"
                    )
                rankings = list(response["rankings"])
                if len(rankings) != len(queries):
                    raise ExecutorError(
                        f"{algorithm.display_name} batch returned {len(rankings)} "
                        f"rankings for {len(queries)} queries"
                    )
                if deadline is not None and deadline.expired():
                    # Late return: the result is correct but nobody is
                    # allowed to see it any more.
                    self._datastore.append_log(
                        log_id,
                        f"[{node.name}] discarded late batch of {len(queries)} x "
                        f"{algorithm.display_name} on {first.dataset_id} "
                        f"(deadline expired during process execution)",
                    )
                    raise DeadlineExceededError(
                        f"deadline expired during process execution of "
                        f"{algorithm.display_name} batch on {first.dataset_id}"
                    )
                elapsed = time.perf_counter() - started
                node._note_executed(len(queries))
                self._datastore.append_log(
                    log_id,
                    f"[{node.name}] done batch of {len(queries)} x "
                    f"{algorithm.display_name} on {first.dataset_id} "
                    f"in {elapsed:.3f}s (worker pid {response['pid']})",
                )
                return BatchExecutionOutcome(
                    queries=queries,
                    rankings=rankings,
                    elapsed_seconds=elapsed,
                    executor_name=node.name,
                )
        finally:
            with self._busy_lock:
                self._busy -= 1
            self._observe_batch(time.perf_counter() - started)
