"""Executor (computational) nodes and the worker pool.

The paper's computational nodes "are responsible for processing data
requests and can be scaled up or down depending on the system's workload.
They interact with the data stores to retrieve or store data and then return
the results to the API gateway."

:class:`ExecutorNode` runs a single query — fetch the dataset graph, run the
algorithm, time it, log the milestones — and :class:`ExecutorPool` manages a
configurable number of worker threads that execute queries concurrently.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .._validation import require_positive_int
from ..algorithms.registry import get_algorithm
from ..exceptions import ExecutorError
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .datastore import DataStore
from .tasks import Query
from .telemetry import child_span

__all__ = ["BatchExecutionOutcome", "ExecutionOutcome", "ExecutorNode", "ExecutorPool"]


@dataclass
class ExecutionOutcome:
    """The result of executing one query on an executor node."""

    query: Query
    ranking: Ranking
    elapsed_seconds: float
    executor_name: str


@dataclass
class BatchExecutionOutcome:
    """The result of executing one batched group of queries on a node.

    ``rankings`` is aligned with ``queries``: the i-th ranking answers the
    i-th query of the batch.
    """

    queries: List[Query]
    rankings: List[Ranking]
    elapsed_seconds: float
    executor_name: str


class ExecutorNode:
    """One computational node: executes queries against datasets.

    Parameters
    ----------
    datastore:
        The datastore logs are appended to.
    name:
        Executor name used in log lines (``"executor-0"`` by default).
    """

    def __init__(self, datastore: DataStore, *, name: str = "executor-0") -> None:
        self._datastore = datastore
        self.name = name
        self._executed = 0
        self._lock = threading.Lock()

    @property
    def executed_queries(self) -> int:
        """Return how many queries this node has executed."""
        with self._lock:
            return self._executed

    def execute(self, query: Query, graph: DirectedGraph, *, log_id: Optional[str] = None) -> ExecutionOutcome:
        """Run ``query`` against ``graph`` and return the outcome.

        Raises
        ------
        ExecutorError
            If the algorithm raises; the original error message is preserved
            and also written to the task log.
        """
        log_id = log_id or "executor"
        algorithm = get_algorithm(query.algorithm)
        self._datastore.append_log(
            log_id,
            f"[{self.name}] start {algorithm.display_name} on {query.dataset_id} "
            f"(source={query.source or '-'})",
        )
        started = time.perf_counter()
        try:
            with child_span(
                "executor_run", executor=self.name, algorithm=algorithm.name,
                dataset=query.dataset_id,
            ):
                ranking = algorithm.run(
                    graph, source=query.source, parameters=dict(query.parameters)
                )
        except Exception as exc:
            self._datastore.append_log(
                log_id, f"[{self.name}] FAILED {algorithm.display_name}: {exc}"
            )
            raise ExecutorError(
                f"{algorithm.display_name} failed on {query.dataset_id}: {exc}"
            ) from exc
        elapsed = time.perf_counter() - started
        with self._lock:
            self._executed += 1
        self._datastore.append_log(
            log_id,
            f"[{self.name}] done {algorithm.display_name} on {query.dataset_id} "
            f"in {elapsed:.3f}s",
        )
        return ExecutionOutcome(
            query=query, ranking=ranking, elapsed_seconds=elapsed, executor_name=self.name
        )

    def execute_batch(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> BatchExecutionOutcome:
        """Run a group of same-(dataset, algorithm, parameters) queries at once.

        The whole group is handed to the algorithm's
        :meth:`~repro.algorithms.base.Algorithm.run_batch`, so algorithms with
        a native batch kernel amortise the per-graph work across the group.

        Raises
        ------
        ExecutorError
            If the queries disagree on algorithm or parameters, or if the
            algorithm raises (the original error message is preserved and
            also written to the task log).
        """
        queries = list(queries)
        if not queries:
            raise ExecutorError("cannot execute an empty batch of queries")
        log_id = log_id or "executor"
        first = queries[0]
        for query in queries[1:]:
            if (
                query.dataset_id != first.dataset_id
                or query.algorithm != first.algorithm
                or dict(query.parameters) != dict(first.parameters)
            ):
                raise ExecutorError(
                    "batched queries must share one dataset, algorithm and parameter "
                    f"set; got ({first.dataset_id!r}, {first.algorithm!r}) vs "
                    f"({query.dataset_id!r}, {query.algorithm!r})"
                )
        algorithm = get_algorithm(first.algorithm)
        self._datastore.append_log(
            log_id,
            f"[{self.name}] start batch of {len(queries)} x {algorithm.display_name} "
            f"on {first.dataset_id}",
        )
        started = time.perf_counter()
        try:
            with child_span(
                "executor_run", executor=self.name, algorithm=algorithm.name,
                dataset=first.dataset_id, batch=len(queries),
            ):
                rankings = algorithm.run_batch(
                    graph,
                    sources=[query.source for query in queries],
                    parameters=dict(first.parameters),
                )
        except Exception as exc:
            self._datastore.append_log(
                log_id, f"[{self.name}] FAILED batch {algorithm.display_name}: {exc}"
            )
            raise ExecutorError(
                f"{algorithm.display_name} batch failed on {first.dataset_id}: {exc}"
            ) from exc
        if len(rankings) != len(queries):
            # A miscounting third-party batch kernel must surface as an error
            # here; silently truncated results would leave scheduler waiters
            # hanging on rankings that never arrive.
            raise ExecutorError(
                f"{algorithm.display_name} batch returned {len(rankings)} rankings "
                f"for {len(queries)} queries"
            )
        elapsed = time.perf_counter() - started
        with self._lock:
            self._executed += len(queries)
        self._datastore.append_log(
            log_id,
            f"[{self.name}] done batch of {len(queries)} x {algorithm.display_name} "
            f"on {first.dataset_id} in {elapsed:.3f}s",
        )
        return BatchExecutionOutcome(
            queries=queries,
            rankings=rankings,
            elapsed_seconds=elapsed,
            executor_name=self.name,
        )


class ExecutorPool:
    """A scalable pool of executor nodes backed by a thread pool.

    Parameters
    ----------
    datastore:
        Shared datastore for logs.
    num_workers:
        Number of executor nodes (threads); can be changed later with
        :meth:`scale_to`, reproducing the "scaled up or down depending on the
        system's workload" property.
    """

    def __init__(self, datastore: DataStore, *, num_workers: int = 2) -> None:
        require_positive_int(num_workers, "num_workers")
        self._datastore = datastore
        self._lock = threading.Lock()
        self._num_workers = num_workers
        self._nodes = [
            ExecutorNode(datastore, name=f"executor-{index}") for index in range(num_workers)
        ]
        self._pool = ThreadPoolExecutor(max_workers=num_workers, thread_name_prefix="executor")
        self._round_robin = 0

    @property
    def num_workers(self) -> int:
        """Return the current number of executor nodes."""
        with self._lock:
            return self._num_workers

    def scale_to(self, num_workers: int) -> None:
        """Change the number of executor nodes (takes effect for new submissions)."""
        require_positive_int(num_workers, "num_workers")
        with self._lock:
            old_pool = self._pool
            self._num_workers = num_workers
            self._nodes = [
                ExecutorNode(self._datastore, name=f"executor-{index}")
                for index in range(num_workers)
            ]
            self._pool = ThreadPoolExecutor(
                max_workers=num_workers, thread_name_prefix="executor"
            )
        old_pool.shutdown(wait=True)

    def _next_node(self) -> "Tuple[ExecutorNode, ThreadPoolExecutor]":
        """Pick the next node round-robin; returns it with the current pool."""
        with self._lock:
            node = self._nodes[self._round_robin % len(self._nodes)]
            self._round_robin += 1
            return node, self._pool

    def submit(
        self, query: Query, graph: DirectedGraph, *, log_id: Optional[str] = None
    ) -> "Future[ExecutionOutcome]":
        """Submit a query for asynchronous execution; returns a future."""
        node, pool = self._next_node()
        return pool.submit(node.execute, query, graph, log_id=log_id)

    def submit_work(self, fn, /, *args, **kwargs) -> Future:
        """Run an arbitrary callable on the worker pool; returns a future.

        Used by the scheduler to off-load whole group dispatches (dataset
        materialisation, cache lookups, batched execution) so that task
        submission returns immediately instead of pinning the caller.
        """
        with self._lock:
            pool = self._pool
        return pool.submit(fn, *args, **kwargs)

    def execute_sync(
        self, query: Query, graph: DirectedGraph, *, log_id: Optional[str] = None
    ) -> ExecutionOutcome:
        """Execute a query synchronously on the calling thread."""
        node, _ = self._next_node()
        return node.execute(query, graph, log_id=log_id)

    def submit_batch(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> "Future[BatchExecutionOutcome]":
        """Submit a batched group of queries for asynchronous execution."""
        node, pool = self._next_node()
        return pool.submit(node.execute_batch, queries, graph, log_id=log_id)

    def execute_batch_sync(
        self,
        queries: Sequence[Query],
        graph: DirectedGraph,
        *,
        log_id: Optional[str] = None,
    ) -> BatchExecutionOutcome:
        """Execute a batched group synchronously on the calling thread."""
        node, _ = self._next_node()
        return node.execute_batch(queries, graph, log_id=log_id)

    def shutdown(self) -> None:
        """Shut the thread pool down, waiting for in-flight queries."""
        with self._lock:
            pool = self._pool
        pool.shutdown(wait=True)

    def total_executed(self) -> int:
        """Return the number of queries executed across all nodes."""
        with self._lock:
            return sum(node.executed_queries for node in self._nodes)
