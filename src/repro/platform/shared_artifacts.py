"""Shared-memory artifact lifecycle for the cross-process compute tier.

:class:`SharedArtifactRegistry` owns the ``multiprocessing.shared_memory``
segments that carry per-dataset :class:`~repro.graph.compiled.CompiledGraph`
CSR arrays into executor worker processes.  The contract mirrors the PR-2
publish recheck on the compiled-artifact cache:

* A segment is cached per dataset only while the exact ``CompiledGraph``
  *object* it was exported from is still the datastore's current artifact.
  Every invalidation path in the datastore (re-upload, drop, tombstone)
  produces a *new* object on the next fetch, so an identity check is a
  complete staleness test.
* If an export races a re-upload (the datastore's current artifact changed
  between fetch and publish), the segment is still valid for the graph the
  caller holds — it is handed out as a one-shot *ephemeral* lease and
  unlinked as soon as the batch completes, never cached.
* ``invalidate()`` (wired to gateway re-upload/drop) and ``close()``
  (gateway shutdown) unlink eagerly, so no segment outlives the artifact it
  carries.  Unlinking while a worker still has the segment mapped is safe:
  the mapping persists until the worker closes it, and the version stamp
  re-checked by ``CompiledGraph.from_shared`` keeps any *new* attach from
  landing on a mismatched segment.
"""

from __future__ import annotations

import os
import threading
import uuid
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..graph.compiled import CompiledGraph, SharedGraphHandle

__all__ = ["SharedArtifactRegistry"]


@dataclass
class _SegmentEntry:
    """One cached export: the graph object it came from plus the segment."""

    graph: CompiledGraph
    handle: SharedGraphHandle
    shm: object  # multiprocessing.shared_memory.SharedMemory


def _unlink_quietly(shm: object) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - views may still be exported
        pass
    except OSError:  # pragma: no cover
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass
    except OSError:  # pragma: no cover
        pass


class SharedArtifactRegistry:
    """Export, cache and invalidate shared-memory ``CompiledGraph`` segments."""

    def __init__(self, datastore) -> None:
        self._datastore = datastore
        self._lock = threading.Lock()
        self._entries: Dict[str, _SegmentEntry] = {}
        self._exported = 0
        self._ephemeral = 0
        self._invalidated = 0
        self._closed = False

    # ------------------------------------------------------------------ #
    def _segment_name(self) -> str:
        # Unique per export: pid guards against cross-process collisions,
        # the uuid against two concurrent exports in this process.
        return f"repro-{os.getpid()}-{uuid.uuid4().hex[:12]}"

    def lease(
        self, dataset_id: str, graph: CompiledGraph
    ) -> Tuple[SharedGraphHandle, Optional[Callable[[], None]]]:
        """Return a shareable handle for ``graph``, exporting if needed.

        Returns ``(handle, release)``.  ``release`` is ``None`` for cached
        segments (the registry owns their lifecycle) and a zero-argument
        callable for ephemeral ones — the caller must invoke it once the
        batch round-trip completes so the one-shot segment is unlinked.
        """
        with self._lock:
            entry = self._entries.get(dataset_id)
            if entry is not None and entry.graph is graph:
                return entry.handle, None

        # Export outside the lock: copying the CSR arrays can be large.
        try:
            current, version = self._datastore.fetch_compiled_with_version(dataset_id)
        except Exception:
            current, version = None, None
        if current is not graph:
            # The caller executes an artifact the datastore has already
            # replaced (or one it never published).  Correct, but not
            # cacheable — stamp it with a throwaway version and unlink
            # after use.
            version = -1
        handle, shm = graph.to_shared(segment=self._segment_name(), version=int(version))

        cached = False
        stale_entry: Optional[_SegmentEntry] = None
        duplicate: Optional[SharedGraphHandle] = None
        if current is graph:
            with self._lock:
                if not self._closed:
                    existing = self._entries.get(dataset_id)
                    if existing is not None and existing.graph is graph:
                        # A concurrent lease for the same graph won the
                        # publish: adopt its cached segment and discard our
                        # duplicate export.  Unlinking the *existing* one
                        # here instead would tear a segment already handed
                        # to an in-flight batch.
                        duplicate = existing.handle
                    else:
                        # Publish recheck: only cache if the datastore
                        # *still* serves this object — a re-upload racing
                        # the export must not leave its predecessor cached.
                        try:
                            latest, _ = self._datastore.fetch_compiled_with_version(
                                dataset_id
                            )
                        except Exception:
                            latest = None
                        if latest is graph:
                            stale_entry = self._entries.pop(dataset_id, None)
                            self._entries[dataset_id] = _SegmentEntry(
                                graph=graph, handle=handle, shm=shm
                            )
                            cached = True
        if duplicate is not None:
            _unlink_quietly(shm)
            return duplicate, None
        if stale_entry is not None:
            _unlink_quietly(stale_entry.shm)

        self._exported += 1
        if cached:
            return handle, None
        self._ephemeral += 1

        def release() -> None:
            _unlink_quietly(shm)

        return handle, release

    def invalidate(self, dataset_id: str) -> None:
        """Unlink the cached segment for ``dataset_id`` (re-upload/drop)."""
        with self._lock:
            entry = self._entries.pop(dataset_id, None)
            if entry is not None:
                self._invalidated += 1
        if entry is not None:
            _unlink_quietly(entry.shm)

    def close(self) -> None:
        """Unlink every cached segment (gateway shutdown)."""
        with self._lock:
            self._closed = True
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            _unlink_quietly(entry.shm)

    def active_segments(self) -> Tuple[str, ...]:
        """Names of the segments currently cached (for leak assertions)."""
        with self._lock:
            return tuple(entry.handle.segment for entry in self._entries.values())

    def active_handles(self) -> Tuple[SharedGraphHandle, ...]:
        """Handles of the cached segments (sizing for the bench harness)."""
        with self._lock:
            return tuple(entry.handle for entry in self._entries.values())

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "segments": len(self._entries),
                "segments_exported": self._exported,
                "segments_ephemeral": self._ephemeral,
                "segments_invalidated": self._invalidated,
                "shared_bytes": sum(
                    entry.handle.total_bytes for entry in self._entries.values()
                ),
            }
