"""R-way replicated, file-backed shard tier with failover reads and migrations.

The consistent-hash sharded store (:mod:`repro.platform.sharding`) scales the
storage layer *out*; this module makes it survive a shard loss and overflow
one machine's memory:

:class:`ReplicatedShardedDataStore`
    Extends :class:`~repro.platform.sharding.ShardedDataStore` so every
    dataset-keyed write lands on the ``R`` distinct ring *successors* of its
    key (the primary plus ``R - 1`` replicas) and is acknowledged only once a
    **write quorum** (``R // 2 + 1``) of replicas accepted it — so a single
    shard loss can never destroy an acked dataset or result.  Reads prefer
    the primary and transparently fail over: a replica that raises or is
    marked down is skipped and the next successor (then the spill tier, then
    a full shard scan bridging in-flight migrations) answers instead.

Sloppy placement under failure
    When a canonical replica is down, writes slide to the next live ring
    successor (a hinted handoff) so the quorum still reflects *distinct live
    copies*; :meth:`ReplicatedShardedDataStore.replicate` later repairs
    canonical placement and copy counts.  Version counters stay consistent
    across replicas because every copy of one write stores with the same
    global ``version_floor`` — all replicas agree on the dataset version, so
    the version-keyed result cache behaves exactly as on the plain sharded
    store.

Spill tier
    With ``spill_dir=...`` (or an explicit ``spill_store``) the store gains a
    cold :class:`~repro.platform.datastore.FileBackedDataStore` tier off the
    ring.  :meth:`ReplicatedShardedDataStore.spill` demotes the coldest
    datasets (least recently fetched) from the memory shards to the file
    tier; reads fail over to it transparently and a re-upload promotes the
    dataset back onto the ring.  File shards recover their datasets, results
    and compiled artifacts bit-identical on restart.

Maintenance as jobs
    :meth:`replicate`, :meth:`spill` and :meth:`rebalance` all accept a
    ``job`` (:class:`~repro.platform.jobs.JobRecord`): they emit a typed
    ``progress`` event per migrated item and stop at the next item boundary
    once cancellation is requested — which is how the gateway runs them as
    cancellable jobs whose progress streams over long-poll/SSE and the CLI.

Self-healing (anti-entropy)
    Three mechanisms keep the tier converging without an operator:

    * **Deletion tombstones** — :meth:`ReplicatedShardedDataStore.drop_dataset`
      and :meth:`~ReplicatedShardedDataStore.drop_result` write a durable,
      versioned tombstone to the R live successors instead of erasing
      blindly.  The repair passes treat a tombstone as authoritative over
      any copy at or below its version, so a replica that slept through the
      delete cannot resurrect the key when it recovers; the tombstone is
      reaped once every replica acknowledged it with the whole ring
      reachable.  File-backed shards persist tombstones across restarts.
    * **Health probes** — every request outcome feeds a per-shard failure
      streak, and :meth:`~ReplicatedShardedDataStore.probe_shards` adds
      periodic pings (the gateway runs them on a background prober).  F
      consecutive failures auto-``mark_down`` a shard; a successful probe
      auto-``mark_up`` one the prober took down.  Transitions are
      rate-limited (no flap storms), reported through listeners (the
      gateway turns them into typed job events) and surfaced in
      :meth:`~ReplicatedShardedDataStore.replication_stats`.  A manual
      ``mark_down`` stays sticky — probes never un-mark an operator call.
    * **Read-repair** — a failover read (answered by a non-primary source)
      enqueues its key on a bounded, coalescing repair queue;
      :meth:`~ReplicatedShardedDataStore.drain_read_repairs` restores that
      single key's R copies (the gateway runs it as a cancellable job as
      soon as keys queue), so ``underreplicated`` converges without waiting
      for a full :meth:`~ReplicatedShardedDataStore.replicate` scan.

Overload protection
    Replica operations share one retry discipline (bounded attempts,
    full-jitter backoff, a store-wide retry *budget* capping amplification
    during an outage), per-shard circuit breakers short-circuit reads past
    a sick shard between health transitions, and reads honour the caller's
    deadline between failover hops.  See :mod:`repro.platform.resilience`
    and :meth:`ReplicatedShardedDataStore.configure_resilience`.

Read-path version quorum
    With ``read_consistency="quorum"`` a dataset read opens with a *digest
    round*: the live R-successors are polled for their cheap per-key
    version counters (deadline- and breaker-aware, under the same retry
    discipline as data reads, one ``digest_attempt`` span per replica) and
    the read then serves only a copy at the maximum of the digests and the
    router's known version floor — a caller can never receive a graph
    below the floor.  Every dataset read surface routes through the
    versioned fetch (including plain ``fetch_dataset`` and the
    compiled-artifact path), so the floor check covers all of them;
    divergence the digest round discovers is flagged on the single-key
    read-repair queue instead of merely counted.  On the write side the
    divergence source is closed at the root: each upload reserves its
    version against the router's high-water mark under the routing lock (a
    CAS-style reservation), so concurrent re-uploads of the same dataset
    mint distinct, ordered versions, and each replica write supersedes
    only strictly older copies — the losing writer's copies are purged (or
    refused at the backend) rather than resurrected above the winner.  The
    back-compat default ``read_consistency="one"`` keeps the single-source
    fast path, where a below-floor answer is still detected
    (``stale_reads``) and flagged for repair but served.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .._validation import require_positive_int
from ..exceptions import DeadlineExceededError, InvalidParameterError, StorageError
from ..graph.digraph import DirectedGraph
from .cache import CacheKey
from .datastore import DataStore, FileBackedDataStore
from .jobs import JobRecord
from .resilience import CircuitBreaker, RetryPolicy, TokenBucket, current_deadline
from .sharding import DEFAULT_VIRTUAL_NODES, ShardedDataStore, ShardedResultCache
from .telemetry import child_span

__all__ = ["ReplicatedResultCache", "ReplicatedShardedDataStore"]


class ReplicatedResultCache(ShardedResultCache):
    """Routing cache view that follows the replicated store's health map.

    Keys route to the cache of the first *live* ring successor of their
    dataset (the shard failover reads prefer), and every operation is
    best-effort: a raising backend makes ``get`` report a miss and ``put``
    decline the entry instead of failing the query — the cache must never
    take serving down with a shard.  Invalidation fans out to every shard
    (replica copies mean derived entries can exist anywhere).
    """

    def get(self, key: CacheKey):
        try:
            return self._cache_for(key[0]).get(key)
        except Exception:
            return None

    def peek(self, key: CacheKey):
        try:
            return self._cache_for(key[0]).peek(key)
        except Exception:
            return None

    def put(self, key: CacheKey, ranking) -> bool:
        try:
            return self._cache_for(key[0]).put(key, ranking)
        except Exception:
            return False

    def _cache_for(self, dataset_id: str):
        return self._store._cache_backend_for(dataset_id).result_cache

    def invalidate_dataset(self, dataset_id: str) -> int:
        dropped = 0
        for backend in self._store.shard_stores().values():
            try:
                dropped += backend.result_cache.invalidate_dataset(dataset_id)
            except Exception:
                continue
        return dropped

    def clear(self) -> None:
        for backend in self._store.shard_stores().values():
            try:
                backend.result_cache.clear()
            except Exception:
                continue

    def __len__(self) -> int:
        total = 0
        for backend in self._store.shard_stores().values():
            try:
                total += len(backend.result_cache)
            except Exception:
                continue
        return total

    def _per_shard_stats(self) -> Dict[str, Any]:
        """Tolerant collection: a dead shard becomes an ``error`` entry.

        The base class's aggregation skips error entries, so a stats poll
        keeps working through an outage.
        """
        per_shard: Dict[str, Any] = {}
        for shard_id, backend in self._store.shard_stores().items():
            try:
                per_shard[shard_id] = backend.result_cache.stats()
            except Exception as exc:
                per_shard[shard_id] = {"error": str(exc)}
        return per_shard


class ReplicatedShardedDataStore(ShardedDataStore):
    """A sharded datastore replicating every key to R ring successors.

    Parameters
    ----------
    shards, num_shards, virtual_nodes, cache_ttl_seconds, cache_admit_on_second_miss:
        As on :class:`~repro.platform.sharding.ShardedDataStore`.  Backends
        may be :class:`~repro.platform.datastore.FileBackedDataStore`
        instances — a file-backed ring shard recovers its slice of the data
        on restart.
    replicas:
        Copies per key (``R``).  ``1`` reproduces the unreplicated store's
        placement; the write quorum is ``R // 2 + 1``, so ``R >= 2`` keeps
        every acked write on at least two shards.
    spill_dir, spill_store:
        Configure the cold file tier (mutually exclusive; ``spill_dir``
        builds a :class:`FileBackedDataStore` under the directory).
    probe_failure_threshold:
        Consecutive request/probe failures after which a shard is
        automatically marked down (the failure detector's F).
    probe_transition_interval_seconds:
        Minimum seconds between automatic health transitions of one shard —
        the rate limit that keeps a flapping shard from storming the ring
        with mark_down/mark_up churn (suppressed flips are counted).
    read_repair_queue_limit:
        Bound on the coalescing read-repair queue; keys flagged beyond it
        are dropped (and counted) rather than growing memory — the next
        full ``replicate()`` scan still catches them.
    retry_max_attempts, retry_base_delay_seconds, retry_max_delay_seconds:
        The shared retry policy for *transient* per-replica faults: at most
        ``retry_max_attempts`` total attempts per replica operation, with
        full-jitter exponential backoff between them.  ``StorageError``
        (absence) never retries, and an installed request deadline stops
        retrying early.
    retry_budget_capacity, retry_budget_refill_per_second:
        The store-wide retry budget (token bucket) every retry must win a
        token from, so a dead shard costs each caller its bounded attempts
        but can never trigger a cluster-doubling retry storm.  A refill
        rate of ``0`` makes the budget fixed.
    breaker_failure_threshold, breaker_cooldown_seconds:
        Per-shard circuit breakers over the same consecutive-failure
        streaks the health detector counts: at the threshold (defaulting to
        ``probe_failure_threshold``) the breaker opens and reads
        short-circuit straight past the shard to its next successor; after
        the cooldown the prober's next success closes it again.
    read_consistency:
        ``"one"`` (the back-compat default) serves the first answering
        source, detecting but still serving below-floor answers;
        ``"quorum"`` opens every dataset read with a version-digest round
        over the live R-successors and never serves a copy below the
        maximum of the digests and the router's known version floor.
    """

    def __init__(
        self,
        shards: Optional[Sequence[DataStore]] = None,
        *,
        num_shards: Optional[int] = None,
        replicas: int = 2,
        virtual_nodes: int = DEFAULT_VIRTUAL_NODES,
        spill_dir: Optional[str] = None,
        spill_store: Optional[DataStore] = None,
        cache_ttl_seconds: Optional[float] = None,
        cache_admit_on_second_miss: bool = False,
        probe_failure_threshold: int = 3,
        probe_transition_interval_seconds: float = 1.0,
        read_repair_queue_limit: int = 256,
        retry_max_attempts: int = 3,
        retry_base_delay_seconds: float = 0.02,
        retry_max_delay_seconds: float = 0.5,
        retry_budget_capacity: int = 64,
        retry_budget_refill_per_second: float = 8.0,
        breaker_failure_threshold: Optional[int] = None,
        breaker_cooldown_seconds: float = 2.0,
        read_consistency: str = "one",
    ) -> None:
        require_positive_int(replicas, "replicas")
        if read_consistency not in ("one", "quorum"):
            raise InvalidParameterError(
                f"read_consistency must be 'one' or 'quorum', got "
                f"{read_consistency!r}"
            )
        require_positive_int(probe_failure_threshold, "probe_failure_threshold")
        require_positive_int(read_repair_queue_limit, "read_repair_queue_limit")
        if probe_transition_interval_seconds < 0:
            raise InvalidParameterError(
                "probe_transition_interval_seconds must be >= 0, got "
                f"{probe_transition_interval_seconds}"
            )
        super().__init__(
            shards,
            num_shards=num_shards,
            virtual_nodes=virtual_nodes,
            cache_ttl_seconds=cache_ttl_seconds,
            cache_admit_on_second_miss=cache_admit_on_second_miss,
        )
        if replicas > self.num_shards:
            raise InvalidParameterError(
                f"replicas ({replicas}) cannot exceed the number of shards "
                f"({self.num_shards})"
            )
        if spill_dir is not None and spill_store is not None:
            raise InvalidParameterError(
                "provide at most one of `spill_dir` and `spill_store`"
            )
        self._replicas = replicas
        self._quorum = replicas // 2 + 1
        self._spill: Optional[DataStore] = (
            spill_store if spill_store is not None
            else (FileBackedDataStore(spill_dir) if spill_dir is not None else None)
        )
        #: Shards the operator (or a failure detector) declared unreachable:
        #: reads and writes skip them, the next ring successor takes over.
        self._down: set = set()
        #: The subset of ``_down`` the failure detector (not an operator)
        #: marked: only these are eligible for automatic mark_up.
        self._auto_down: set = set()
        self._shard_errors: Dict[str, int] = {}
        self._consecutive_failures: Dict[str, int] = {}
        self._last_transition: Dict[str, float] = {}
        self._probe_failure_threshold = probe_failure_threshold
        self._probe_transition_interval = probe_transition_interval_seconds
        self._auto_downs = 0
        self._auto_ups = 0
        self._suppressed_transitions = 0
        self._health_listeners: List[Callable[[str, str, int], None]] = []
        #: Coalescing queue of keys flagged by failover reads, drained by
        #: :meth:`drain_read_repairs` (the gateway launches a drain job as
        #: soon as a key queues).
        self._repair_queue: deque = deque()
        self._repair_queued: set = set()
        self._repair_limit = read_repair_queue_limit
        self._repair_dropped = 0
        self._repair_draining = False
        self._repair_launcher: Optional[Callable[[], None]] = None
        self._read_repairs = 0
        self._failover_reads = 0
        self._degraded_writes = 0
        self._spills = 0
        self._repairs = 0
        self._tombstones_written = 0
        self._tombstones_reaped = 0
        self._last_underreplicated: Optional[int] = None
        #: Stale-read detection: the highest dataset version this store has
        #: itself written or served, per dataset.  A failover read answering
        #: below the floor is counted and flagged for read-repair.
        self._known_version_floor: Dict[str, int] = {}
        self._stale_reads = 0
        #: Read-path version quorum: mode, digest/prevention counters, and
        #: the CAS-style upload reservations concurrent re-uploads of one
        #: dataset mint their distinct versions against (dataset id → the
        #: highest version an in-flight write has claimed).
        self._read_consistency = read_consistency
        self._digest_reads = 0
        self._stale_reads_prevented = 0
        self._version_conflicts_resolved = 0
        self._version_reservations: Dict[str, int] = {}
        #: Drop intents that may not have landed durably: dataset id → the
        #: tombstone version the drop minted.  The repair passes treat the
        #: entry as one more tombstone source, so a delete issued while
        #: every successor was unreachable is completed after recovery
        #: instead of silently resurrecting ("later retry" made real).
        self._pending_drops: Dict[str, int] = {}
        #: Per-shard circuit breakers (lazily built) and the shared retry
        #: policy/budget; see :meth:`configure_resilience`.
        self._breakers: Dict[str, CircuitBreaker] = {}
        self.configure_resilience(
            retry_max_attempts=retry_max_attempts,
            retry_base_delay_seconds=retry_base_delay_seconds,
            retry_max_delay_seconds=retry_max_delay_seconds,
            retry_budget_capacity=retry_budget_capacity,
            retry_budget_refill_per_second=retry_budget_refill_per_second,
            breaker_failure_threshold=(
                breaker_failure_threshold
                if breaker_failure_threshold is not None
                else probe_failure_threshold
            ),
            breaker_cooldown_seconds=breaker_cooldown_seconds,
        )
        self.result_cache = ReplicatedResultCache(self)

    # ------------------------------------------------------------------ #
    # topology, health and placement
    # ------------------------------------------------------------------ #
    @property
    def replicas(self) -> int:
        """Return R, the number of copies kept per key."""
        return self._replicas

    @property
    def quorum(self) -> int:
        """Return the write quorum (acks required before a write succeeds)."""
        return self._quorum

    @property
    def spill_store(self) -> Optional[DataStore]:
        """Return the cold file tier, if one is configured."""
        return self._spill

    @property
    def read_consistency(self) -> str:
        """Return the read consistency mode (``"one"`` or ``"quorum"``)."""
        return self._read_consistency

    def set_read_consistency(self, mode: str) -> None:
        """Switch between ``"one"`` and ``"quorum"`` dataset reads.

        The knob is safe to flip at runtime: it only selects whether the
        next read opens with a digest round, so in-flight reads finish
        under the mode they started with.
        """
        if mode not in ("one", "quorum"):
            raise InvalidParameterError(
                f"read_consistency must be 'one' or 'quorum', got {mode!r}"
            )
        with self._lock:
            self._read_consistency = mode

    def mark_down(self, shard_id: str) -> None:
        """Declare a shard unreachable: reads and writes skip it from now on.

        An operator call is *sticky*: the health prober never automatically
        marks a manually-downed shard back up (use :meth:`mark_up`).
        """
        with self._lock:
            if shard_id not in self._backends:
                raise InvalidParameterError(f"shard {shard_id!r} does not exist")
            self._down.add(shard_id)
            self._auto_down.discard(shard_id)
            self._last_transition[shard_id] = time.monotonic()
            self._epoch += 1

    def mark_up(self, shard_id: str) -> None:
        """Return a shard to service (idempotent)."""
        with self._lock:
            self._down.discard(shard_id)
            self._auto_down.discard(shard_id)
            self._consecutive_failures.pop(shard_id, None)
            self._last_transition[shard_id] = time.monotonic()
            self._epoch += 1

    def marked_down(self) -> List[str]:
        """Return the shards currently marked down, sorted."""
        with self._lock:
            return sorted(self._down)

    # ------------------------------------------------------------------ #
    # overload protection (retry discipline + per-shard circuit breakers)
    # ------------------------------------------------------------------ #
    def configure_resilience(
        self,
        *,
        retry_max_attempts: Optional[int] = None,
        retry_base_delay_seconds: Optional[float] = None,
        retry_max_delay_seconds: Optional[float] = None,
        retry_budget_capacity: Optional[int] = None,
        retry_budget_refill_per_second: Optional[float] = None,
        breaker_failure_threshold: Optional[int] = None,
        breaker_cooldown_seconds: Optional[float] = None,
    ) -> None:
        """(Re)build the retry policy, retry budget and breaker parameters.

        ``None`` keeps the current value.  The gateway forwards its overload
        knobs through here, so an externally-constructed store picks them up
        too.  Rebuilding resets the retry/breaker counters and breaker
        states — operator reconfiguration starts the discipline fresh.
        """
        with self._lock:
            current_policy = getattr(self, "_retry_policy", None)
            current_budget = getattr(self, "_retry_budget", None)
            budget = TokenBucket(
                retry_budget_capacity
                if retry_budget_capacity is not None
                else (current_budget.capacity if current_budget else 64),
                retry_budget_refill_per_second
                if retry_budget_refill_per_second is not None
                else (current_budget.refill_per_second if current_budget else 8.0),
            )
            self._retry_budget = budget
            self._retry_policy = RetryPolicy(
                max_attempts=retry_max_attempts
                if retry_max_attempts is not None
                else (current_policy.max_attempts if current_policy else 3),
                base_delay=retry_base_delay_seconds
                if retry_base_delay_seconds is not None
                else (current_policy.base_delay if current_policy else 0.02),
                max_delay=retry_max_delay_seconds
                if retry_max_delay_seconds is not None
                else (current_policy.max_delay if current_policy else 0.5),
                budget=budget,
            )
            self._breaker_failure_threshold = (
                breaker_failure_threshold
                if breaker_failure_threshold is not None
                else getattr(
                    self, "_breaker_failure_threshold", self._probe_failure_threshold
                )
            )
            self._breaker_cooldown = (
                breaker_cooldown_seconds
                if breaker_cooldown_seconds is not None
                else getattr(self, "_breaker_cooldown", 2.0)
            )
            self._breakers.clear()

    @property
    def retry_policy(self) -> RetryPolicy:
        """The shared retry policy every replica operation goes through."""
        return self._retry_policy

    @property
    def retry_budget(self) -> TokenBucket:
        """The store-wide token bucket retries draw from."""
        return self._retry_budget

    def _breaker_locked(self, shard_id: str) -> CircuitBreaker:
        breaker = self._breakers.get(shard_id)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self._breaker_failure_threshold,
                cooldown_seconds=self._breaker_cooldown,
            )
            self._breakers[shard_id] = breaker
        return breaker

    def _shard_allowed(self, shard_id: str) -> bool:
        """Breaker gate for the read path (probes deliberately bypass it:
        :meth:`probe_shards` pings the backend directly, and its success
        is what closes a half-open breaker)."""
        with self._lock:
            breaker = self._breakers.get(shard_id)
        return breaker is None or breaker.allow()

    def breaker_stats(self) -> Dict[str, Any]:
        """Return every instantiated breaker's state and counters."""
        with self._lock:
            breakers = dict(self._breakers)
        return {shard_id: breaker.stats() for shard_id, breaker in sorted(breakers.items())}

    # ------------------------------------------------------------------ #
    # failure detection (piggybacked on request outcomes + periodic probes)
    # ------------------------------------------------------------------ #
    def add_health_listener(self, listener: Callable[[str, str, int], None]) -> None:
        """Register ``listener(shard_id, "down"|"up", failure_streak)``.

        Called on every *automatic* health transition (the gateway turns
        them into typed ``shard_down``/``shard_up`` job events).  Listeners
        run with the store's routing lock held and must not call back into
        the store.
        """
        with self._lock:
            self._health_listeners.append(listener)

    def _emit_health_locked(self, shard_id: str, transition: str, streak: int) -> None:
        for listener in self._health_listeners:
            try:
                listener(shard_id, transition, streak)
            except Exception:
                continue  # observability must never take routing down

    def _transition_allowed_locked(self, shard_id: str) -> bool:
        last = self._last_transition.get(shard_id)
        if last is None:
            return True
        return time.monotonic() - last >= self._probe_transition_interval

    def _note_shard_success_locked(self, shard_id: Optional[str]) -> None:
        if shard_id is not None:
            self._consecutive_failures.pop(shard_id, None)
            breaker = self._breakers.get(shard_id)
            if breaker is not None:
                breaker.record_success()

    def _note_shard_error_locked(self, shard_id: Optional[str]) -> None:
        if shard_id is None:
            return
        self._shard_errors[shard_id] = self._shard_errors.get(shard_id, 0) + 1
        streak = self._consecutive_failures.get(shard_id, 0) + 1
        self._consecutive_failures[shard_id] = streak
        # The breaker consumes the same streak the health detector counts;
        # it opens independently of the (rate-limited) mark_down machinery,
        # so reads stop offering a sick shard work even between transitions.
        self._breaker_locked(shard_id).record_failure()
        if shard_id in self._down or streak < self._probe_failure_threshold:
            return
        if not self._transition_allowed_locked(shard_id):
            self._suppressed_transitions += 1
            return
        self._down.add(shard_id)
        self._auto_down.add(shard_id)
        self._auto_downs += 1
        self._last_transition[shard_id] = time.monotonic()
        self._epoch += 1
        self._emit_health_locked(shard_id, "down", streak)

    def probe_shards(self) -> List[Tuple[str, str]]:
        """Run one probe pass; return the transitions it caused.

        Pings every backend with a cheap read.  A failing ping feeds the
        same consecutive-failure streak as real request outcomes (F
        failures auto-mark the shard down); a successful ping resets the
        streak and — only for shards the *detector* took down, never for an
        operator's ``mark_down`` — marks the shard back up.  Both
        directions respect the per-shard transition rate limit.
        """
        with self._lock:
            backends = dict(self._backends)
        transitions: List[Tuple[str, str]] = []
        for shard_id, backend in backends.items():
            try:
                backend.occupancy()
                reachable = True
            except Exception:
                reachable = False
            with self._lock:
                if shard_id not in self._backends:
                    continue  # removed while probing
                if reachable:
                    self._note_shard_success_locked(shard_id)
                    if shard_id in self._auto_down:
                        if self._transition_allowed_locked(shard_id):
                            self._down.discard(shard_id)
                            self._auto_down.discard(shard_id)
                            self._auto_ups += 1
                            self._last_transition[shard_id] = time.monotonic()
                            self._epoch += 1
                            self._emit_health_locked(shard_id, "up", 0)
                            transitions.append((shard_id, "up"))
                        else:
                            self._suppressed_transitions += 1
                elif shard_id not in self._down:
                    self._note_shard_error_locked(shard_id)
                    if shard_id in self._down:
                        transitions.append((shard_id, "down"))
        return transitions

    def _reconcile_shard_health(self) -> None:
        """Probe every backend ahead of a maintenance pass, authoritatively.

        :meth:`replicate` and :meth:`rebalance` must converge on whatever
        the ring can *actually* serve, so the pass opens with one ping per
        backend and treats the result as ground truth: a reachable shard
        the detector had auto-marked down comes back up immediately — the
        per-shard transition rate limit is deliberately bypassed, because
        a full-ring maintenance scan is a deliberate observation, not the
        request-driven flapping the limit exists to damp.  The success
        also resets the failure streak and closes the shard's circuit
        breaker, so the repair reads that follow are not short-circuited
        past a recovered holder.  Operator ``mark_down`` shards stay down,
        exactly as in :meth:`probe_shards`.
        """
        with self._lock:
            backends = dict(self._backends)
        for shard_id, backend in backends.items():
            try:
                backend.occupancy()
                reachable = True
            except Exception:
                reachable = False
            with self._lock:
                if shard_id not in self._backends:
                    continue  # removed while probing
                if not reachable:
                    if shard_id not in self._down:
                        self._note_shard_error_locked(shard_id)
                    continue
                self._note_shard_success_locked(shard_id)
                if shard_id in self._auto_down:
                    self._down.discard(shard_id)
                    self._auto_down.discard(shard_id)
                    self._auto_ups += 1
                    self._last_transition[shard_id] = time.monotonic()
                    self._epoch += 1
                    self._emit_health_locked(shard_id, "up", 0)

    def health_stats(self) -> Dict[str, Any]:
        """Return the failure detector's counters and per-shard streaks."""
        with self._lock:
            return {
                "failure_threshold": self._probe_failure_threshold,
                "transition_interval_seconds": self._probe_transition_interval,
                "auto_downs": self._auto_downs,
                "auto_ups": self._auto_ups,
                "suppressed_transitions": self._suppressed_transitions,
                "auto_down": sorted(self._auto_down),
                "consecutive_failures": {
                    shard_id: streak
                    for shard_id, streak in self._consecutive_failures.items()
                    if streak
                },
            }

    def replica_shards_for(self, key: str) -> List[str]:
        """Return the canonical R-successor placement of ``key`` (health-blind)."""
        with self._lock:
            return self._ring.successors(key, self._replicas)

    def _placement_locked(self, key: str) -> Tuple[List[str], List[str]]:
        """Return ``(live successors, down successors)`` in ring order."""
        order = self._ring.successors(key, len(self._backends))
        live = [sid for sid in order if sid not in self._down]
        down = [sid for sid in order if sid in self._down]
        return live, down

    def _cache_backend_for(self, dataset_id: str) -> DataStore:
        """Return the backend whose cache owns ``dataset_id``'s entries."""
        with self._lock:
            live, down = self._placement_locked(dataset_id)
            preferred = live[0] if live else down[0]
            return self._backends[preferred]

    def _version_floor(self, dataset_id: str) -> int:
        """Global version high-water mark, tolerant of failing shards.

        The backend scan skips unreachable shards, so it alone can go
        *backwards* during an outage: a quorum write sliding past the down
        canonical holders would mint the same version their hidden copies
        already carry, and after recovery the repair passes could not tell
        the two graphs apart.  Seeding the scan with the router's own
        high-water mark of acked writes and drops
        (``_known_version_floor``) keeps every new version strictly above
        every copy this router ever acknowledged, reachable or not.  The
        scan is also seeded with any in-flight upload reservation
        (:attr:`_version_reservations`), so a concurrent writer or drop
        mints strictly past a version another writer has already claimed
        but not yet landed.
        """
        floor = max(
            self._known_version_floor.get(dataset_id, 0),
            self._version_reservations.get(dataset_id, 0),
        )
        backends = list(self._backends.values())
        if self._spill is not None:
            backends.append(self._spill)
        for backend in backends:
            try:
                floor = max(floor, backend.dataset_version(dataset_id))
            except Exception:
                continue
        return floor

    # ------------------------------------------------------------------ #
    # replicated reads
    # ------------------------------------------------------------------ #
    def _route_read(self, key: str, operation, *, missed=None):
        """Read with failover: replicas in ring order, spill tier, full scan.

        The primary answers on the fast path.  A replica that raises a
        :class:`StorageError` simply does not hold the key (normal during
        migrations and after a spill); any other exception is an
        infrastructure failure and is counted against the shard.  Either way
        the next source is consulted: the remaining R-successors, the spill
        tier, then every other shard (bridging in-flight moves exactly like
        the base class's fan-out scan).  ``missed`` covers readers that
        signal absence with a value (``has_*``, ``dataset_version``,
        ``get_logs``).

        Overload discipline: each source attempt runs under the shared
        retry policy (transient faults retry with jittered backoff, capped
        by the store-wide retry budget); a ring source whose circuit
        breaker is open is skipped without touching the backend; and once
        the first source has been consulted, the caller's deadline (when
        one is installed via :func:`~.resilience.deadline_scope`) is
        checked before each further failover hop so an expired request
        stops burning replicas.

        When a telemetry span is ambient on the calling thread, the whole
        read is wrapped in a ``storage_read`` span with one
        ``replica_attempt`` child per consulted source; breaker
        short-circuits land as events on the read span.
        """
        with child_span("storage_read", key=key) as read_span:
            return self._route_read_traced(
                key, operation, read_span, missed=missed
            )

    def _route_read_traced(
        self, key: str, operation, read_span, *, missed=None, reject=None
    ):
        with self._lock:
            live, down = self._placement_locked(key)
            primary = self._ring.successors(key, 1)[0]
            plan = [(sid, self._backends[sid]) for sid in live[: self._replicas]]
            tail = [
                (sid, self._backends[sid])
                for sid in live[self._replicas:] + down
            ]
        sources: List[Tuple[Optional[str], DataStore]] = list(plan)
        if self._spill is not None:
            sources.append((None, self._spill))
        sources.extend(tail)
        missing = object()
        fallback = missing
        first_error: Optional[BaseException] = None
        deadline = current_deadline()
        consulted = 0
        rejected = 0
        for shard_id, backend in sources:
            if consulted and deadline is not None and deadline.expired():
                raise DeadlineExceededError(
                    f"deadline expired during read failover for {key!r} "
                    f"after {consulted} source(s)",
                    deadline_ms=deadline.deadline_ms,
                )
            if shard_id is not None and not self._shard_allowed(shard_id):
                read_span.add_event("breaker_skip", shard=shard_id)
                continue  # open breaker: straight to the next successor
            consulted += 1
            try:
                with child_span(
                    "replica_attempt",
                    shard=shard_id if shard_id is not None else "spill",
                ):
                    value = self._retry_policy.run(
                        lambda backend=backend: operation(backend)
                    )
            except StorageError as exc:
                if first_error is None:
                    first_error = exc
                continue
            except DeadlineExceededError:
                # The *caller's* clock ran out mid-attempt.  That is not a
                # shard fault: re-raise without feeding the failure streak
                # or circuit breaker of a shard that did nothing wrong.
                raise
            except Exception as exc:
                if first_error is None:
                    first_error = exc
                with self._lock:
                    self._note_shard_error_locked(shard_id)
                continue
            if missed is not None and missed(value):
                if fallback is missing:
                    fallback = value
                continue
            if reject is not None and reject(value):
                # A healthy source answered with a copy the caller must not
                # see (below the quorum's version target): withhold it, flag
                # the key for repair and keep walking the successor list.
                rejected += 1
                enqueued = False
                with self._lock:
                    self._note_shard_success_locked(shard_id)
                    self._stale_reads += 1
                    self._stale_reads_prevented += 1
                    enqueued = self._queue_read_repair_locked(key)
                read_span.add_event(
                    "stale_skip",
                    shard=shard_id if shard_id is not None else "spill",
                )
                if enqueued:
                    self._kick_repair_launcher()
                continue
            enqueued = False
            with self._lock:
                self._note_shard_success_locked(shard_id)
                if shard_id != primary:
                    # Answered by a replica, the spill tier or the scan — the
                    # canonical primary was down, erroring, or missing the
                    # key.  Flag the key for single-key read-repair so its R
                    # copies converge without waiting for a full replicate()
                    # scan.
                    self._failover_reads += 1
                    enqueued = self._queue_read_repair_locked(key)
            if shard_id != primary:
                read_span.annotate(
                    failover=True,
                    served_by=shard_id if shard_id is not None else "spill",
                )
            if enqueued:
                self._kick_repair_launcher()
            return value
        if missed is not None and fallback is not missing:
            return fallback
        if rejected:
            raise StorageError(
                f"every reachable copy of {key!r} is below the version floor "
                f"the quorum established ({rejected} stale answer(s) withheld)"
            )
        if isinstance(first_error, StorageError):
            raise first_error
        if first_error is not None:
            raise StorageError(
                f"no shard could answer the read for {key!r}: {first_error}"
            ) from first_error
        raise StorageError(f"key {key!r} is not stored on any shard")

    # ------------------------------------------------------------------ #
    # stale-read detection (the observable first step toward a read-path
    # version quorum: failover answers are checked against the version
    # floor this store itself established)
    # ------------------------------------------------------------------ #
    def _note_read_version(self, dataset_id: str, version: int) -> None:
        """Compare a read's version against the caller-known floor.

        A read below the floor means a failover source served a pre-outage
        copy: count it and flag the key for single-key read-repair (the
        version-keyed result cache already protects rankings — this makes
        the staleness *observable* and self-healing).  A read at or above
        the floor raises it, so the floor tracks reality even for datasets
        stored before this store started (or by a peer).
        """
        enqueued = False
        with self._lock:
            floor = self._known_version_floor.get(dataset_id, 0)
            if version < floor:
                self._stale_reads += 1
                enqueued = self._queue_read_repair_locked(dataset_id)
            elif version > floor:
                self._known_version_floor[dataset_id] = version
        if enqueued:
            self._kick_repair_launcher()

    # ------------------------------------------------------------------ #
    # read-path version quorum (digest-first reads)
    # ------------------------------------------------------------------ #
    def _digest_round(self, dataset_id: str, read_span) -> Dict[str, int]:
        """Poll the live R-successors for their version digest of a key.

        The digest is the cheapest question a replica can answer — its
        local ``dataset_version`` counter (``0`` when it does not hold the
        key) — polled under the same per-replica discipline as data reads:
        a successor whose circuit breaker is open is skipped without
        touching the backend, each poll runs under the shared retry policy
        inside a ``digest_attempt`` span, and the caller's deadline is
        checked between hops (the first successor is always consulted,
        mirroring the failover read loop).  Returns ``{shard_id: version}``
        for every successor that answered.
        """
        with self._lock:
            live, _ = self._placement_locked(dataset_id)
            plan = [(sid, self._backends[sid]) for sid in live[: self._replicas]]
        deadline = current_deadline()
        digests: Dict[str, int] = {}
        polled = 0
        for shard_id, backend in plan:
            if polled and deadline is not None:
                deadline.raise_if_expired(
                    f"during the version-digest round for {dataset_id!r}"
                )
            if not self._shard_allowed(shard_id):
                read_span.add_event("breaker_skip", shard=shard_id)
                continue
            polled += 1
            try:
                with child_span("digest_attempt", shard=shard_id):
                    version = self._retry_policy.run(
                        lambda backend=backend: backend.dataset_version(dataset_id)
                    )
            except DeadlineExceededError:
                raise  # the caller's clock, not a shard fault
            except StorageError:
                continue
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)
                continue
            with self._lock:
                self._note_shard_success_locked(shard_id)
            digests[shard_id] = version
        return digests

    def _quorum_fetch_versioned(self, dataset_id: str, operation):
        """Serve ``(payload, version)`` at the digest round's maximum version.

        The version target is the maximum of the digests and the router's
        known version floor; the failover walk then *withholds* any source
        answering below it (counted as ``stale_reads_prevented``, flagged
        for read-repair) instead of serving it.  Divergence among the
        digests — holders at more than one version — is resolved for the
        caller by serving the maximum, and the key is queued on the
        single-key read-repair queue so the replicas themselves converge.
        """
        with child_span(
            "storage_read", key=dataset_id, consistency="quorum"
        ) as read_span:
            digests = self._digest_round(dataset_id, read_span)
            held = [version for version in digests.values() if version > 0]
            enqueued = False
            with self._lock:
                self._digest_reads += 1
                floor = self._known_version_floor.get(dataset_id, 0)
                target = max([floor] + held)
                if held and any(version < target for version in held):
                    self._version_conflicts_resolved += 1
                    enqueued = self._queue_read_repair_locked(dataset_id)
            if enqueued:
                self._kick_repair_launcher()
            read_span.annotate(digest_replicas=len(digests), version_target=target)
            value = self._route_read_traced(
                dataset_id,
                operation,
                read_span,
                reject=lambda value: value[1] < target,
            )
            self._note_read_version(dataset_id, value[1])
            return value

    def fetch_dataset(self, dataset_id: str):
        """Return the dataset graph, routed through the versioned fetch.

        The base class reads the payload without its version, which lets a
        failover source serve a pre-outage copy with no ``stale_reads``
        detection at all; routing through
        :meth:`fetch_dataset_with_version` puts every dataset read —
        one-mode floor check and quorum alike — on the same guard.
        """
        return self.fetch_dataset_with_version(dataset_id)[0]

    def fetch_dataset_with_version(self, dataset_id: str):
        if self._read_consistency == "quorum":
            return self._quorum_fetch_versioned(
                dataset_id,
                lambda backend: backend.fetch_dataset_with_version(dataset_id),
            )
        graph, version = super().fetch_dataset_with_version(dataset_id)
        self._note_read_version(dataset_id, version)
        return graph, version

    def fetch_compiled_with_version(self, dataset_id: str):
        if self._read_consistency == "quorum":
            return self._quorum_fetch_versioned(
                dataset_id,
                lambda backend: backend.fetch_compiled_with_version(dataset_id),
            )
        compiled, version = super().fetch_compiled_with_version(dataset_id)
        self._note_read_version(dataset_id, version)
        return compiled, version

    # ------------------------------------------------------------------ #
    # read-repair (single-key anti-entropy driven by failover reads)
    # ------------------------------------------------------------------ #
    def _queue_read_repair_locked(self, key: str) -> bool:
        """Flag ``key`` for repair; return whether it newly queued.

        The queue coalesces (a key already pending is not re-added) and is
        bounded — beyond the limit keys are dropped and counted, the next
        full :meth:`replicate` scan still catches them.
        """
        if key in self._repair_queued:
            return False
        if len(self._repair_queue) >= self._repair_limit:
            self._repair_dropped += 1
            return False
        self._repair_queue.append(key)
        self._repair_queued.add(key)
        return True

    def set_repair_launcher(self, launcher: Optional[Callable[[], None]]) -> None:
        """Install the callback invoked (outside the lock) when a key queues.

        The gateway points this at a coalesced background job running
        :meth:`drain_read_repairs`; without one the queue simply waits for
        an explicit drain or the next maintenance pass.
        """
        with self._lock:
            self._repair_launcher = launcher

    def _kick_repair_launcher(self) -> None:
        with self._lock:
            launcher = self._repair_launcher
        if launcher is None:
            return
        try:
            launcher()
        except Exception:
            pass  # repair scheduling is best-effort; the queue persists

    def pending_read_repairs(self) -> int:
        """Return how many keys are waiting on the read-repair queue."""
        with self._lock:
            return len(self._repair_queue)

    def drain_read_repairs(self, *, job: Optional[JobRecord] = None) -> Dict[str, int]:
        """Repair every queued key's R copies; return drain counts.

        Each key gets the same single-key treatment as a :meth:`replicate`
        scan item (dataset and result repair are both attempted — whichever
        matches the key is a no-op for the other).  Emits one ``progress``
        event per key, stops at key boundaries on cancellation, and a
        concurrent call returns immediately (one drain at a time).
        """
        with self._lock:
            if self._repair_draining:
                return {"repaired": 0, "drained": 0, "pending": len(self._repair_queue)}
            self._repair_draining = True
        repaired = 0
        drained = 0
        try:
            with self._topology_lock:
                total = self.pending_read_repairs()
                while not self._cancelled(job):
                    with self._lock:
                        if not self._repair_queue:
                            break
                        key = self._repair_queue.popleft()
                        self._repair_queued.discard(key)
                    repaired += self._ensure_dataset_replicas(key)
                    repaired += self._ensure_result_replicas(key)
                    drained += 1
                    self._progress(
                        job, "read-repair", key, drained, max(total, drained)
                    )
                if drained:
                    dataset_ids = self._ring_dataset_ids()
                    result_ids = self._ring_result_ids()
                    underreplicated = self._count_underreplicated(
                        dataset_ids, result_ids
                    )
                    with self._lock:
                        self._last_underreplicated = underreplicated
        finally:
            with self._lock:
                self._read_repairs += repaired
                self._repair_draining = False
                pending = len(self._repair_queue)
        return {"repaired": repaired, "drained": drained, "pending": pending}

    # ------------------------------------------------------------------ #
    # replicated writes
    # ------------------------------------------------------------------ #
    def store_dataset(self, dataset_id: str, graph: DirectedGraph) -> None:
        """Write a dataset to its R live ring successors, quorum-acknowledged.

        Every replica stores with the same global ``version_floor``, so all
        copies agree on the new upload version.  When a canonical replica is
        down or fails, the write slides to the next live successor (hinted
        handoff) — fewer than quorum acks raise :class:`StorageError` and the
        write is not acknowledged.  Copies on shards outside the acked set
        are purged (the write-time authority rule of the base class), and a
        spilled copy is superseded: a re-upload promotes the dataset back to
        the memory tier.

        The replica writes run *outside* the routing lock on the same
        epoch-validated scheme as results (:meth:`_replicated_write`), so a
        large upload persisting to a file-backed shard no longer serialises
        every other store operation.  If a topology change moves the
        dataset's replica set mid-write, the write repeats against the fresh
        owners (the version floor is re-read, so versions stay monotonic).

        Concurrent re-uploads of the same dataset are ordered by a
        CAS-style reservation taken under the routing lock: each writer
        mints a distinct version, each replica write supersedes only
        strictly older copies, and the losing writer's copies are purged
        as superseded — the replicas converge on the winner without
        waiting for a repair pass.
        """
        with child_span("storage_write", key=dataset_id, kind="dataset") as write_span:
            self._store_dataset_traced(dataset_id, graph, write_span)

    def _store_dataset_traced(self, dataset_id, graph, write_span) -> None:
        while True:
            with self._lock:
                epoch = self._epoch
                # CAS-style version reservation: the upload claims its
                # version against the router's high-water mark (acked
                # floor, reachable backend scan, and any reservation a
                # concurrent writer already holds — ``_version_floor``
                # folds all three in) under the routing lock, so two
                # racing re-uploads of the same dataset always mint
                # distinct, ordered versions even though the replica
                # writes themselves run outside the lock.
                floor = self._version_floor(dataset_id)
                minted = floor + 1
                self._version_reservations[dataset_id] = minted
                live, _ = self._placement_locked(dataset_id)
                plan = [(sid, self._backends[sid]) for sid in live]
            acked: List[Tuple[str, DataStore]] = []
            for shard_id, backend in plan:
                if len(acked) == self._replicas:
                    break
                def _store_one(backend=backend):
                    owner_had_dataset = backend.has_dataset(dataset_id)
                    stored = backend.store_dataset(
                        dataset_id,
                        graph,
                        version_floor=floor,
                        supersede_below=minted,
                    )
                    return owner_had_dataset, stored

                try:
                    # The in-memory/file backends validate before mutating, so
                    # a failed attempt left no partial copy and the shared
                    # retry policy may safely re-send the whole write.
                    # ``supersede_below`` makes the send conditional: a
                    # replica already holding a concurrent re-upload's newer
                    # version refuses the overwrite, so the losing writer can
                    # never resurrect its older graph above the winner — the
                    # newer copy also satisfies this write's durability, so
                    # the refusal still counts as an ack.
                    with child_span("replica_write", shard=shard_id):
                        owner_had_dataset, stored = self._retry_policy.run(
                            _store_one
                        )
                    if stored and not owner_had_dataset:
                        backend.result_cache.invalidate_dataset(dataset_id)
                    acked.append((shard_id, backend))
                except Exception:
                    with self._lock:
                        self._note_shard_error_locked(shard_id)
            if len(acked) < self._quorum:
                with self._lock:
                    # Nothing landed: release the reservation (unless a
                    # concurrent writer already reserved past it) so the
                    # failed write does not poison the version sequence
                    # with a version no replica holds.
                    if not acked and (
                        self._version_reservations.get(dataset_id) == minted
                    ):
                        del self._version_reservations[dataset_id]
                raise StorageError(
                    f"dataset {dataset_id!r} write reached {len(acked)} of the "
                    f"{self._quorum} replica acks the quorum requires"
                )
            write_span.annotate(acked=len(acked), quorum=self._quorum)
            with self._lock:
                for shard_id, _ in acked:
                    self._note_shard_success_locked(shard_id)
                if len(acked) < self._replicas:
                    self._degraded_writes += 1
                settled = self._epoch == epoch
                if not settled:
                    live, _ = self._placement_locked(dataset_id)
                    current_owners = {
                        self._backends[sid] for sid in live[: self._replicas]
                    }
                    settled = current_owners <= {backend for _, backend in acked}
                if settled:
                    acked_ids = {sid for sid, _ in acked}
                    for shard_id, backend in self._backends.items():
                        if shard_id in acked_ids:
                            continue
                        if shard_id in self._down:
                            # A down shard takes no writes, purges included;
                            # a pre-outage copy it still holds is below the
                            # floor this write establishes, so the quorum
                            # read withholds it and the repair passes
                            # supersede it after recovery.
                            continue
                        try:
                            if backend.has_dataset(dataset_id) and (
                                backend.dataset_version(dataset_id) < minted
                            ):
                                # Purge only strictly-older copies: a shard
                                # outside this write's acked set may already
                                # hold a concurrent re-upload's newer version,
                                # which must survive the losing writer's
                                # cleanup.
                                backend.drop_dataset(dataset_id)
                        except Exception:
                            self._note_shard_error_locked(shard_id)
            if not settled:
                continue
            if self._spill is not None:
                try:
                    if self._spill.has_dataset(dataset_id) and (
                        self._spill.dataset_version(dataset_id) < minted
                    ):
                        self._spill.drop_dataset(dataset_id)
                except Exception:
                    pass
            with self._lock:
                # Every acked replica holds at least ``minted``: that is now
                # the caller-known version floor stale-read detection and
                # the quorum's digest round hold future reads to.
                self._known_version_floor[dataset_id] = max(
                    self._known_version_floor.get(dataset_id, 0), minted
                )
                if self._version_reservations.get(dataset_id) == minted:
                    del self._version_reservations[dataset_id]
                # The acked upload (strictly above any pending tombstone)
                # supersedes an outstanding drop intent.
                self._pending_drops.pop(dataset_id, None)
            return

    def put_result(self, result_id: str, payload: Mapping[str, object]) -> None:
        """Store a result on its R live successors with quorum acknowledgement."""
        self._replicated_write(
            result_id, lambda backend: backend.put_result(result_id, payload)
        )

    def _replicated_write(self, key: str, operation) -> None:
        """Write to R live successors outside the lock, epoch-validated.

        Mirrors the base class's optimistic scheme for IO-heavy writes
        (results may persist to disk on file-backed shards): the plan is
        snapshotted under the lock, the writes run outside it, and if a
        topology change moved the key's replica set underneath, the write is
        repeated against the fresh owners (results are written once per id,
        so a duplicate send is idempotent).
        """
        with child_span("storage_write", key=key, kind="result") as write_span:
            self._replicated_write_traced(key, operation, write_span)

    def _replicated_write_traced(self, key: str, operation, write_span) -> None:
        while True:
            with self._lock:
                epoch = self._epoch
                live, _ = self._placement_locked(key)
                plan = [(sid, self._backends[sid]) for sid in live]
            acked: List[Tuple[str, DataStore]] = []
            for shard_id, backend in plan:
                if len(acked) == self._replicas:
                    break
                try:
                    with child_span("replica_write", shard=shard_id):
                        self._retry_policy.run(
                            lambda backend=backend: operation(backend)
                        )
                    acked.append((shard_id, backend))
                except Exception:
                    with self._lock:
                        self._note_shard_error_locked(shard_id)
            if len(acked) < self._quorum:
                raise StorageError(
                    f"write of {key!r} reached {len(acked)} of the "
                    f"{self._quorum} replica acks the quorum requires"
                )
            write_span.annotate(acked=len(acked), quorum=self._quorum)
            with self._lock:
                for shard_id, _ in acked:
                    self._note_shard_success_locked(shard_id)
                if len(acked) < self._replicas:
                    self._degraded_writes += 1
                if self._epoch == epoch:
                    return
                live, _ = self._placement_locked(key)
                current_owners = {
                    self._backends[sid] for sid in live[: self._replicas]
                }
                if current_owners <= {backend for _, backend in acked}:
                    return

    def append_log(self, log_id: str, message: str) -> None:
        """Append a log line on the first live successor that accepts it.

        Log streams are single-copy diagnostics: the line lands on the
        preferred live shard, failing over down the successor list.  When no
        shard can take it the line is dropped — logging must never take
        query serving down with a shard.
        """
        with self._lock:
            live, down = self._placement_locked(log_id)
            plan = [(sid, self._backends[sid]) for sid in live + down]
        for shard_id, backend in plan:
            try:
                backend.append_log(log_id, message)
                return
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)

    # ------------------------------------------------------------------ #
    # tolerant fan-out surfaces
    # ------------------------------------------------------------------ #
    def _tolerant_union(self, lister) -> List[str]:
        identifiers: set = set()
        for shard_id, backend in self.shard_stores().items():
            try:
                identifiers.update(lister(backend))
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)
        if self._spill is not None:
            try:
                identifiers.update(lister(self._spill))
            except Exception:
                pass
        return sorted(identifiers)

    def list_datasets(self) -> List[str]:
        """Dataset ids across every shard and the spill tier (deduplicated)."""
        return self._tolerant_union(lambda backend: backend.list_datasets())

    def list_results(self) -> List[str]:
        """Result ids across every shard and the spill tier (deduplicated)."""
        return self._tolerant_union(lambda backend: backend.list_results())

    def list_logs(self) -> List[str]:
        """Log stream ids across every shard and the spill tier (deduplicated)."""
        return self._tolerant_union(lambda backend: backend.list_logs())

    def _tolerant_drop(self, dropper) -> None:
        for shard_id, backend in self.shard_stores().items():
            try:
                dropper(backend)
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)
        if self._spill is not None:
            try:
                dropper(self._spill)
            except Exception:
                pass

    def drop_dataset(self, dataset_id: str) -> None:
        """Delete a dataset everywhere by writing versioned tombstones.

        The R live ring successors each record a tombstone one version past
        the global high-water mark (sliding past failing shards exactly like
        a hinted-handoff write); any other shard still holding a copy is
        tombstoned too, and the spill copy is dropped.  A copy on an
        unreachable shard is no longer a resurrection hazard: the repair
        passes treat the tombstone as authoritative over every copy at or
        below its version, and reap it once all R replicas acknowledged the
        delete with the whole ring reachable.  Like the base drop, this
        never raises — a totally unreachable ring simply leaves the data
        for a later retry.
        """
        with self._lock:
            version = self._version_floor(dataset_id) + 1
            # The deletion is itself a version-bearing write: remembering it
            # as the floor keeps a re-upload during the same outage strictly
            # above the tombstone, so repair can never mistake the fresh
            # copy for resurrected pre-deletion data.  The pending-drop
            # entry lets the repair passes finish a delete whose tombstones
            # never reached a single backend.
            self._known_version_floor[dataset_id] = version
            self._pending_drops[dataset_id] = version
            live, _ = self._placement_locked(dataset_id)
            acked = 0
            processed: set = set()
            for shard_id in live:
                if acked == self._replicas:
                    break
                processed.add(shard_id)
                try:
                    self._backends[shard_id].set_dataset_tombstone(
                        dataset_id, version
                    )
                    acked += 1
                except Exception:
                    self._note_shard_error_locked(shard_id)
            if acked:
                self._tombstones_written += 1
            for shard_id, backend in self._backends.items():
                if shard_id in processed:
                    continue
                try:
                    if backend.has_dataset(dataset_id):
                        backend.set_dataset_tombstone(dataset_id, version)
                except Exception:
                    self._note_shard_error_locked(shard_id)
        if self._spill is not None:
            try:
                if self._spill.has_dataset(dataset_id):
                    self._spill.drop_dataset(dataset_id)
            except Exception:
                pass

    def drop_result(self, result_id: str) -> None:
        """Delete a result everywhere by writing tombstones.

        Results are written once per id, so the tombstone needs no version:
        its presence kills the single write it shadows.  Placement and
        reaping mirror :meth:`drop_dataset`.
        """
        with self._lock:
            live, _ = self._placement_locked(result_id)
            acked = 0
            processed: set = set()
            for shard_id in live:
                if acked == self._replicas:
                    break
                processed.add(shard_id)
                try:
                    self._backends[shard_id].set_result_tombstone(result_id)
                    acked += 1
                except Exception:
                    self._note_shard_error_locked(shard_id)
            if acked:
                self._tombstones_written += 1
            for shard_id, backend in self._backends.items():
                if shard_id in processed:
                    continue
                try:
                    if backend.has_result(result_id):
                        backend.set_result_tombstone(result_id)
                except Exception:
                    self._note_shard_error_locked(shard_id)
        if self._spill is not None:
            try:
                self._spill.drop_result(result_id)
            except Exception:
                pass

    def drop_logs(self, log_id: str) -> None:
        """Drop a log stream from every shard and the spill tier."""
        self._tolerant_drop(lambda backend: backend.drop_logs(log_id))

    def _per_shard_artifact_stats(self) -> Dict[str, Any]:
        """Tolerant artifact-counter collection, mirroring the cache view's."""
        per_shard: Dict[str, Any] = {}
        for shard_id, backend in self.shard_stores().items():
            try:
                per_shard[shard_id] = backend.artifact_stats()
            except Exception as exc:
                per_shard[shard_id] = {"error": str(exc)}
        return per_shard

    def occupancy(self) -> Dict[str, int]:
        """Summed occupancy across reachable shards (the spill tier reports
        separately through :meth:`spill_stats`)."""
        totals: Dict[str, int] = {}
        for shard_id, backend in self.shard_stores().items():
            try:
                for key, value in backend.occupancy().items():
                    totals[key] = totals.get(key, 0) + value
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)
        return totals

    # ------------------------------------------------------------------ #
    # maintenance migrations (run inline or as cancellable jobs)
    # ------------------------------------------------------------------ #
    @staticmethod
    def _cancelled(job: Optional[JobRecord]) -> bool:
        return job is not None and job.cancel_requested

    @staticmethod
    def _progress(
        job: Optional[JobRecord], kind: str, item: str, completed: int, total: int
    ) -> None:
        if job is not None:
            job.append(
                "progress", kind=kind, item=item, completed=completed, total=total
            )

    def _ring_ids(self, lister) -> List[str]:
        """Union of ids over the ring shards only (the spill tier excluded)."""
        identifiers: set = set()
        with self._lock:
            backends = dict(self._backends)
        for shard_id, backend in backends.items():
            try:
                identifiers.update(lister(backend))
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)
        return sorted(identifiers)

    def _ring_dataset_ids(self) -> List[str]:
        """Ring-resident dataset ids plus tombstone-only ids.

        Including ids whose every copy is already gone keeps their
        tombstones propagating and reaping through the normal repair scan.
        """
        identifiers = set(self._ring_ids(lambda backend: backend.list_datasets()))
        identifiers.update(
            self._ring_ids(
                lambda backend: list(backend.list_dataset_tombstones())
            )
        )
        return sorted(identifiers)

    def _ring_result_ids(self) -> List[str]:
        """Ring-resident result ids plus tombstone-only ids."""
        identifiers = set(self._ring_ids(lambda backend: backend.list_results()))
        identifiers.update(
            self._ring_ids(lambda backend: backend.list_result_tombstones())
        )
        return sorted(identifiers)

    def replicate(self, *, job: Optional[JobRecord] = None) -> Dict[str, int]:
        """Restore R copies of every dataset and result; return repair counts.

        The pass opens by reconciling shard health against reality (one
        ping per backend; recovered auto-down shards come back up and
        their breakers close — see :meth:`_reconcile_shard_health`), then
        scans the ring, copies each under-replicated key from its freshest
        reachable holder onto the live successors missing it, and records how
        many keys remain under-replicated (the replication lag reported by
        :meth:`replication_stats`).  Emits one ``progress`` event per key on
        ``job`` and stops at the next key boundary once the job's
        cancellation flag is raised.
        """
        repaired_datasets = 0
        repaired_results = 0
        with self._topology_lock:
            self._reconcile_shard_health()
            dataset_ids = self._ring_dataset_ids()
            result_ids = self._ring_result_ids()
            total = len(dataset_ids) + len(result_ids)
            done = 0
            for dataset_id in dataset_ids:
                if self._cancelled(job):
                    break
                repaired_datasets += self._ensure_dataset_replicas(dataset_id)
                done += 1
                self._progress(job, "replicate", dataset_id, done, total)
            for result_id in result_ids:
                if self._cancelled(job):
                    break
                repaired_results += self._ensure_result_replicas(result_id)
                done += 1
                self._progress(job, "replicate", result_id, done, total)
            underreplicated = self._count_underreplicated(dataset_ids, result_ids)
        with self._lock:
            self._repairs += repaired_datasets + repaired_results
            self._last_underreplicated = underreplicated
        return {
            "datasets_repaired": repaired_datasets,
            "results_repaired": repaired_results,
            "underreplicated": underreplicated,
        }

    def _ensure_dataset_replicas(self, dataset_id: str) -> int:
        """Copy a dataset onto the live successors missing it; return copies made.

        Tombstones first: when the highest tombstone version on any shard
        meets or beats every live copy, the *delete* is the authoritative
        write — remaining copies are purged, the tombstone propagates to
        all R targets, and once every target acknowledged it with the whole
        ring reachable the tombstone is reaped.  A live copy strictly newer
        than the tombstone means a re-upload won the race: the stale
        tombstones are cleared and normal copy repair proceeds.

        Every repaired copy must land at the *same* version as its siblings
        (the all-replicas-agree invariant the cache depends on).  A target
        whose own counter is still below the authoritative version stores
        with ``version_floor = version - 1`` and lands exactly on it; a
        target whose counter already moved past it (drops of stray copies
        bump counters without a global write) would land *above* — so when
        that happens the achieved version becomes the new target and the
        other replicas are re-stored up to it, converging in a second pass
        instead of leaving the copies divergent (and instead of every later
        repair scan re-copying forever).
        """
        with self._lock:
            live, _ = self._placement_locked(dataset_id)
            targets = live[: self._replicas]
            holders: Dict[str, int] = {}
            tombstones: Dict[str, int] = {}
            unreachable = False
            for shard_id, backend in self._backends.items():
                try:
                    marker = backend.dataset_tombstone(dataset_id)
                    if marker:
                        tombstones[shard_id] = marker
                    if backend.has_dataset(dataset_id):
                        holders[shard_id] = backend.dataset_version(dataset_id)
                except Exception:
                    unreachable = True
                    continue
            # The router's own drop intent counts as one more tombstone
            # source: a delete issued while every successor was down left
            # no marker on any backend, and this is where it is completed.
            tomb = max(
                max(tombstones.values(), default=0),
                self._pending_drops.get(dataset_id, 0),
            )
            if tomb and max(holders.values(), default=0) <= tomb:
                return self._settle_dataset_tombstone_locked(
                    dataset_id, tomb, holders, targets, unreachable
                )
            if tomb:
                # A write newer than the delete exists somewhere: the
                # tombstone lost the race and must stop shadowing repairs.
                self._pending_drops.pop(dataset_id, None)
                for shard_id in tombstones:
                    try:
                        self._backends[shard_id].clear_dataset_tombstone(dataset_id)
                    except Exception:
                        continue
            if not holders:
                return 0
            best = max(holders, key=lambda shard_id: holders[shard_id])
            if all(holders.get(shard_id) == holders[best] for shard_id in targets):
                return 0  # fully replicated and version-aligned: nothing to fetch
            try:
                graph, version = self._backends[best].fetch_dataset_with_version(
                    dataset_id
                )
            except Exception:
                self._note_shard_error_locked(best)
                return 0
            repaired = 0
            stable = False
            while not stable:
                stable = True
                for shard_id in targets:
                    if holders.get(shard_id) == version:
                        continue
                    backend = self._backends[shard_id]
                    try:
                        backend.store_dataset(
                            dataset_id, graph, version_floor=version - 1
                        )
                        backend.result_cache.invalidate_dataset(dataset_id)
                        achieved = backend.dataset_version(dataset_id)
                        holders[shard_id] = achieved
                        repaired += 1
                    except Exception:
                        self._note_shard_error_locked(shard_id)
                        continue
                    if achieved > version:
                        # This target's counter had moved past the
                        # authoritative version: pull the siblings up to the
                        # achieved one on the next pass.
                        version = achieved
                        stable = False
            return repaired

    def _settle_dataset_tombstone_locked(
        self,
        dataset_id: str,
        version: int,
        holders: Dict[str, int],
        targets: Sequence[str],
        unreachable: bool,
    ) -> int:
        """Enforce an authoritative tombstone: purge, propagate, maybe reap.

        Returns the number of copies purged (they count as repair work).
        The tombstone is reaped — cleared from every shard — only when all
        R targets acknowledged it *and* no backend was unreachable during
        the scan, so a sleeping shard's stale copy can never outlive the
        marker that kills it.
        """
        purged = 0
        acked = 0
        for shard_id in targets:
            try:
                self._backends[shard_id].set_dataset_tombstone(dataset_id, version)
                if shard_id in holders:
                    purged += 1
                acked += 1
            except Exception:
                unreachable = True
                self._note_shard_error_locked(shard_id)
        for shard_id in holders:
            if shard_id in targets:
                continue
            try:
                self._backends[shard_id].set_dataset_tombstone(dataset_id, version)
                purged += 1
            except Exception:
                unreachable = True
                self._note_shard_error_locked(shard_id)
        if self._spill is not None:
            try:
                if (
                    self._spill.has_dataset(dataset_id)
                    and self._spill.dataset_version(dataset_id) <= version
                ):
                    self._spill.drop_dataset(dataset_id)
                    purged += 1
            except Exception:
                unreachable = True
        if not unreachable and acked == len(targets):
            # Every target durably carries the marker, so the router's own
            # drop intent has been completed and can be forgotten.
            self._pending_drops.pop(dataset_id, None)
            reaped = True
            for backend in self._backends.values():
                try:
                    backend.clear_dataset_tombstone(dataset_id)
                except Exception:
                    reaped = False
            if reaped:
                self._tombstones_reaped += 1
        return purged

    def _ensure_result_replicas(self, result_id: str) -> int:
        """Copy a result onto the live successors missing it; return copies made.

        A result tombstone anywhere wins unconditionally (results are
        written once per id, so a delete can never race a newer write):
        holders are purged, the marker propagates to the R targets and is
        reaped under the same all-acked-and-reachable rule as datasets.
        """
        with self._lock:
            live, _ = self._placement_locked(result_id)
            targets = live[: self._replicas]
            holders: List[str] = []
            tombstoned = False
            unreachable = False
            for shard_id, backend in self._backends.items():
                try:
                    if backend.has_result_tombstone(result_id):
                        tombstoned = True
                    if backend.has_result(result_id):
                        holders.append(shard_id)
                except Exception:
                    unreachable = True
                    continue
            if tombstoned:
                purged = 0
                acked = 0
                for shard_id in targets:
                    try:
                        self._backends[shard_id].set_result_tombstone(result_id)
                        if shard_id in holders:
                            purged += 1
                        acked += 1
                    except Exception:
                        unreachable = True
                        self._note_shard_error_locked(shard_id)
                for shard_id in holders:
                    if shard_id in targets:
                        continue
                    try:
                        self._backends[shard_id].set_result_tombstone(result_id)
                        purged += 1
                    except Exception:
                        unreachable = True
                        self._note_shard_error_locked(shard_id)
                if self._spill is not None:
                    try:
                        self._spill.drop_result(result_id)
                    except Exception:
                        unreachable = True
                if not unreachable and acked == len(targets):
                    reaped = True
                    for backend in self._backends.values():
                        try:
                            backend.clear_result_tombstone(result_id)
                        except Exception:
                            reaped = False
                    if reaped:
                        self._tombstones_reaped += 1
                return purged
            if not holders:
                return 0
            payload: Optional[dict] = None
            repaired = 0
            for shard_id in targets:
                if shard_id in holders:
                    continue
                if payload is None:
                    try:
                        payload = self._backends[holders[0]].get_result(result_id)
                    except Exception:
                        # One erroring holder must not abort the whole repair
                        # scan; the key stays under-replicated until the next
                        # pass finds a healthy copy.
                        self._note_shard_error_locked(holders[0])
                        return repaired
                try:
                    self._backends[shard_id].put_result(result_id, payload)
                    repaired += 1
                except Exception:
                    self._note_shard_error_locked(shard_id)
            return repaired

    def _count_underreplicated(
        self, dataset_ids: Sequence[str], result_ids: Sequence[str]
    ) -> int:
        """Count keys with fewer live copies than the topology can hold."""
        lagging = 0
        with self._lock:
            live_shards = [sid for sid in self._backends if sid not in self._down]
            wanted = min(self._replicas, len(live_shards))
            for dataset_id in dataset_ids:
                copies = 0
                for shard_id in live_shards:
                    try:
                        if self._backends[shard_id].has_dataset(dataset_id):
                            copies += 1
                    except Exception:
                        continue
                if 0 < copies < wanted:
                    lagging += 1
            for result_id in result_ids:
                copies = 0
                for shard_id in live_shards:
                    try:
                        if self._backends[shard_id].has_result(result_id):
                            copies += 1
                    except Exception:
                        continue
                if 0 < copies < wanted:
                    lagging += 1
        return lagging

    def resident_bytes_by_dataset(self) -> Dict[str, int]:
        """Estimated memory cost per ring-resident dataset, summed over its
        replica copies (file-backed shards report zero — their graphs live
        on disk)."""
        totals: Dict[str, int] = {}
        with self._lock:
            backends = list(self._backends.values())
        for backend in backends:
            try:
                for dataset_id, size in backend.resident_bytes_by_dataset().items():
                    totals[dataset_id] = totals.get(dataset_id, 0) + size
            except Exception:
                continue
        return totals

    def resident_dataset_bytes(self) -> int:
        """Total estimated bytes of graph data held in memory on the ring —
        the quantity :meth:`spill` with ``max_resident_bytes`` keeps under
        budget (and the gateway's automatic spill policy watches)."""
        return sum(self.resident_bytes_by_dataset().values())

    def spill(
        self,
        *,
        max_resident: Optional[int] = None,
        max_resident_bytes: Optional[int] = None,
        dataset_ids: Optional[Sequence[str]] = None,
        job: Optional[JobRecord] = None,
    ) -> List[str]:
        """Demote cold datasets from the memory shards to the file tier.

        Provide exactly one selection policy: ``max_resident`` keeps at most
        that many datasets on the ring (the coldest ones — least recently
        stored/fetched on any shard — spill first), ``max_resident_bytes``
        spills coldest-first until the estimated resident graph bytes fit
        the budget (the policy behind ``ApiGateway(spill_budget_bytes=…)``),
        or ``dataset_ids`` names the victims explicitly.  A spilled dataset
        keeps its upload version (so nothing about the caching contract
        changes), loses its ring copies and derived caches, and is served
        through read failover until a re-upload promotes it back.  Returns
        the spilled ids.
        """
        if self._spill is None:
            raise InvalidParameterError(
                "no spill tier is configured; construct the store with spill_dir="
            )
        policies = [
            policy
            for policy in (max_resident, max_resident_bytes, dataset_ids)
            if policy is not None
        ]
        if len(policies) != 1:
            raise InvalidParameterError(
                "provide exactly one of `max_resident`, `max_resident_bytes` "
                "or `dataset_ids`"
            )
        with self._topology_lock:
            resident = self._ring_ids(lambda backend: backend.list_datasets())
            if dataset_ids is not None:
                resident_set = set(resident)
                victims = [did for did in dataset_ids if did in resident_set]
            elif max_resident_bytes is not None:
                if max_resident_bytes < 0:
                    raise InvalidParameterError(
                        f"max_resident_bytes must be >= 0, got {max_resident_bytes}"
                    )
                sizes = self.resident_bytes_by_dataset()
                total = sum(sizes.get(did, 0) for did in resident)
                victims = []
                if total > max_resident_bytes:
                    for dataset_id in sorted(resident, key=self._dataset_coldness):
                        victims.append(dataset_id)
                        total -= sizes.get(dataset_id, 0)
                        if total <= max_resident_bytes:
                            break
            else:
                if max_resident < 0:
                    raise InvalidParameterError(
                        f"max_resident must be >= 0, got {max_resident}"
                    )
                excess = len(resident) - max_resident
                if excess <= 0:
                    victims = []
                else:
                    victims = sorted(resident, key=self._dataset_coldness)[:excess]
            spilled: List[str] = []
            for index, dataset_id in enumerate(victims):
                if self._cancelled(job):
                    break
                try:
                    if self._spill_one(dataset_id):
                        spilled.append(dataset_id)
                except Exception:
                    # A victim whose holder (or the spill write) errors is
                    # skipped — it stays resident and the remaining victims
                    # still demote, mirroring replicate()'s per-item
                    # fault tolerance.
                    pass
                self._progress(job, "spill", dataset_id, index + 1, len(victims))
        with self._lock:
            self._spills += len(spilled)
        return spilled

    def _dataset_coldness(self, dataset_id: str) -> float:
        """Return the newest access stamp any shard holds (0.0 = coldest)."""
        newest = 0.0
        with self._lock:
            backends = list(self._backends.values())
        for backend in backends:
            try:
                newest = max(newest, backend.dataset_last_access(dataset_id))
            except Exception:
                continue
        return newest

    def _spill_one(self, dataset_id: str) -> bool:
        """Move one dataset to the spill tier (version preserved)."""
        with self._lock:
            holders: Dict[str, int] = {}
            for shard_id, backend in self._backends.items():
                try:
                    if backend.has_dataset(dataset_id):
                        holders[shard_id] = backend.dataset_version(dataset_id)
                except Exception:
                    continue
            if not holders:
                return False
            best = max(holders, key=lambda shard_id: holders[shard_id])
            graph, version = self._backends[best].fetch_dataset_with_version(dataset_id)
            self._spill.store_dataset(dataset_id, graph, version_floor=version - 1)
            for shard_id in holders:
                try:
                    self._backends[shard_id].drop_dataset(dataset_id)
                except Exception:
                    self._note_shard_error_locked(shard_id)
            return True

    def rebalance(self, *, job: Optional[JobRecord] = None) -> List[str]:
        """Restore canonical placement *and* R copies after topology changes.

        For every ring-resident dataset and result: ensure the R live
        successors hold a copy, then drop stray copies from shards outside
        the replica set (only once the replica set is fully populated, so a
        partial repair never reduces the copy count).  Log streams merge
        onto their primary.  Emits ``progress`` events and honours
        cancellation exactly like :meth:`replicate`.
        """
        moved: List[str] = []
        with self._topology_lock:
            self._reconcile_shard_health()
            dataset_ids = self._ring_dataset_ids()
            result_ids = self._ring_result_ids()
            total = len(dataset_ids) + len(result_ids)
            done = 0
            for dataset_id in dataset_ids:
                if self._cancelled(job):
                    break
                if self._rebalance_dataset(dataset_id):
                    moved.append(dataset_id)
                done += 1
                self._progress(job, "rebalance", dataset_id, done, total)
            for result_id in result_ids:
                if self._cancelled(job):
                    break
                self._rebalance_result(result_id)
                done += 1
                self._progress(job, "rebalance", result_id, done, total)
            self._rebalance_log_streams()
            with self._lock:
                self._rebalances += 1
                self._datasets_migrated += len(moved)
                self._epoch += 1
        return moved

    def _rebalance_dataset(self, dataset_id: str) -> bool:
        """Ensure replicas then drop strays for one dataset; return whether
        anything moved."""
        copied = self._ensure_dataset_replicas(dataset_id)
        dropped = 0
        with self._lock:
            live, _ = self._placement_locked(dataset_id)
            targets = set(live[: self._replicas])
            holding_targets = 0
            for shard_id in targets:
                try:
                    if self._backends[shard_id].has_dataset(dataset_id):
                        holding_targets += 1
                except Exception:
                    continue
            if holding_targets >= min(self._replicas, len(live) or 1):
                for shard_id, backend in self._backends.items():
                    if shard_id in targets:
                        continue
                    try:
                        if backend.has_dataset(dataset_id):
                            backend.drop_dataset(dataset_id)
                            dropped += 1
                    except Exception:
                        self._note_shard_error_locked(shard_id)
        return bool(copied or dropped)

    def _rebalance_result(self, result_id: str) -> None:
        self._ensure_result_replicas(result_id)
        with self._lock:
            live, _ = self._placement_locked(result_id)
            targets = set(live[: self._replicas])
            holding_targets = 0
            for shard_id in targets:
                try:
                    if self._backends[shard_id].has_result(result_id):
                        holding_targets += 1
                except Exception:
                    continue
            if holding_targets >= min(self._replicas, len(live) or 1):
                for shard_id, backend in self._backends.items():
                    if shard_id in targets:
                        continue
                    try:
                        backend.drop_result(result_id)
                    except Exception:
                        self._note_shard_error_locked(shard_id)

    def _rebalance_log_streams(self) -> None:
        """Merge misrouted log streams onto their primaries (tolerantly)."""
        with self._lock:
            backends = dict(self._backends)
        for shard_id, backend in backends.items():
            try:
                self._drain_logs(shard_id, backend)
            except Exception:
                with self._lock:
                    self._note_shard_error_locked(shard_id)

    def remove_shard(self, shard_id: str) -> List[str]:
        """Remove a shard: take it off the ring, re-replicate, then unlink.

        The replication-aware rebalance restores R copies and canonical
        placement among the survivors before the backend is discarded; a
        failure rolls the shard back onto the ring, exactly like the base
        class.
        """
        with self._topology_lock:
            with self._lock:
                if shard_id not in self._backends:
                    raise InvalidParameterError(f"shard {shard_id!r} does not exist")
                if len(self._backends) == 1:
                    raise InvalidParameterError("cannot remove the last shard")
                if len(self._backends) - 1 < self._replicas:
                    raise InvalidParameterError(
                        f"cannot remove shard {shard_id!r}: {self._replicas} replicas "
                        f"need at least {self._replicas} shards"
                    )
                leaving = self._backends[shard_id]
                self._ring.remove_shard(shard_id)
                self._epoch += 1
            try:
                moved = []
                for dataset_id in self._ring_dataset_ids():
                    if self._rebalance_dataset(dataset_id):
                        moved.append(dataset_id)
                for result_id in self._ring_result_ids():
                    self._rebalance_result(result_id)
            except BaseException:
                with self._lock:
                    self._ring.add_shard(shard_id)
                    self._epoch += 1
                raise
            with self._lock:
                del self._backends[shard_id]
                self._down.discard(shard_id)
                self._auto_down.discard(shard_id)
                self._consecutive_failures.pop(shard_id, None)
                self._last_transition.pop(shard_id, None)
                self._epoch += 1
                self._datasets_migrated += len(moved)
            self._drain_logs(shard_id, leaving)
            return moved

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def replication_stats(self) -> Dict[str, Any]:
        """Return the replication health counters.

        ``underreplicated`` is the lag measured by the most recent
        :meth:`replicate` or :meth:`drain_read_repairs` scan (``None``
        before the first one); ``degraded_writes`` counts writes acked
        below full replication and ``failover_reads`` reads answered by a
        non-primary source.  ``stale_reads`` counts below-floor answers
        detected; under ``read_consistency="quorum"`` those answers are
        also withheld (``stale_reads_prevented``), ``digest_reads`` counts
        digest rounds and ``version_conflicts_resolved`` the replica
        version divergences a digest round discovered and flagged for
        repair.  The anti-entropy counters sit alongside:
        read-repair queue depth and totals, tombstone writes/reaps, and the
        failure detector's transition counts (see :meth:`health_stats` for
        its per-shard detail).
        """
        with self._lock:
            return {
                "replicas": self._replicas,
                "quorum": self._quorum,
                "read_consistency": self._read_consistency,
                "failover_reads": self._failover_reads,
                "stale_reads": self._stale_reads,
                "digest_reads": self._digest_reads,
                "stale_reads_prevented": self._stale_reads_prevented,
                "version_conflicts_resolved": self._version_conflicts_resolved,
                "degraded_writes": self._degraded_writes,
                "repairs": self._repairs,
                "read_repairs": self._read_repairs,
                "repair_queue": len(self._repair_queue),
                "repair_dropped": self._repair_dropped,
                "tombstones_written": self._tombstones_written,
                "tombstones_reaped": self._tombstones_reaped,
                "auto_downs": self._auto_downs,
                "auto_ups": self._auto_ups,
                "suppressed_transitions": self._suppressed_transitions,
                "marked_down": sorted(self._down),
                "auto_down": sorted(self._auto_down),
                "shard_errors": dict(self._shard_errors),
                "underreplicated": self._last_underreplicated,
                "retries": self._retry_policy.stats(),
                "breakers": {
                    shard_id: breaker.stats()
                    for shard_id, breaker in sorted(self._breakers.items())
                },
            }

    def spill_stats(self) -> Dict[str, Any]:
        """Return the spill-tier occupancy (``{"enabled": False}`` without one)."""
        if self._spill is None:
            return {"enabled": False}
        with self._lock:
            spills = self._spills
        try:
            occupancy = self._spill.occupancy()
        except Exception as exc:
            return {"enabled": True, "spills": spills, "error": str(exc)}
        return {
            "enabled": True,
            "spills": spills,
            "spilled_datasets": occupancy.get("datasets", 0),
            "occupancy": occupancy,
            "resident_bytes": self.resident_dataset_bytes(),
        }

    def shard_stats(self) -> Dict[str, Any]:
        """Base topology stats plus replication health and spill occupancy."""
        stats = super().shard_stats()
        with self._lock:
            down = set(self._down)
        for shard_id in down:
            card = stats["per_shard"].get(shard_id)
            if card is not None:
                card["healthy"] = False
                card["marked_down"] = True
        stats["replication"] = self.replication_stats()
        stats["spill"] = self.spill_stats()
        stats["health"] = self.health_stats()
        return stats

    def __repr__(self) -> str:
        return (
            f"<ReplicatedShardedDataStore over {self.num_shards} shards, "
            f"R={self._replicas}"
            f"{', spill' if self._spill is not None else ''}>"
        )
