"""The Status component: polls running tasks and reports their progress.

Section III, step 3: "while the computation is running, the Status component
polls the Executor node to monitor its progress"; step 4: "the Status
component can access [results and logs] in response to user requests."
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..exceptions import TaskError
from .datastore import DataStore
from .scheduler import Scheduler
from .tasks import TaskState

__all__ = ["TaskProgress", "StatusComponent"]


@dataclass(frozen=True)
class TaskProgress:
    """A snapshot of one task's progress."""

    task_id: str
    state: TaskState
    completed_queries: int
    total_queries: int
    error: Optional[str] = None

    @property
    def fraction_done(self) -> float:
        """Return the completed fraction in [0, 1]."""
        if self.total_queries == 0:
            return 1.0
        return self.completed_queries / self.total_queries

    def describe(self) -> str:
        """Return a one-line progress summary for the UI."""
        line = (
            f"task {self.task_id[:8]}: {self.state.value} "
            f"({self.completed_queries}/{self.total_queries} queries)"
        )
        if self.error:
            line += f" — error: {self.error}"
        return line


class StatusComponent:
    """Polls the scheduler for task progress and exposes results and logs."""

    def __init__(self, scheduler: Scheduler, datastore: DataStore) -> None:
        self._scheduler = scheduler
        self._datastore = datastore

    def poll(self, task_id: str) -> TaskProgress:
        """Return the current progress snapshot of ``task_id``."""
        task = self._scheduler.get_task(task_id)
        return TaskProgress(
            task_id=task.task_id,
            state=task.state,
            completed_queries=task.completed_queries,
            total_queries=task.total_queries,
            error=task.error,
        )

    def poll_until_done(
        self,
        task_id: str,
        *,
        interval_seconds: float = 0.01,
        timeout_seconds: float = 60.0,
    ) -> TaskProgress:
        """Poll repeatedly until the task reaches a terminal state.

        Raises
        ------
        TaskError
            If the timeout expires before the task finishes.
        """
        deadline = time.monotonic() + timeout_seconds
        progress = self.poll(task_id)
        while not progress.state.is_terminal():
            if time.monotonic() > deadline:
                raise TaskError(
                    f"task {task_id} did not finish within {timeout_seconds} seconds "
                    f"({progress.completed_queries}/{progress.total_queries} queries done)"
                )
            time.sleep(interval_seconds)
            progress = self.poll(task_id)
        return progress

    def logs(self, task_id: str) -> List[str]:
        """Return the log lines recorded for ``task_id``."""
        return self._datastore.get_logs(task_id)

    def platform_stats(self) -> Dict[str, Any]:
        """Return the platform-wide serving counters.

        ``cache`` holds the result-cache hit/miss/eviction counters,
        ``batches`` the scheduler's batched-dispatch summary and
        ``artifacts`` the compiled-graph artifact cache counters — together
        they show how much of the workload was answered without
        recomputation (of rankings and of graph structure alike).  When the
        platform runs on a :class:`~repro.platform.sharding.ShardedDataStore`
        a ``shards`` section is added: ring topology, per-shard health,
        occupancy and hit rates (the cache/artifact sections then aggregate
        across shards and carry their own per-shard breakdowns).
        """
        stats = {
            "cache": self._scheduler.cache_stats(),
            "batches": self._scheduler.batch_stats(),
            "artifacts": self._scheduler.artifact_stats(),
        }
        shard_stats = getattr(self._datastore, "shard_stats", None)
        if callable(shard_stats):
            stats["shards"] = shard_stats()
        return stats

    def stored_result(self, task_id: str) -> dict:
        """Return the serialised results stored in the datastore for ``task_id``."""
        return self._datastore.get_result(task_id)
