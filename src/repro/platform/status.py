"""The Status component: a projection of job event logs into progress snapshots.

Section III, step 3: "while the computation is running, the Status component
polls the Executor node to monitor its progress"; step 4: "the Status
component can access [results and logs] in response to user requests."

Since the job/event refactor the component no longer busy-polls mutable
counters: each submitted comparison owns an append-only event log (see
:mod:`repro.platform.jobs`), and :meth:`StatusComponent.poll` *projects* the
job record derived from that log into a :class:`TaskProgress` snapshot.
:meth:`poll_until_done` blocks on the job's event cursor instead of
sleeping in a poll loop, and :meth:`events_since` exposes the raw cursor
read that the REST long-poll/SSE endpoints and the CLI ``--follow`` renderer
consume.

The component also hosts pluggable *stats sections* via
:meth:`StatusComponent.register_section`: the gateway registers its
``overload`` (admission/retry/breaker counters) and ``telemetry``
(tracer + metrics snapshot, see :mod:`repro.platform.telemetry`) sections
here, so ``platform_stats()`` / ``GET /api/stats`` surface them uniformly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from ..exceptions import StorageError, TaskError, TaskNotFoundError
from .datastore import DataStore
from .jobs import JobEvent, JobRecord, JobState
from .scheduler import Scheduler
from .tasks import TaskState

__all__ = ["TaskProgress", "StatusComponent"]

#: Projection of job lifecycle states onto the task-level states the
#: gateway, REST layer and CLI have always reported.
_JOB_TO_TASK_STATE = {
    JobState.QUEUED: TaskState.PENDING,
    JobState.RUNNING: TaskState.RUNNING,
    JobState.DONE: TaskState.COMPLETED,
    JobState.FAILED: TaskState.FAILED,
    JobState.CANCELLED: TaskState.CANCELLED,
}


@dataclass(frozen=True)
class TaskProgress:
    """A snapshot of one task's progress."""

    task_id: str
    state: TaskState
    completed_queries: int
    total_queries: int
    error: Optional[str] = None

    @property
    def fraction_done(self) -> float:
        """Return the completed fraction in [0, 1]."""
        if self.total_queries == 0:
            return 1.0
        return self.completed_queries / self.total_queries

    def describe(self) -> str:
        """Return a one-line progress summary for the UI."""
        line = (
            f"task {self.task_id[:8]}: {self.state.value} "
            f"({self.completed_queries}/{self.total_queries} queries)"
        )
        if self.error:
            line += f" — error: {self.error}"
        return line


class StatusComponent:
    """Projects job event logs into progress snapshots, results and logs."""

    def __init__(self, scheduler: Scheduler, datastore: DataStore) -> None:
        self._scheduler = scheduler
        self._datastore = datastore
        self._registry = scheduler.jobs
        self._sections: Dict[str, Callable[[], Dict[str, Any]]] = {}

    def register_section(
        self, name: str, provider: Callable[[], Dict[str, Any]]
    ) -> None:
        """Register an extra top-level ``platform_stats`` section.

        ``provider`` is called on every stats read; components that carry
        their own counters (e.g. the gateway's overload-protection layer)
        register here instead of the status component reaching into them.
        Registering the same name again replaces the provider.
        """
        self._sections[name] = provider

    # ------------------------------------------------------------------ #
    # progress
    # ------------------------------------------------------------------ #
    @staticmethod
    def _project(job: JobRecord) -> TaskProgress:
        """Fold one job record (itself a fold of its event log) into a snapshot."""
        summary = job.summary()
        return TaskProgress(
            task_id=job.job_id,
            state=_JOB_TO_TASK_STATE[JobState(summary["state"])],
            completed_queries=summary["completed_queries"],
            total_queries=summary["total_queries"],
            error=summary["error"],
        )

    def poll(self, task_id: str) -> TaskProgress:
        """Return the current progress snapshot of ``task_id``."""
        job = self._registry.find(task_id)
        if job is not None:
            return self._project(job)
        # The job record was evicted from the bounded registry (or the task
        # was registered without going through submission): fall back to the
        # task table, which the scheduler keeps for permalink lookups.
        try:
            task = self._scheduler.get_task(task_id)
        except TaskNotFoundError:
            # The task itself aged out of the bounded table; a completed
            # comparison still has its result payload persisted in the
            # datastore, so the permalink keeps resolving.
            try:
                payload = self._datastore.get_result(task_id)
            except StorageError:
                raise TaskNotFoundError(task_id) from None
            rankings = payload.get("rankings", {})
            return TaskProgress(
                task_id=task_id,
                state=TaskState(str(payload.get("state", TaskState.COMPLETED.value))),
                completed_queries=len(rankings),
                total_queries=len(payload.get("queries", rankings)),
                error=None,
            )
        return TaskProgress(
            task_id=task.task_id,
            state=task.state,
            completed_queries=task.completed_queries,
            total_queries=task.total_queries,
            error=task.error,
        )

    def poll_until_done(
        self,
        task_id: str,
        *,
        interval_seconds: float = 0.01,
        timeout_seconds: float = 60.0,
    ) -> TaskProgress:
        """Block until the task reaches a terminal state.

        Blocks on the job's event cursor (no busy-waiting); the poll loop
        with ``interval_seconds`` survives only as the fallback for records
        that were evicted from the bounded registry.

        Raises
        ------
        TaskError
            If the timeout expires before the task finishes.
        """
        job = self._registry.find(task_id)
        if job is not None:
            if not job.wait_done(timeout_seconds):
                progress = self._project(job)
                raise TaskError(
                    f"task {task_id} did not finish within {timeout_seconds} seconds "
                    f"({progress.completed_queries}/{progress.total_queries} queries done)"
                )
            return self._project(job)
        deadline = time.monotonic() + timeout_seconds
        progress = self.poll(task_id)
        while not progress.state.is_terminal():
            if time.monotonic() > deadline:
                raise TaskError(
                    f"task {task_id} did not finish within {timeout_seconds} seconds "
                    f"({progress.completed_queries}/{progress.total_queries} queries done)"
                )
            time.sleep(interval_seconds)
            progress = self.poll(task_id)
        return progress

    # ------------------------------------------------------------------ #
    # event cursors
    # ------------------------------------------------------------------ #
    def events_since(
        self, task_id: str, *, after: int = 0, timeout: Optional[float] = None
    ) -> List[JobEvent]:
        """Blocking cursor read over a job's event log (``seq > after``).

        Raises :class:`~repro.exceptions.TaskNotFoundError` when the job is
        unknown or its record was evicted from the bounded registry.
        """
        return self._registry.get(task_id).events_since(after, timeout=timeout)

    # ------------------------------------------------------------------ #
    # results and logs
    # ------------------------------------------------------------------ #
    def logs(self, task_id: str) -> List[str]:
        """Return the log lines recorded for ``task_id``."""
        return self._datastore.get_logs(task_id)

    def platform_stats(self) -> Dict[str, Any]:
        """Return the platform-wide serving counters.

        ``cache`` holds the result-cache hit/miss/eviction counters,
        ``batches`` the scheduler's batched-dispatch summary,
        ``artifacts`` the compiled-graph artifact cache counters and
        ``jobs`` the job-registry occupancy (states, evictions) — together
        they show how much of the workload was answered without
        recomputation (of rankings and of graph structure alike).  When the
        platform runs on a :class:`~repro.platform.sharding.ShardedDataStore`
        a ``shards`` section is added: ring topology, per-shard health,
        occupancy and hit rates (the cache/artifact sections then aggregate
        across shards and carry their own per-shard breakdowns).  Sections
        registered with :meth:`register_section` — such as the gateway's
        ``overload`` section (deadline, admission and storage-retry
        counters) — are merged in last.
        """
        stats = {
            "cache": self._scheduler.cache_stats(),
            "batches": self._scheduler.batch_stats(),
            "artifacts": self._scheduler.artifact_stats(),
            "jobs": self._registry.stats(),
            "tasks": self._scheduler.task_table_stats(),
        }
        shard_stats = getattr(self._datastore, "shard_stats", None)
        if callable(shard_stats):
            # On a replicated deployment the section also carries
            # ``replication`` (quorum, failovers, lag, read-repair and
            # tombstone counters), ``spill`` (file-tier occupancy, resident
            # bytes) and ``health`` (failure-detector streaks and automatic
            # transition counts) subsections.
            stats["shards"] = shard_stats()
        for name, provider in self._sections.items():
            stats[name] = provider()
        return stats

    def stored_result(self, task_id: str) -> dict:
        """Return the serialised results stored in the datastore for ``task_id``."""
        return self._datastore.get_result(task_id)
