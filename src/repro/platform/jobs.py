"""The job/event subsystem: explicit job lifecycles over an append-only event log.

The demo is interactive — the Web UI submits a comparison, keeps the
permalink and *watches* progress — so the platform needs a first-class
notion of a long-running job that can be observed incrementally and
cancelled, not just a counter that callers busy-poll.  This module provides
that seam:

:class:`JobRecord`
    One submitted comparison (or any other long-running platform job, e.g. a
    future replication or spill migration).  It carries an explicit
    lifecycle (``QUEUED → RUNNING → DONE | FAILED | CANCELLED``), a
    per-query sub-state vector, and an **append-only event log** of typed
    :class:`JobEvent` entries with a per-job monotonic ``seq``.  Consumers
    read the log either through callback subscription
    (:meth:`JobRecord.subscribe`) or through blocking cursor reads
    (:meth:`JobRecord.events_since`), which is what the Status component,
    the REST long-poll/SSE endpoints and the CLI ``--follow`` renderer are
    built on.  The record is itself a *projection* over its log: every
    counter (completed queries, per-query states, terminal state) is
    derived from the events as they are appended, so any other projection
    reading the same log sees exactly the same history.

:class:`JobRegistry`
    A bounded registry of job records keyed by the comparison id.  Active
    jobs are never evicted; once the number of *terminal* jobs exceeds the
    bound, the oldest terminal records are dropped (their results remain in
    the datastore — only the live event stream is bounded).

Cancellation is cooperative: :meth:`JobRecord.request_cancel` raises a flag
and appends a ``cancelled`` event; the scheduler checks the flag at every
group-dispatch boundary and stops dispatching further work, after which the
job is finished with state ``CANCELLED``.

Event types
-----------
``submitted``        the job entered the registry (payload: total queries)
``query_started``    a query was handed to an executor (or joined an
                     in-flight identical computation, ``joined=True``)
``query_cached``     a query was answered from the result cache
``query_completed``  a query's ranking was recorded
``query_failed``     a query raised (payload carries the error)
``progress``         incremental progress of a storage maintenance job
                     (replicate / spill / rebalance; payload: kind, item,
                     completed, total)
``cancelled``        cancellation was requested
``task_done``        the job reached a terminal state (payload: the state)
``shed``             admission control refused a submission before it was
                     enqueued (payload: comparison id, estimated cost,
                     computed retry-after) — emitted on the gateway's
                     overload job, never on the shed submission itself,
                     which was not admitted and has no job
``deadline_exceeded``  the job's deadline expired before its work ran;
                     the job settles FAILED without occupying a worker
"""

from __future__ import annotations

import enum
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional

from ..exceptions import TaskNotFoundError

__all__ = [
    "EVENT_TYPES",
    "JobEvent",
    "JobRecord",
    "JobRegistry",
    "JobState",
    "QueryState",
]

#: The typed vocabulary of the per-job event log.
EVENT_TYPES = frozenset(
    {
        "submitted",
        "query_started",
        "query_cached",
        "query_completed",
        "query_failed",
        "progress",
        "task_done",
        "cancelled",
        # Storage-health transitions (emitted on the gateway's health job by
        # the replicated store's failure detector).
        "shard_down",
        "shard_up",
        # Overload protection: admission-control refusals land on the
        # gateway's overload job; expired deadlines settle the job itself.
        "shed",
        "deadline_exceeded",
    }
)


class JobState(enum.Enum):
    """Lifecycle of a job: ``QUEUED → RUNNING → DONE | FAILED | CANCELLED``."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def is_terminal(self) -> bool:
        """Return ``True`` once the job can no longer change state."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


class QueryState(enum.Enum):
    """Per-query sub-state within a job."""

    PENDING = "pending"
    RUNNING = "running"
    CACHED = "cached"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def is_settled(self) -> bool:
        """Return ``True`` once the query has an answer (or never will)."""
        return self not in (QueryState.PENDING, QueryState.RUNNING)


@dataclass(frozen=True)
class JobEvent:
    """One immutable entry of a job's append-only event log.

    ``seq`` is monotonic *per job*, starting at 1; a consumer that remembers
    the last ``seq`` it saw can resume the stream exactly where it left off
    (``events_since(seq)``), which is what makes the REST long-poll and SSE
    endpoints deliver every event exactly once.
    """

    seq: int
    type: str
    timestamp: float
    payload: Mapping[str, Any]

    def as_dict(self) -> Dict[str, Any]:
        """Serialise the event to plain Python types (the wire format)."""
        return {
            "seq": self.seq,
            "type": self.type,
            "timestamp": self.timestamp,
            **dict(self.payload),
        }


#: Map an event type to the query sub-state it settles (if any).
_QUERY_EVENT_STATES = {
    "query_started": QueryState.RUNNING,
    "query_cached": QueryState.CACHED,
    "query_completed": QueryState.COMPLETED,
    "query_failed": QueryState.FAILED,
}

#: Map a terminal ``task_done`` payload state to the job state.
_TERMINAL_STATES = {
    "done": JobState.DONE,
    "failed": JobState.FAILED,
    "cancelled": JobState.CANCELLED,
}


class JobRecord:
    """One job: lifecycle, per-query sub-states and the append-only event log.

    Parameters
    ----------
    job_id:
        The comparison id (doubles as the permalink).
    total_queries:
        Number of queries the job carries; sizes the sub-state vector.
    description:
        Optional human-readable summary shown by job listings.
    trace_id:
        Optional telemetry trace id.  When set, every appended event is
        stamped with a ``trace_id`` payload field, so SSE/long-poll
        consumers can correlate the event stream with the span tree served
        by ``GET /api/comparisons/<id>/trace``.
    """

    def __init__(
        self,
        job_id: str,
        total_queries: int,
        *,
        description: str = "",
        trace_id: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.total_queries = total_queries
        self.description = description
        self.trace_id = trace_id
        self.created_at = time.time()
        self._cond = threading.Condition()
        self._events: List[JobEvent] = []
        self._state = JobState.QUEUED
        self._query_states = [QueryState.PENDING] * total_queries
        self._completed = 0
        self._error: Optional[str] = None
        self._cancel_requested = False
        self._finished_at: Optional[float] = None
        self._callbacks: List[Callable[[JobEvent], None]] = []

    # ------------------------------------------------------------------ #
    # appending
    # ------------------------------------------------------------------ #
    def append(self, event_type: str, **payload: Any) -> Optional[JobEvent]:
        """Append one typed event, update the projection, wake cursor readers.

        Appends after the job reached a terminal state are dropped (and
        ``None`` is returned): ``task_done`` is always the last event of a
        log, so a follower can stop reading the moment it sees one.

        Subscribed callbacks run synchronously, in ``seq`` order, while the
        record lock is held — they must be fast and must not block on the
        record (cursor reads from a callback would deadlock).
        """
        if event_type not in EVENT_TYPES:
            raise ValueError(f"unknown job event type {event_type!r}")
        with self._cond:
            if self._state.is_terminal():
                return None
            if event_type == "cancelled" and self._cancel_requested:
                return None
            stamped = dict(payload)
            if self.trace_id is not None:
                stamped.setdefault("trace_id", self.trace_id)
            event = JobEvent(
                seq=len(self._events) + 1,
                type=event_type,
                timestamp=time.time(),
                payload=stamped,
            )
            self._events.append(event)
            self._apply(event)
            self._cond.notify_all()
            callbacks = list(self._callbacks)
            for callback in callbacks:
                callback(event)
        return event

    def _apply(self, event: JobEvent) -> None:
        """Fold one event into the projected state (called under the lock)."""
        query_state = _QUERY_EVENT_STATES.get(event.type)
        if query_state is not None:
            index = event.payload.get("query")
            if isinstance(index, int) and 0 <= index < self.total_queries:
                self._query_states[index] = query_state
            if query_state in (QueryState.CACHED, QueryState.COMPLETED):
                self._completed += 1
                # Stamp the projected counter into the payload under the
                # record lock: each completion event carries a unique,
                # monotonic count (the caller's task-level counter can race
                # between record and append), so exactly one event per job
                # reports completed_queries == total_queries.
                event.payload["completed_queries"] = self._completed  # type: ignore[index]
            if query_state is QueryState.FAILED:
                self._error = str(event.payload.get("error", "query failed"))
            if self._state is JobState.QUEUED:
                self._state = JobState.RUNNING
        elif event.type == "progress":
            if self._state is JobState.QUEUED:
                self._state = JobState.RUNNING
            # Storage maintenance jobs register with total_queries=0 and
            # report their work-item counts through the event payload; fold
            # them into the projected counters so listings and progress
            # fragments show real x/y progress instead of 0/0.
            completed = event.payload.get("completed")
            total = event.payload.get("total")
            if isinstance(completed, int) and completed >= 0:
                self._completed = completed
            if isinstance(total, int) and total >= 0:
                self.total_queries = max(self.total_queries, total)
        elif event.type == "cancelled":
            self._cancel_requested = True
        elif event.type == "task_done":
            self._state = _TERMINAL_STATES.get(str(event.payload.get("state")), JobState.DONE)
            if self._state is JobState.FAILED and self._error is None:
                self._error = str(event.payload.get("error", "job failed"))
            if self._state is JobState.CANCELLED:
                for index, state in enumerate(self._query_states):
                    if not state.is_settled():
                        self._query_states[index] = QueryState.CANCELLED
            self._finished_at = event.timestamp

    def finish(self, state: JobState, *, error: Optional[str] = None) -> bool:
        """Transition to a terminal state exactly once (emits ``task_done``).

        Returns ``False`` when the job was already terminal — concurrent
        finishers (e.g. a cancel racing the last group) settle on whichever
        got there first, and the log carries exactly one ``task_done``.
        """
        if not state.is_terminal():
            raise ValueError(f"finish() requires a terminal state, got {state}")
        with self._cond:
            if self._state.is_terminal():
                return False
            payload: Dict[str, Any] = {
                "state": state.value,
                "completed_queries": self._completed,
                "total_queries": self.total_queries,
            }
            if error is not None:
                payload["error"] = error
        return self.append("task_done", **payload) is not None

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def request_cancel(self) -> bool:
        """Raise the cooperative cancel flag (idempotent).

        Returns ``True`` if the request was recorded (the job was not yet
        terminal and this was the first request).  The scheduler observes the
        flag at its group-dispatch boundaries and finishes the job with
        :attr:`JobState.CANCELLED` once outstanding work has stopped.
        """
        with self._cond:
            if self._state.is_terminal() or self._cancel_requested:
                return False
        return self.append("cancelled") is not None

    @property
    def cancel_requested(self) -> bool:
        """Return ``True`` once cancellation has been requested."""
        with self._cond:
            return self._cancel_requested

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    @property
    def state(self) -> JobState:
        """Return the current lifecycle state."""
        with self._cond:
            return self._state

    @property
    def error(self) -> Optional[str]:
        """Return the first recorded failure message, if any."""
        with self._cond:
            return self._error

    @property
    def completed_queries(self) -> int:
        """Return how many queries have an answer (cached or computed)."""
        with self._cond:
            return self._completed

    @property
    def last_seq(self) -> int:
        """Return the sequence number of the newest event (0 when empty)."""
        with self._cond:
            return len(self._events)

    def query_states(self) -> List[QueryState]:
        """Return a snapshot of the per-query sub-states."""
        with self._cond:
            return list(self._query_states)

    def events(self) -> List[JobEvent]:
        """Return a snapshot of the full event log."""
        with self._cond:
            return list(self._events)

    def events_since(
        self, after: int, *, timeout: Optional[float] = None
    ) -> List[JobEvent]:
        """Blocking cursor read: events with ``seq > after``.

        Blocks until at least one newer event exists, the job is terminal
        (terminal jobs return immediately — possibly with an empty list when
        the cursor is already at the end), or ``timeout`` seconds elapsed
        (returning an empty list).  ``timeout=None`` waits indefinitely for
        a non-terminal job.
        """
        if after < 0:
            raise ValueError(f"cursor must be >= 0, got {after}")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while len(self._events) <= after and not self._state.is_terminal():
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return []
                self._cond.wait(remaining)
            return list(self._events[after:])

    def wait_done(self, timeout: Optional[float] = None) -> bool:
        """Block until the job is terminal; return whether it finished in time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not self._state.is_terminal():
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._cond.wait(remaining)
            return True

    # ------------------------------------------------------------------ #
    # subscription
    # ------------------------------------------------------------------ #
    def subscribe(self, callback: Callable[[JobEvent], None]) -> Callable[[], None]:
        """Register a callback invoked for every subsequent event, in order.

        Returns an unsubscribe function.  Callbacks run under the record
        lock (see :meth:`append`); use the cursor API for anything that
        needs to block.
        """
        with self._cond:
            self._callbacks.append(callback)

        def unsubscribe() -> None:
            with self._cond:
                try:
                    self._callbacks.remove(callback)
                except ValueError:
                    pass

        return unsubscribe

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def summary(self) -> Dict[str, Any]:
        """Return the job-listing payload (one row of ``GET /api/comparisons``)."""
        with self._cond:
            return {
                "comparison_id": self.job_id,
                "state": self._state.value,
                "completed_queries": self._completed,
                "total_queries": self.total_queries,
                "error": self._error,
                "cancel_requested": self._cancel_requested,
                "created_at": self.created_at,
                "finished_at": self._finished_at,
                "events": len(self._events),
                "description": self.description,
                "trace_id": self.trace_id,
            }

    def __repr__(self) -> str:
        return (
            f"<JobRecord {self.job_id[:8]} {self.state.value} "
            f"{self.completed_queries}/{self.total_queries} events={self.last_seq}>"
        )


class JobRegistry:
    """A bounded, thread-safe registry of :class:`JobRecord`\\ s.

    Parameters
    ----------
    max_finished_jobs:
        How many *terminal* jobs to retain.  Active jobs are never evicted;
        when a new job is created and the number of terminal records exceeds
        the bound, the oldest terminal records (insertion order) are
        dropped.  Their stored results stay in the datastore — eviction only
        bounds the in-memory event streams.
    """

    def __init__(self, *, max_finished_jobs: int = 256) -> None:
        if max_finished_jobs < 1:
            raise ValueError(
                f"max_finished_jobs must be a positive integer, got {max_finished_jobs}"
            )
        self._max_finished = max_finished_jobs
        self._jobs: "OrderedDict[str, JobRecord]" = OrderedDict()
        self._lock = threading.Lock()
        self._evicted = 0

    def create(
        self,
        job_id: str,
        total_queries: int,
        *,
        description: str = "",
        trace_id: Optional[str] = None,
    ) -> JobRecord:
        """Create and register a fresh record (replaces a stale same-id record)."""
        record = JobRecord(
            job_id, total_queries, description=description, trace_id=trace_id
        )
        with self._lock:
            self._jobs.pop(job_id, None)
            self._jobs[job_id] = record
            self._evict_finished()
        return record

    def _evict_finished(self) -> None:
        """Drop the oldest terminal records beyond the bound (lock held)."""
        terminal = [
            job_id for job_id, record in self._jobs.items() if record.state.is_terminal()
        ]
        for job_id in terminal[: max(0, len(terminal) - self._max_finished)]:
            del self._jobs[job_id]
            self._evicted += 1

    def find(self, job_id: str) -> Optional[JobRecord]:
        """Return the record for ``job_id``, or ``None`` if absent/evicted."""
        with self._lock:
            return self._jobs.get(job_id)

    def get(self, job_id: str) -> JobRecord:
        """Return the record for ``job_id`` (raises :class:`TaskNotFoundError`)."""
        record = self.find(job_id)
        if record is None:
            raise TaskNotFoundError(job_id)
        return record

    def list_records(self) -> List[JobRecord]:
        """Return every registered record, oldest first."""
        with self._lock:
            return list(self._jobs.values())

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)

    def __contains__(self, job_id: str) -> bool:
        return self.find(job_id) is not None

    def stats(self) -> Dict[str, Any]:
        """Return registry occupancy counters (for ``platform_stats()``)."""
        with self._lock:
            records = list(self._jobs.values())
            evicted = self._evicted
        by_state: Dict[str, int] = {}
        for record in records:
            by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
        return {
            "jobs": len(records),
            "by_state": by_state,
            "evicted": evicted,
            "max_finished_jobs": self._max_finished,
        }
