"""The API gateway: the single entry point the Web UI (and the CLI) talks to.

The paper: "The API gateway acts as a mediator between the computational
nodes and the web user interface.  It acts as entry point for all incoming
requests from the Web UI and routes them to the relevant computational
nodes."

:class:`ApiGateway` wires the whole platform together (catalog, datastore,
executor pool, scheduler, status component) and exposes the operations the
demo's REST API offers: list datasets and algorithms, upload a dataset,
build and submit a comparison, check its status, retrieve its results as a
comparison table, and fetch its logs.  The comparison id returned by
:meth:`submit_comparison` is the permalink of Figure 2.

Submission is non-blocking by default: the scheduler registers a job (see
:mod:`repro.platform.jobs`) and returns the comparison id immediately, and
the gateway exposes the job-centric surface on top — list running and
finished comparisons (:meth:`list_comparisons`), cancel one
(:meth:`cancel_comparison`), and follow per-query progress either as one
blocking cursor read (:meth:`get_events`, the REST long-poll) or as a
generator that yields events until the job is terminal
(:meth:`stream_events`, the SSE/CLI ``--follow`` feed).  The blocking
helpers (:meth:`wait_for`, ``synchronous=True``) are implemented on the
same event cursor.
"""

from __future__ import annotations

import threading
import uuid
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Union

from ..algorithms.registry import available_algorithms, get_algorithm
from ..datasets.catalog import DatasetCatalog, default_catalog
from ..exceptions import (
    GatewayOverloadedError,
    InvalidParameterError,
    TaskNotFoundError,
)
from ..graph.analysis import graph_summary
from ..graph.digraph import DirectedGraph
from ..ranking.comparison import ComparisonTable
from ..ranking.result import Ranking
from .datastore import DataStore
from .executor import ExecutorPool, ProcessExecutorPool
from .jobs import JobRecord, JobState
from .replication import ReplicatedShardedDataStore
from .resilience import AdmissionController, estimate_cost
from .scheduler import Scheduler
from .sharding import ShardedDataStore
from .status import StatusComponent, TaskProgress
from .tasks import Query, QuerySet, Task, TaskBuilder
from .telemetry import MetricsRegistry, Tracer, child_span, trace_scope

__all__ = ["ApiGateway"]

#: Executor tier built when ``ApiGateway(executor_mode=None)``.  Module-level
#: so test harnesses can flip the whole suite onto the process tier
#: (``REPRO_TEST_EXECUTOR=process``) without touching every construction site.
DEFAULT_EXECUTOR_MODE = "thread"


class ApiGateway:
    """Facade over the whole platform.

    Parameters
    ----------
    catalog:
        Dataset catalog; defaults to the 50 pre-loaded datasets.
    datastore:
        Result/log storage; defaults to a fresh in-memory datastore.  May be
        a :class:`~repro.platform.sharding.ShardedDataStore` — the scheduler
        and executors work against the abstract store either way.
    num_workers:
        Number of executor nodes in the pool.
    executor_mode:
        ``"thread"`` (default) runs batch kernels on a thread pool inside
        the gateway process; ``"process"`` runs them on a
        :class:`~repro.platform.executor.ProcessExecutorPool` — worker
        *processes* that map each dataset's compiled CSR arrays zero-copy
        from shared memory, so CPU-bound batches scale across cores instead
        of serialising on the GIL.  ``None`` resolves to the module-level
        ``DEFAULT_EXECUTOR_MODE``.
    shards:
        Shard the storage layer: an integer builds that many in-memory
        backends behind a consistent-hash ring, a sequence of
        :class:`DataStore` instances shards across the provided backends.
        Mutually exclusive with ``datastore``.
    replicas:
        Keep R copies of every dataset and result on the ring (quorum-acked
        writes, failover reads) by building a
        :class:`~repro.platform.replication.ReplicatedShardedDataStore`.
        Combines with ``shards`` (defaulting to ``replicas + 1`` backends
        when ``shards`` is omitted); mutually exclusive with ``datastore``.
    spill_dir:
        Directory of the cold file tier: :meth:`spill_storage` demotes cold
        datasets there, reads fail over to it transparently, and its content
        survives restarts.  Implies a replicated store (``replicas=1`` when
        not given).
    spill_budget_bytes:
        Automatic spill policy: whenever the estimated bytes of graph data
        resident on the memory shards exceed this budget, the gateway
        launches a coalesced spill job (``max_resident_bytes=budget``) from
        the scheduler's maintenance hook and the background prober — no
        operator POST required.  Requires a spill tier (``spill_dir``).
    probe_interval_seconds:
        Cadence of the background health prober on a replicated store
        (default 5 seconds; ``0`` disables it).  Each tick pings every
        shard — driving automatic ``mark_down``/``mark_up`` through the
        store's failure detector — then re-checks the spill budget and
        kicks the read-repair drain if keys are queued, so self-healing
        continues through idle periods.
    max_finished_tasks:
        Retention bound of the scheduler's terminal task table (old
        permalinks fall back to the persisted result payloads).
    default_deadline_ms:
        Deadline applied to submissions that do not carry their own
        ``deadline_ms``: an expired job settles with a typed
        ``deadline_exceeded`` event instead of occupying a worker.
        ``None`` (the default) applies no deadline.
    admission_max_cost:
        Enable admission control: the estimated-cost budget of in-flight
        work (CycleRank queries weigh more than the light algorithms —
        see :func:`~repro.platform.resilience.estimate_cost`).  A
        submission that would exceed it is *shed before enqueueing* with
        :class:`~repro.exceptions.GatewayOverloadedError` carrying a
        computed retry-after (REST turns it into ``429`` +
        ``Retry-After``), so accepted work is never dropped.  ``None``
        disables shedding.
    admission_retry_after_seconds:
        Base of the computed retry-after; scaled with the overshoot and
        clamped to 8x.
    retry_max_attempts, retry_budget_capacity, retry_budget_refill_per_second:
        Forwarded to the replicated store's shared storage retry policy
        (:meth:`~repro.platform.replication.ReplicatedShardedDataStore.configure_resilience`):
        bounded attempts with jittered backoff, capped by a store-wide
        retry budget.  ``None`` keeps the store's defaults.
    breaker_failure_threshold, breaker_cooldown_seconds:
        Forwarded to the store's per-shard circuit breakers.  ``None``
        keeps the store's defaults.
    read_consistency:
        Dataset read consistency on a replicated store: ``"one"`` serves
        the first answering source (detecting but serving below-floor
        answers), ``"quorum"`` opens every dataset read with a
        version-digest round over the live replicas and never serves a
        copy below the known version floor.  ``None`` keeps the store's
        default (``"one"``).
    telemetry_enabled:
        Build the gateway's :class:`~repro.platform.telemetry.MetricsRegistry`
        and :class:`~repro.platform.telemetry.Tracer` in recording mode (the
        default).  ``False`` turns every span/metric call into a no-op —
        the uninstrumented arm of ``benchmarks/bench_telemetry_overhead.py``.
    slow_span_threshold_ms:
        Spans slower than this land in the tracer's bounded slow-request
        ring, surfaced through the ``telemetry`` stats section.
    """

    #: Default background-prober cadence on replicated stores, seconds.
    DEFAULT_PROBE_INTERVAL_SECONDS = 5.0

    def __init__(
        self,
        *,
        catalog: Optional[DatasetCatalog] = None,
        datastore: Optional[DataStore] = None,
        num_workers: int = 2,
        executor_mode: Optional[str] = None,
        shards: Optional[Union[int, Sequence[DataStore]]] = None,
        replicas: Optional[int] = None,
        spill_dir: Optional[Union[str, Path]] = None,
        spill_budget_bytes: Optional[int] = None,
        probe_interval_seconds: Optional[float] = None,
        max_finished_tasks: Optional[int] = None,
        default_deadline_ms: Optional[int] = None,
        admission_max_cost: Optional[int] = None,
        admission_retry_after_seconds: float = 1.0,
        retry_max_attempts: Optional[int] = None,
        retry_budget_capacity: Optional[int] = None,
        retry_budget_refill_per_second: Optional[float] = None,
        breaker_failure_threshold: Optional[int] = None,
        breaker_cooldown_seconds: Optional[float] = None,
        read_consistency: Optional[str] = None,
        telemetry_enabled: bool = True,
        slow_span_threshold_ms: float = 500.0,
    ) -> None:
        if replicas is not None or spill_dir is not None:
            if datastore is not None:
                raise InvalidParameterError(
                    "`replicas`/`spill_dir` build the datastore; provide either "
                    "them or `datastore`, not both"
                )
            resolved_replicas = replicas if replicas is not None else 1
            spill = str(spill_dir) if spill_dir is not None else None
            if shards is None or isinstance(shards, int):
                num_shards = shards if isinstance(shards, int) else max(
                    resolved_replicas + 1, 2
                )
                datastore = ReplicatedShardedDataStore(
                    num_shards=num_shards, replicas=resolved_replicas, spill_dir=spill
                )
            else:
                datastore = ReplicatedShardedDataStore(
                    shards=list(shards), replicas=resolved_replicas, spill_dir=spill
                )
        elif shards is not None:
            if datastore is not None:
                raise InvalidParameterError(
                    "`shards` builds the datastore; provide either `shards` or "
                    "`datastore`, not both"
                )
            if isinstance(shards, int):
                datastore = ShardedDataStore(num_shards=shards)
            else:
                datastore = ShardedDataStore(shards=list(shards))
        if not (
            isinstance(slow_span_threshold_ms, (int, float))
            and not isinstance(slow_span_threshold_ms, bool)
            and slow_span_threshold_ms > 0
        ):
            raise InvalidParameterError(
                f"slow_span_threshold_ms must be > 0, got {slow_span_threshold_ms!r}"
            )
        self.metrics = MetricsRegistry(enabled=bool(telemetry_enabled))
        self.tracer = Tracer(
            self.metrics,
            enabled=bool(telemetry_enabled),
            slow_threshold_ms=slow_span_threshold_ms,
        )
        self.catalog = catalog if catalog is not None else default_catalog()
        self.datastore = datastore if datastore is not None else DataStore()
        resolved_mode = executor_mode if executor_mode is not None else DEFAULT_EXECUTOR_MODE
        if resolved_mode not in ("thread", "process"):
            raise InvalidParameterError(
                f"executor_mode must be 'thread' or 'process', got {executor_mode!r}"
            )
        self.executor_mode = resolved_mode
        pool_class = ProcessExecutorPool if resolved_mode == "process" else ExecutorPool
        self.executor_pool = pool_class(
            self.datastore, num_workers=num_workers, metrics=self.metrics
        )
        self.scheduler = Scheduler(
            self.datastore,
            self.catalog,
            self.executor_pool,
            max_finished_tasks=max_finished_tasks,
        )
        self.status = StatusComponent(self.scheduler, self.datastore)
        self.task_builder = TaskBuilder(self.catalog)
        # ---- self-healing storage wiring (replicated stores only) -------- #
        if probe_interval_seconds is None:
            probe_interval_seconds = self.DEFAULT_PROBE_INTERVAL_SECONDS
        if probe_interval_seconds < 0:
            raise InvalidParameterError(
                f"probe_interval_seconds must be >= 0, got {probe_interval_seconds}"
            )
        if spill_budget_bytes is not None and spill_budget_bytes < 0:
            raise InvalidParameterError(
                f"spill_budget_bytes must be >= 0, got {spill_budget_bytes}"
            )
        replicated = isinstance(self.datastore, ReplicatedShardedDataStore)
        if spill_budget_bytes is not None and (
            not replicated or self.datastore.spill_store is None
        ):
            raise InvalidParameterError(
                "spill_budget_bytes requires a spill tier; build the gateway "
                "with spill_dir=..."
            )
        self._spill_budget = spill_budget_bytes
        self._probe_interval = probe_interval_seconds
        self._maintenance_lock = threading.Lock()
        self._repair_job_active = False
        self._spill_job_active = False
        self._shutting_down = False
        self._health_job: Optional[JobRecord] = None
        self._prober: Optional[threading.Thread] = None
        self._prober_stop = threading.Event()
        if replicated:
            store = self.datastore
            # One long-lived registry job collects the failure detector's
            # typed transitions, so shard_down/shard_up stream over the same
            # long-poll/SSE surface as every other event.
            self._health_job = self.scheduler.jobs.create(
                f"storage-health-{uuid.uuid4()}", 0, description="storage health"
            )
            self._health_job.append("submitted", total_queries=0, kind="health")
            store.add_health_listener(self._on_health_transition)
            store.set_repair_launcher(self._launch_read_repair)
            self.scheduler.register_maintenance_hook(self._storage_maintenance)
            if probe_interval_seconds > 0:
                self._prober = threading.Thread(
                    target=self._probe_loop, name="storage-prober", daemon=True
                )
                self._prober.start()
        # ---- overload protection wiring ---------------------------------- #
        if default_deadline_ms is not None and (
            not isinstance(default_deadline_ms, int)
            or isinstance(default_deadline_ms, bool)
            or default_deadline_ms <= 0
        ):
            raise InvalidParameterError(
                f"default_deadline_ms must be a positive int, got {default_deadline_ms!r}"
            )
        self._default_deadline_ms = default_deadline_ms
        self._admission: Optional[AdmissionController] = None
        self._overload_job: Optional[JobRecord] = None
        if admission_max_cost is not None:
            if admission_max_cost < 0:
                raise InvalidParameterError(
                    f"admission_max_cost must be >= 0, got {admission_max_cost}"
                )
            if admission_retry_after_seconds <= 0:
                raise InvalidParameterError(
                    "admission_retry_after_seconds must be > 0, got "
                    f"{admission_retry_after_seconds}"
                )
            self._admission = AdmissionController(
                max_cost=admission_max_cost,
                retry_after_seconds=admission_retry_after_seconds,
            )
            # Shed submissions were never enqueued, so they have no job of
            # their own; a long-lived registry job carries the typed ``shed``
            # events onto the same long-poll/SSE surface as everything else.
            self._overload_job = self.scheduler.jobs.create(
                f"gateway-overload-{uuid.uuid4()}", 0, description="gateway overload"
            )
            self._overload_job.append("submitted", total_queries=0, kind="overload")
        storage_resilience = {
            key: value
            for key, value in {
                "retry_max_attempts": retry_max_attempts,
                "retry_budget_capacity": retry_budget_capacity,
                "retry_budget_refill_per_second": retry_budget_refill_per_second,
                "breaker_failure_threshold": breaker_failure_threshold,
                "breaker_cooldown_seconds": breaker_cooldown_seconds,
            }.items()
            if value is not None
        }
        if storage_resilience:
            if not replicated:
                raise InvalidParameterError(
                    "storage retry/breaker knobs require a replicated datastore; "
                    "build the gateway with replicas=R"
                )
            self.datastore.configure_resilience(**storage_resilience)
        if read_consistency is not None:
            if not replicated:
                raise InvalidParameterError(
                    "read_consistency requires a replicated datastore; build "
                    "the gateway with replicas=R"
                )
            self.datastore.set_read_consistency(read_consistency)
        self.status.register_section("overload", self._overload_stats)
        self.status.register_section("telemetry", self._telemetry_stats)
        self.status.register_section("executors", self._executor_stats)

    # ------------------------------------------------------------------ #
    # discovery endpoints
    # ------------------------------------------------------------------ #
    def list_datasets(self, *, family: Optional[str] = None) -> List[Dict[str, Any]]:
        """Return the dataset picker payload: id, family, description, tags."""
        return [
            {
                "dataset_id": descriptor.dataset_id,
                "family": descriptor.family,
                "description": descriptor.description,
                "tags": dict(descriptor.tags),
            }
            for descriptor in self.catalog.list(family=family)
        ]

    def list_algorithms(self) -> List[Dict[str, Any]]:
        """Return the algorithm picker payload: name, personalization, parameters."""
        payload = []
        for name in available_algorithms():
            algorithm = get_algorithm(name)
            payload.append(
                {
                    "name": algorithm.name,
                    "display_name": algorithm.display_name,
                    "personalized": algorithm.is_personalized,
                    "description": algorithm.spec.description,
                    "parameters": [
                        {
                            "name": spec.name,
                            "kind": spec.kind,
                            "default": spec.default,
                            "description": spec.description,
                        }
                        for spec in algorithm.spec.parameters
                    ],
                }
            )
        return payload

    def dataset_summary(self, dataset_id: str) -> Dict[str, Any]:
        """Return the structural summary card of one dataset."""
        graph = self.catalog.load(dataset_id)
        return graph_summary(graph).as_dict()

    # ------------------------------------------------------------------ #
    # dataset upload
    # ------------------------------------------------------------------ #
    def upload_dataset(
        self,
        dataset_id: str,
        source: Union[DirectedGraph, str, Path],
        *,
        format: Optional[str] = None,
        description: str = "",
        replace: bool = False,
    ) -> Dict[str, Any]:
        """Register a user-provided dataset (an in-memory graph or a file path).

        Re-uploading (``replace=True``) drops the previously materialised
        graph from the datastore and invalidates every cached ranking for the
        dataset, so subsequent queries always run against the new upload.
        """
        if isinstance(source, DirectedGraph):
            self.catalog.register_graph(
                dataset_id, source, description=description, replace=replace
            )
        else:
            self.catalog.register_file(
                dataset_id, source, format=format, description=description, replace=replace
            )
        self.datastore.drop_dataset(dataset_id)
        # The shared-memory segment (process executor tier) carries the old
        # compiled arrays; unlink it with the artifact it mirrors.
        self.executor_pool.invalidate_artifact(dataset_id)
        return self.dataset_summary(dataset_id)

    # ------------------------------------------------------------------ #
    # query sets and submission
    # ------------------------------------------------------------------ #
    def new_query_set(self) -> QuerySet:
        """Return an empty query set (a fresh comparison with its permalink id)."""
        return self.task_builder.new_query_set()

    def add_query(
        self,
        query_set: QuerySet,
        dataset_id: str,
        algorithm: str,
        *,
        source: Optional[str] = None,
        parameters: Optional[Mapping[str, Any]] = None,
    ) -> Query:
        """Validate and append one query to ``query_set``."""
        query = self.task_builder.build_query(
            dataset_id, algorithm, source=source, parameters=parameters
        )
        query_set.add(query)
        return query

    def submit_comparison(
        self,
        query_set: QuerySet,
        *,
        synchronous: bool = False,
        deadline_ms: Optional[int] = None,
    ) -> str:
        """Submit a query set for execution and return its comparison id.

        With ``synchronous=True`` the call blocks until every query has run
        (useful for scripting); otherwise queries execute on the worker pool
        and progress can be polled through :meth:`get_status`.

        ``deadline_ms`` bounds the submission end to end (defaulting to the
        gateway's ``default_deadline_ms``); with admission control enabled
        the submission may be shed *before* enqueueing with
        :class:`~repro.exceptions.GatewayOverloadedError` — nothing was
        accepted, so the caller simply retries after its ``retry_after``.
        """
        if deadline_ms is None:
            deadline_ms = self._default_deadline_ms
        task = self.task_builder.build_task(query_set, deadline_ms=deadline_ms)
        # Root span of the submission: a REST request span already on this
        # thread makes the comparison a child sharing its trace id, so one
        # HTTP request and the work it triggers form a single trace.  The
        # span stays open until the job settles (see _arm_trace_finish).
        span = self.tracer.start_trace(
            "comparison",
            comparison_id=task.task_id,
            queries=task.total_queries,
            synchronous=synchronous,
        )
        task.trace_span = span if span.recording else None
        self.metrics.counter_inc(
            "submissions_total", help="Comparisons submitted to the gateway"
        )
        cost = estimate_cost(query_set.queries)
        with trace_scope(task.trace_span):
            try:
                with child_span("admission", cost=cost):
                    admitted = self._admit(task, cost)
            except GatewayOverloadedError:
                self.metrics.counter_inc(
                    "shed_total", help="Submissions refused by admission control"
                )
                span.annotate(shed=True)
                span.finish()
                raise
            try:
                if synchronous:
                    self.scheduler.run_synchronously(task)
                else:
                    self.scheduler.submit(task)
            except BaseException:
                if admitted:
                    self._admission.release(cost)
                span.finish()
                raise
        self._arm_trace_finish(task.task_id, span)
        if admitted:
            self._arm_admission_release(task.task_id, cost)
        return task.task_id

    def run_queries(
        self,
        queries: Sequence[Mapping[str, Any]],
        *,
        synchronous: bool = True,
        deadline_ms: Optional[int] = None,
    ) -> str:
        """Build a query set from plain dictionaries and submit it.

        Each mapping must provide ``dataset_id`` and ``algorithm`` and may
        provide ``source`` and ``parameters`` — the JSON body of the demo's
        submission endpoint.  ``deadline_ms`` is forwarded to
        :meth:`submit_comparison`.
        """
        query_set = self.new_query_set()
        for raw in queries:
            self.add_query(
                query_set,
                raw["dataset_id"],
                raw["algorithm"],
                source=raw.get("source"),
                parameters=raw.get("parameters"),
            )
        return self.submit_comparison(
            query_set, synchronous=synchronous, deadline_ms=deadline_ms
        )

    # ------------------------------------------------------------------ #
    # admission control (load shedding before enqueue)
    # ------------------------------------------------------------------ #
    def _admit(self, task: Task, cost: int) -> bool:
        """Reserve ``cost`` against the admission budget, or shed the task.

        Returns whether a reservation was made (``False`` when admission
        control is disabled).  Shedding happens before the scheduler ever
        sees the task: a typed ``shed`` event lands on the overload job and
        :class:`GatewayOverloadedError` carries the computed retry-after.
        """
        if self._admission is None:
            return False
        admitted, retry_after = self._admission.try_admit(cost)
        if admitted:
            return True
        job = self._overload_job
        if job is not None:
            job.append(
                "shed",
                comparison_id=task.task_id,
                cost=cost,
                retry_after=round(retry_after, 3),
            )
        raise GatewayOverloadedError(
            f"gateway over admission budget (estimated cost {cost}); "
            f"retry after {retry_after:.2f}s",
            retry_after=retry_after,
        )

    def _arm_admission_release(self, task_id: str, cost: int) -> None:
        """Release the admission reservation exactly once, when the job settles.

        Subscribes to the job's event stream for ``task_done`` and then
        covers the finished-before-subscribe race with a terminal-state
        check; the once-guard makes the two paths (and any duplicate
        callbacks) idempotent.
        """
        admission = self._admission
        if admission is None:
            return
        job = self.scheduler.jobs.find(task_id)
        if job is None:
            admission.release(cost)
            return
        released = [False]
        release_lock = threading.Lock()

        def release_once() -> None:
            with release_lock:
                if released[0]:
                    return
                released[0] = True
            admission.release(cost)

        def on_event(event) -> None:
            if event.type == "task_done":
                release_once()

        job.subscribe(on_event)
        if job.state.is_terminal():
            release_once()

    def _arm_trace_finish(self, task_id: str, span: Any) -> None:
        """Finish the submission's root span exactly once, when the job settles.

        Mirrors :meth:`_arm_admission_release`: subscribe for ``task_done``,
        then cover the finished-before-subscribe race with a terminal-state
        check; the span's own ``finish()`` idempotence absorbs duplicates.
        """
        if not span.recording:
            return
        job = self.scheduler.jobs.find(task_id)
        if job is None:
            span.finish()
            return

        def finish_span() -> None:
            span.annotate(state=job.state.value)
            span.finish()

        def on_event(event) -> None:
            if event.type == "task_done":
                finish_span()

        job.subscribe(on_event)
        if job.state.is_terminal():
            finish_span()

    def shed_events(self, *, after: int = 0) -> List[Dict[str, Any]]:
        """Return the typed ``shed`` events admission control has recorded."""
        job = self._overload_job
        if job is None:
            return []
        return [
            event.as_dict()
            for event in job.events()
            if event.seq > after and event.type == "shed"
        ]

    def _overload_stats(self) -> Dict[str, Any]:
        """The ``overload`` section of :meth:`get_platform_stats`."""
        payload: Dict[str, Any] = {
            "deadlines": {
                "default_deadline_ms": self._default_deadline_ms,
                **self.scheduler.overload_stats(),
            }
        }
        if self._admission is not None:
            payload["admission"] = {"enabled": True, **self._admission.stats()}
        else:
            payload["admission"] = {"enabled": False}
        store = self.datastore
        if isinstance(store, ReplicatedShardedDataStore):
            replication = store.replication_stats()
            payload["storage"] = {
                "retries": replication["retries"],
                "breakers": replication["breakers"],
                "read_consistency": replication["read_consistency"],
                "stale_reads": replication["stale_reads"],
                "stale_reads_prevented": replication["stale_reads_prevented"],
                "digest_reads": replication["digest_reads"],
                "version_conflicts_resolved": replication[
                    "version_conflicts_resolved"
                ],
            }
        return payload

    # ------------------------------------------------------------------ #
    # status / results
    # ------------------------------------------------------------------ #
    def get_status(self, comparison_id: str) -> TaskProgress:
        """Return the progress snapshot of a submitted comparison."""
        return self.status.poll(comparison_id)

    def list_comparisons(self) -> List[Dict[str, Any]]:
        """Return one summary row per known comparison job, oldest first.

        The listing is bounded: the registry retains every active job but
        only the most recent finished ones (their results remain retrievable
        by permalink after the row ages out).
        """
        return [record.summary() for record in self.scheduler.jobs.list_records()]

    def cancel_comparison(self, comparison_id: str) -> Dict[str, Any]:
        """Request cooperative cancellation of a running comparison.

        Returns ``{"comparison_id", "cancelled", "state"}`` where
        ``cancelled`` says whether the request was recorded (``False`` for
        an already-finished job) and ``state`` is the state observed right
        after the request.  Raises
        :class:`~repro.exceptions.TaskNotFoundError` for unknown ids.
        """
        cancelled = self.scheduler.cancel(comparison_id)
        progress = self.get_status(comparison_id)
        return {
            "comparison_id": comparison_id,
            "cancelled": cancelled,
            "state": progress.state.value,
        }

    def get_events(
        self,
        comparison_id: str,
        *,
        after: int = 0,
        timeout: Optional[float] = None,
    ) -> List[Dict[str, Any]]:
        """One blocking cursor read over a comparison's event log.

        Returns every event with ``seq > after`` as plain dictionaries,
        blocking up to ``timeout`` seconds for the first new one (a finished
        job returns immediately).  This is the REST long-poll primitive.
        """
        return [
            event.as_dict()
            for event in self.status.events_since(
                comparison_id, after=after, timeout=timeout
            )
        ]

    def stream_events(
        self,
        comparison_id: str,
        *,
        after: int = 0,
        poll_timeout: float = 1.0,
    ) -> Iterator[Dict[str, Any]]:
        """Yield a comparison's events in ``seq`` order until it finishes.

        The generator blocks on the event cursor between batches
        (``poll_timeout`` bounds each wait) and terminates after yielding
        the ``task_done`` event, so ``for event in stream_events(...)``
        renders live progress and ends by itself — the SSE endpoint and the
        CLI ``--follow`` flag are thin loops over this.
        """
        cursor = after
        while True:
            events = self.status.events_since(
                comparison_id, after=cursor, timeout=poll_timeout
            )
            for event in events:
                cursor = event.seq
                yield event.as_dict()
                if event.type == "task_done":
                    return
            if not events and self.get_status(comparison_id).state.is_terminal():
                return

    def get_platform_stats(self) -> Dict[str, Any]:
        """Return the serving counters: result-cache stats and batch sizes."""
        return self.status.platform_stats()

    # ------------------------------------------------------------------ #
    # telemetry surface (traces, /metrics, the telemetry stats section)
    # ------------------------------------------------------------------ #
    def get_trace(self, comparison_id: str) -> Dict[str, Any]:
        """Return the reconstructed span tree of a submitted comparison.

        The payload carries the job state, the trace id and a ``trace``
        tree (``None`` when telemetry is disabled or the trace aged out of
        the tracer's bounded store).  Unknown comparison ids raise
        :class:`~repro.exceptions.TaskNotFoundError`.
        """
        job = self.scheduler.jobs.get(comparison_id)
        trace_id = job.trace_id
        tree = self.tracer.trace_tree(trace_id) if trace_id else None
        return {
            "comparison_id": comparison_id,
            "state": job.state.value,
            "trace_id": trace_id,
            "trace": tree,
        }

    def render_metrics(self) -> str:
        """Render the registry as a Prometheus text exposition (``GET /metrics``).

        A handful of platform counters are mirrored as scrape-time gauges so
        one scrape answers the basic capacity questions without walking the
        JSON stats surface.
        """
        self._refresh_runtime_gauges()
        return self.metrics.render_prometheus()

    def _refresh_runtime_gauges(self) -> None:
        if not self.metrics.enabled:
            return
        cache = self.scheduler.cache_stats()
        self.metrics.gauge_set(
            "result_cache_hits", cache.get("hits", 0),
            help="Result-cache hits since start",
        )
        self.metrics.gauge_set(
            "result_cache_misses", cache.get("misses", 0),
            help="Result-cache misses since start",
        )
        batches = self.scheduler.batch_stats()
        self.metrics.gauge_set(
            "batches_dispatched", batches.get("batches", 0),
            help="Batched executions dispatched since start",
        )
        self.metrics.gauge_set(
            "inflight_queries", batches.get("inflight_queries", 0),
            help="Single-flight table occupancy",
        )
        for state, count in self.scheduler.jobs.stats().get("by_state", {}).items():
            self.metrics.gauge_set(
                "jobs", count, help="Registered jobs by lifecycle state",
                state=state,
            )
        if self._admission is not None:
            self.metrics.gauge_set(
                "admission_in_flight_cost",
                self._admission.stats().get("inflight_cost", 0),
                help="Reserved admission cost of in-flight work",
            )
        self.metrics.gauge_set(
            "executor_busy_workers", self.executor_pool.busy_workers,
            help="Executor workers currently running a batch",
            mode=self.executor_pool.mode,
        )
        if isinstance(self.datastore, ReplicatedShardedDataStore):
            replication = self.datastore.replication_stats()
            self.metrics.gauge_set(
                "storage_stale_reads", replication["stale_reads"],
                help="Below-floor replica answers detected on the read path",
                consistency=replication["read_consistency"],
            )
            self.metrics.gauge_set(
                "storage_stale_reads_prevented",
                replication["stale_reads_prevented"],
                help="Below-floor replica answers withheld by quorum reads",
            )
            self.metrics.gauge_set(
                "storage_digest_reads", replication["digest_reads"],
                help="Version-digest quorum rounds run by the replicated store",
            )
            self.metrics.gauge_set(
                "storage_version_conflicts_resolved",
                replication["version_conflicts_resolved"],
                help="Replica version divergences resolved by digest rounds",
            )

    def _executor_stats(self) -> Dict[str, Any]:
        """The ``executors`` section of :meth:`get_platform_stats`."""
        return self.executor_pool.stats()

    def _telemetry_stats(self) -> Dict[str, Any]:
        """The ``telemetry`` section of :meth:`get_platform_stats`."""
        return {
            "tracer": self.tracer.stats(),
            "metrics": self.metrics.snapshot(),
        }

    # ------------------------------------------------------------------ #
    # storage maintenance jobs (replication / spill / rebalance)
    # ------------------------------------------------------------------ #
    def _replicated_store(self) -> ReplicatedShardedDataStore:
        if not isinstance(self.datastore, ReplicatedShardedDataStore):
            raise InvalidParameterError(
                "this operation requires a replicated datastore; build the "
                "gateway with replicas=R (and optionally spill_dir=...)"
            )
        return self.datastore

    def _launch_storage_job(
        self, kind: str, runner: Callable[[JobRecord], Any], *, wait: bool
    ) -> str:
        """Register a maintenance job and run ``runner`` on the worker pool.

        The job lives in the same registry as comparison jobs, so the whole
        observation surface comes for free: it shows up in
        :meth:`list_comparisons`, streams ``progress`` events over
        :meth:`get_events`/:meth:`stream_events` (REST long-poll and SSE),
        and :meth:`cancel_comparison` requests cooperative cancellation —
        the migration loop stops at its next item boundary and the job
        finishes ``CANCELLED``.
        """
        job_id = str(uuid.uuid4())
        job = self.scheduler.jobs.create(job_id, 0, description=f"storage {kind}")
        job.append("submitted", total_queries=0, kind=kind)

        def body() -> None:
            try:
                runner(job)
            except Exception as exc:
                job.finish(JobState.FAILED, error=str(exc))
                return
            if job.cancel_requested:
                job.finish(JobState.CANCELLED)
            else:
                job.finish(JobState.DONE)

        self.executor_pool.submit_work(body)
        if wait:
            job.wait_done()
        return job_id

    def replicate_storage(self, *, wait: bool = False) -> str:
        """Start a replication-repair job; return its job id.

        The job scans the ring and restores R copies of every dataset and
        result (after a shard outage or a topology change), updating the
        replication-lag figure in :meth:`get_platform_stats`.
        """
        store = self._replicated_store()
        return self._launch_storage_job(
            "replicate", lambda job: store.replicate(job=job), wait=wait
        )

    def spill_storage(
        self,
        *,
        max_resident: Optional[int] = None,
        max_resident_bytes: Optional[int] = None,
        dataset_ids: Optional[Sequence[str]] = None,
        wait: bool = False,
    ) -> str:
        """Start a spill job demoting cold datasets to the file tier.

        Provide exactly one of ``max_resident`` (keep at most that many
        datasets on the memory shards; coldest spill first),
        ``max_resident_bytes`` (spill coldest-first until the estimated
        resident graph bytes fit the budget) or ``dataset_ids`` (explicit
        victims).
        """
        store = self._replicated_store()
        if store.spill_store is None:
            raise InvalidParameterError(
                "no spill tier is configured; build the gateway with spill_dir=..."
            )
        policies = [
            policy
            for policy in (max_resident, max_resident_bytes, dataset_ids)
            if policy is not None
        ]
        if len(policies) != 1:
            raise InvalidParameterError(
                "provide exactly one of `max_resident`, `max_resident_bytes` "
                "or `dataset_ids`"
            )
        victims = list(dataset_ids) if dataset_ids is not None else None
        return self._launch_storage_job(
            "spill",
            lambda job: store.spill(
                max_resident=max_resident,
                max_resident_bytes=max_resident_bytes,
                dataset_ids=victims,
                job=job,
            ),
            wait=wait,
        )

    def rebalance_storage(self, *, wait: bool = False) -> str:
        """Start a rebalance job restoring canonical placement (and R copies)."""
        store = self.datastore
        if isinstance(store, ReplicatedShardedDataStore):
            runner: Callable[[JobRecord], Any] = lambda job: store.rebalance(job=job)
        elif isinstance(store, ShardedDataStore):
            runner = lambda job: store.rebalance()
        else:
            raise InvalidParameterError(
                "rebalance requires a sharded datastore; build the gateway "
                "with shards=N (optionally replicas=R)"
            )
        return self._launch_storage_job("rebalance", runner, wait=wait)

    def read_repair_storage(self, *, wait: bool = False) -> str:
        """Start a job draining the read-repair queue; return its job id.

        Failover reads enqueue their keys automatically (and the gateway
        normally launches this job by itself through the store's repair
        launcher); the explicit entry point exists for operators and the
        ``POST /api/storage/read-repair`` endpoint.
        """
        store = self._replicated_store()
        return self._launch_storage_job(
            "read-repair", lambda job: store.drain_read_repairs(job=job), wait=wait
        )

    # ------------------------------------------------------------------ #
    # self-healing wiring (health prober, repair launcher, spill budget)
    # ------------------------------------------------------------------ #
    def _on_health_transition(self, shard_id: str, transition: str, streak: int) -> None:
        """Store health listener: record the transition as a typed job event.

        Runs under the store's routing lock, so it only appends to the
        long-lived health job record (never calls back into the store).
        """
        job = self._health_job
        if job is not None:
            job.append(
                "shard_down" if transition == "down" else "shard_up",
                shard=shard_id,
                failures=streak,
            )

    def health_events(self, *, after: int = 0) -> List[Dict[str, Any]]:
        """Return the recorded shard health transitions (typed job events)."""
        job = self._health_job
        if job is None:
            return []
        return [
            event.as_dict()
            for event in job.events()
            if event.seq > after and event.type in ("shard_down", "shard_up")
        ]

    def _launch_read_repair(self) -> None:
        """Launch a coalesced background drain of the read-repair queue.

        Called by the store whenever a failover read queues a key, and by
        the prober when keys are pending.  At most one drain job runs at a
        time; keys queued while it runs are picked up by its loop, and a
        key that slips in exactly as the drain finishes is caught by the
        re-kick below.
        """
        store = self.datastore
        if not isinstance(store, ReplicatedShardedDataStore):
            return
        if store.pending_read_repairs() == 0:
            return
        with self._maintenance_lock:
            if self._repair_job_active or self._shutting_down:
                return
            self._repair_job_active = True

        def runner(job: JobRecord) -> Any:
            try:
                return store.drain_read_repairs(job=job)
            finally:
                with self._maintenance_lock:
                    self._repair_job_active = False
                if store.pending_read_repairs():
                    self._launch_read_repair()

        try:
            self._launch_storage_job("read-repair", runner, wait=False)
        except BaseException:
            with self._maintenance_lock:
                self._repair_job_active = False
            raise

    def _check_spill_budget(self) -> None:
        """Launch a coalesced spill job when resident bytes exceed the budget."""
        budget = self._spill_budget
        store = self.datastore
        if budget is None or not isinstance(store, ReplicatedShardedDataStore):
            return
        try:
            resident = store.resident_dataset_bytes()
        except Exception:
            return
        if resident <= budget:
            return
        with self._maintenance_lock:
            if self._spill_job_active or self._shutting_down:
                return
            self._spill_job_active = True

        def runner(job: JobRecord) -> Any:
            try:
                return store.spill(max_resident_bytes=budget, job=job)
            finally:
                with self._maintenance_lock:
                    self._spill_job_active = False

        try:
            self._launch_storage_job("spill", runner, wait=False)
        except BaseException:
            with self._maintenance_lock:
                self._spill_job_active = False
            raise

    def _storage_maintenance(self) -> None:
        """Scheduler maintenance hook: runs after every settled work unit."""
        self._check_spill_budget()
        store = self.datastore
        if (
            isinstance(store, ReplicatedShardedDataStore)
            and store.pending_read_repairs()
        ):
            self._launch_read_repair()

    def _probe_loop(self) -> None:
        """Background prober: ping shards, then re-run the maintenance checks."""
        store = self.datastore
        while not self._prober_stop.wait(self._probe_interval):
            try:
                store.probe_shards()
            except Exception:
                pass
            try:
                self._storage_maintenance()
            except Exception:
                pass

    def wait_for(self, comparison_id: str, *, timeout_seconds: float = 60.0) -> TaskProgress:
        """Block until a comparison finishes; return the final progress.

        Blocks on the job's event cursor (``task_done`` is emitted after the
        results are persisted), so the pre-refactor contract — results are
        readable the moment this returns — still holds.
        """
        return self.status.poll_until_done(comparison_id, timeout_seconds=timeout_seconds)

    def get_task(self, comparison_id: str) -> Task:
        """Return the underlying task object (mostly for tests and tooling)."""
        return self.scheduler.get_task(comparison_id)

    def get_rankings(self, comparison_id: str) -> List[Ranking]:
        """Return the rankings of a finished comparison, in query order."""
        rankings = self.scheduler.rankings_for(comparison_id)
        return [rankings[index] for index in sorted(rankings)]

    def get_logs(self, comparison_id: str) -> List[str]:
        """Return the execution log of a comparison."""
        return self.status.logs(comparison_id)

    def get_comparison_table(
        self,
        comparison_id: str,
        *,
        k: int = 5,
        title: str = "",
    ) -> ComparisonTable:
        """Assemble the top-k comparison table of a finished comparison.

        Column headers combine the algorithm display name with the dataset
        when the comparison spans several datasets (the dataset-comparison
        use case) and just the display name otherwise (algorithm comparison).

        A comparison whose task aged out of the scheduler's bounded table is
        reassembled from the result payload persisted in the datastore, so
        permalinks outlive the in-memory task record.
        """
        try:
            task = self.scheduler.get_task(comparison_id)
            queries = task.query_set.queries
            rankings = task.rankings()
        except TaskNotFoundError:
            payload = self.scheduler.stored_result(comparison_id)
            queries = [
                Query(
                    dataset_id=raw["dataset_id"],
                    algorithm=raw["algorithm"],
                    source=raw.get("source"),
                    parameters=raw.get("parameters") or {},
                )
                for raw in payload.get("queries", [])
            ]
            rankings = {
                int(index): Ranking.from_dict(serialised)
                for index, serialised in payload.get("rankings", {}).items()
            }
        datasets = {query.dataset_id for query in queries}
        named: Dict[str, Ranking] = {}
        for index in sorted(rankings):
            query = queries[index]
            algorithm = get_algorithm(query.algorithm)
            header = algorithm.display_name
            if len(datasets) > 1:
                header = f"{header} @ {query.dataset_id}"
            if header in named:
                header = f"{header} #{index}"
            named[header] = rankings[index]
        return ComparisonTable.from_rankings(
            named,
            k=k,
            title=title or f"Comparison {comparison_id}",
            metadata={
                "comparison_id": comparison_id,
                "datasets": sorted(datasets),
                "queries": [query.as_dict() for query in queries],
            },
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def shutdown(self) -> None:
        """Stop the prober and health job, then shut down the executor pool."""
        with self._maintenance_lock:
            self._shutting_down = True
        self._prober_stop.set()
        if self._prober is not None:
            self._prober.join(timeout=5.0)
            self._prober = None
        if isinstance(self.datastore, ReplicatedShardedDataStore):
            self.datastore.set_repair_launcher(None)
        if self._health_job is not None:
            self._health_job.finish(JobState.DONE)
        if self._overload_job is not None:
            self._overload_job.finish(JobState.DONE)
        self.executor_pool.shutdown()

    def __enter__(self) -> "ApiGateway":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.shutdown()
