"""Rank-agreement metrics between two rankings.

The demo's *algorithm comparison* use case is qualitative (side-by-side
top-5 tables); these metrics give it a quantitative counterpart used by the
benchmarks and the ablation studies: how much do two algorithms agree on the
head of the ranking, and how correlated are the full orders?
"""

from __future__ import annotations

import math
from typing import List, Sequence

import numpy as np

from .result import Ranking

__all__ = [
    "overlap_at_k",
    "jaccard_at_k",
    "precision_at_k",
    "kendall_tau",
    "spearman_rho",
    "rank_biased_overlap",
]


def _top_label_set(ranking: Ranking, k: int) -> set:
    return set(ranking.top_labels(k))


def overlap_at_k(first: Ranking, second: Ranking, k: int = 10) -> float:
    """Return ``|top_k(first) ∩ top_k(second)| / k``.

    Both rankings should be over the same graph; labels are used for matching
    so rankings from relabelled copies still compare correctly.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    return len(_top_label_set(first, k) & _top_label_set(second, k)) / k


def jaccard_at_k(first: Ranking, second: Ranking, k: int = 10) -> float:
    """Return the Jaccard similarity of the two top-k label sets."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top_first = _top_label_set(first, k)
    top_second = _top_label_set(second, k)
    union = top_first | top_second
    if not union:
        return 1.0
    return len(top_first & top_second) / len(union)


def precision_at_k(ranking: Ranking, relevant: Sequence[str], k: int = 10) -> float:
    """Return the fraction of the top-k labels that appear in ``relevant``.

    Used by the approximate-PPR ablation, where ``relevant`` is the top-k of
    the exact algorithm.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    relevant_set = set(relevant)
    top = ranking.top_labels(k)
    if not top:
        return 0.0
    return sum(1 for label in top if label in relevant_set) / len(top)


def _common_label_ranks(first: Ranking, second: Ranking) -> List[tuple]:
    """Return ``(rank_in_first, rank_in_second)`` for labels present in both."""
    second_labels = set(second.as_label_dict())
    pairs = []
    for label, _ in first.as_label_dict().items():
        if label in second_labels:
            pairs.append((first.rank_of(label), second.rank_of(label)))
    return pairs


def kendall_tau(first: Ranking, second: Ranking) -> float:
    """Return Kendall's tau-b rank correlation between two rankings.

    Computed over the labels common to both rankings.  Returns 1.0 when fewer
    than two common labels exist (there is nothing to disagree about).
    """
    pairs = _common_label_ranks(first, second)
    if len(pairs) < 2:
        return 1.0
    from scipy.stats import kendalltau

    ranks_first = [p[0] for p in pairs]
    ranks_second = [p[1] for p in pairs]
    tau, _ = kendalltau(ranks_first, ranks_second)
    if math.isnan(tau):
        return 1.0
    return float(tau)


def spearman_rho(first: Ranking, second: Ranking) -> float:
    """Return Spearman's rho rank correlation between two rankings."""
    pairs = _common_label_ranks(first, second)
    if len(pairs) < 2:
        return 1.0
    from scipy.stats import spearmanr

    ranks_first = [p[0] for p in pairs]
    ranks_second = [p[1] for p in pairs]
    rho, _ = spearmanr(ranks_first, ranks_second)
    if isinstance(rho, np.ndarray):
        rho = float(rho)
    if math.isnan(rho):
        return 1.0
    return float(rho)


def rank_biased_overlap(first: Ranking, second: Ranking, p: float = 0.9, depth: int = 50) -> float:
    """Return the (truncated) rank-biased overlap of two rankings.

    RBO is the standard top-weighted similarity for indefinite rankings
    (Webber, Moffat & Zobel 2010).  ``p`` controls how top-heavy the measure
    is; ``depth`` truncates the evaluation.  The result lies in [0, 1].
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if depth <= 0:
        raise ValueError(f"depth must be positive, got {depth}")
    labels_first = first.top_labels(depth)
    labels_second = second.top_labels(depth)
    max_depth = min(depth, max(len(labels_first), len(labels_second)))
    if max_depth == 0:
        return 1.0
    seen_first: set = set()
    seen_second: set = set()
    overlap_sum = 0.0
    weight_sum = 0.0
    agreement = 0.0
    for d in range(1, max_depth + 1):
        if d <= len(labels_first):
            seen_first.add(labels_first[d - 1])
        if d <= len(labels_second):
            seen_second.add(labels_second[d - 1])
        agreement = len(seen_first & seen_second) / d
        weight = p ** (d - 1)
        overlap_sum += agreement * weight
        weight_sum += weight
    # Extrapolate the tail with the last observed agreement, then normalise.
    return float((1 - p) * overlap_sum + agreement * (p ** max_depth)) / float(
        (1 - p) * weight_sum + (p ** max_depth)
    )
