"""Side-by-side comparison tables — the core of the demo's two use cases.

* **Algorithm comparison** (Tables I and II of the paper): the same graph and
  reference node, several algorithms, one column per algorithm, the top-k
  labels in each column.
* **Dataset comparison** (Table III): the same algorithm and conceptual
  reference node, several datasets (e.g. Wikipedia language editions), one
  column per dataset.

:class:`ComparisonTable` is a thin, render-friendly container; it does not run
algorithms itself — the platform's gateway and the convenience helpers
:func:`algorithm_comparison` / :func:`dataset_comparison` assemble it from
:class:`~repro.ranking.result.Ranking` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from .result import Ranking

__all__ = ["ComparisonTable", "algorithm_comparison", "dataset_comparison"]


@dataclass
class ComparisonTable:
    """A top-k table with one column per ranking.

    Attributes
    ----------
    title:
        Table caption (e.g. ``"Top-5 articles for 'Freddie Mercury'"``).
    columns:
        Column headers, in display order.
    rows:
        ``rows[i][j]`` is the label at rank ``i + 1`` in column ``j``.
    scores:
        Parallel structure to ``rows`` holding the scores (``None`` for
        algorithms that only produce a ranking, like 2DRank).
    metadata:
        Free-form provenance (reference node, dataset ids, parameters).
    """

    title: str
    columns: List[str]
    rows: List[List[str]]
    scores: List[List[Optional[float]]] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)

    @classmethod
    def from_rankings(
        cls,
        rankings: Mapping[str, Ranking],
        *,
        k: int = 5,
        title: str = "",
        exclude_reference: bool = False,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "ComparisonTable":
        """Build a table with one column per named ranking.

        Parameters
        ----------
        rankings:
            Mapping from column header to ranking (insertion order is kept).
        k:
            Number of rows (top-k).
        exclude_reference:
            When ``True`` each column drops its own reference node before
            taking the top-k.  The paper's tables keep the reference (it
            appears at rank 1 for CycleRank and PPR), so the default is
            ``False``.
        """
        columns = list(rankings)
        per_column_entries = []
        for column in columns:
            ranking = rankings[column]
            exclude = (
                (ranking.reference,) if exclude_reference and ranking.reference else ()
            )
            per_column_entries.append(ranking.top(k, exclude=exclude))
        rows: List[List[str]] = []
        scores: List[List[Optional[float]]] = []
        for position in range(k):
            row: List[str] = []
            score_row: List[Optional[float]] = []
            for entries in per_column_entries:
                if position < len(entries):
                    row.append(entries[position].label)
                    score_row.append(entries[position].score)
                else:
                    row.append("-")
                    score_row.append(None)
            rows.append(row)
            scores.append(score_row)
        return cls(
            title=title,
            columns=columns,
            rows=rows,
            scores=scores,
            metadata=dict(metadata or {}),
        )

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def column(self, header: str) -> List[str]:
        """Return the labels of one column, top to bottom."""
        index = self.columns.index(header)
        return [row[index] for row in self.rows]

    def as_dict(self) -> Dict[str, object]:
        """Serialise the table to plain Python types (for the datastore / JSON)."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "scores": [list(row) for row in self.scores],
            "metadata": dict(self.metadata),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ComparisonTable":
        """Reconstruct a table serialised with :meth:`as_dict`."""
        return cls(
            title=str(payload.get("title", "")),
            columns=list(payload.get("columns", [])),  # type: ignore[arg-type]
            rows=[list(r) for r in payload.get("rows", [])],  # type: ignore[union-attr]
            scores=[list(r) for r in payload.get("scores", [])],  # type: ignore[union-attr]
            metadata=dict(payload.get("metadata", {})),  # type: ignore[arg-type]
        )

    # ------------------------------------------------------------------ #
    # rendering
    # ------------------------------------------------------------------ #
    def to_text(self, *, show_scores: bool = False) -> str:
        """Render the table as aligned plain text (the CLI / text UI view)."""
        headers = ["#"] + list(self.columns)
        body: List[List[str]] = []
        for position, row in enumerate(self.rows, start=1):
            rendered_row = [str(position)]
            for column_index, label in enumerate(row):
                cell = label
                if show_scores and self.scores:
                    score = self.scores[position - 1][column_index]
                    if score is not None:
                        cell = f"{label} ({score:.4g})"
                rendered_row.append(cell)
            body.append(rendered_row)
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in body)) if body else len(headers[i])
            for i in range(len(headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
        for row in body:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        headers = ["#"] + list(self.columns)
        lines = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(headers) + " |")
        lines.append("|" + "|".join(["---"] * len(headers)) + "|")
        for position, row in enumerate(self.rows, start=1):
            lines.append("| " + " | ".join([str(position)] + row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()


def algorithm_comparison(
    rankings: Mapping[str, Ranking] | Sequence[Ranking],
    *,
    k: int = 5,
    title: str = "",
) -> ComparisonTable:
    """Build an algorithm-comparison table (Tables I / II of the paper).

    ``rankings`` may be a mapping from column header to ranking, or a sequence
    of rankings whose headers are derived from the algorithm name and
    reference node.
    """
    if not isinstance(rankings, Mapping):
        named: Dict[str, Ranking] = {}
        for ranking in rankings:
            header = ranking.algorithm or "ranking"
            if header in named:
                header = f"{header} ({ranking.describe()})"
            named[header] = ranking
        rankings = named
    references = {r.reference for r in rankings.values() if r.reference}
    graph_names = {r.graph_name for r in rankings.values() if r.graph_name}
    if not title:
        reference_part = f" for {', '.join(sorted(references))}" if references else ""
        title = f"Top-{k} results{reference_part}"
    return ComparisonTable.from_rankings(
        rankings,
        k=k,
        title=title,
        metadata={
            "use_case": "algorithm comparison",
            "references": sorted(references),
            "datasets": sorted(graph_names),
        },
    )


def dataset_comparison(
    rankings: Mapping[str, Ranking],
    *,
    k: int = 5,
    title: str = "",
) -> ComparisonTable:
    """Build a dataset-comparison table (Table III of the paper).

    Keys of ``rankings`` are dataset identifiers (e.g. ``"fake news (de)"``)
    and every ranking is produced by the *same* algorithm with the same
    parameters on a different dataset.
    """
    algorithms = {r.algorithm for r in rankings.values() if r.algorithm}
    if not title:
        algorithm_part = f" by {', '.join(sorted(algorithms))}" if algorithms else ""
        title = f"Top-{k} results{algorithm_part} across datasets"
    return ComparisonTable.from_rankings(
        rankings,
        k=k,
        title=title,
        metadata={
            "use_case": "dataset comparison",
            "algorithms": sorted(algorithms),
            "datasets": list(rankings),
        },
    )
