"""The :class:`Ranking` result type shared by every relevance algorithm.

A ranking is a mapping ``node id -> score`` over the nodes of one graph,
together with enough provenance (algorithm name, parameters, graph name,
optional reference node) to reproduce the run and to render it in the demo's
comparison tables.  Ties are broken deterministically by node label so the
same inputs always produce exactly the same ordered output.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import NodeNotFoundError

__all__ = ["ScoredNode", "Ranking"]


@dataclass(frozen=True)
class ScoredNode:
    """A node with its score and 1-based rank inside a :class:`Ranking`."""

    node: int
    label: str
    score: float
    rank: int

    def as_tuple(self) -> Tuple[int, str, float, int]:
        """Return ``(node, label, score, rank)``."""
        return (self.node, self.label, self.score, self.rank)


class Ranking:
    """Scores assigned to the nodes of a graph by one algorithm run.

    Parameters
    ----------
    scores:
        Mapping from node id to score, or a dense sequence indexed by node id.
    labels:
        Display labels indexed by node id (defaults to ``"#<id>"``).
    algorithm:
        Name of the algorithm that produced the ranking.
    parameters:
        The parameters the algorithm ran with (damping factor, K, ...).
    graph_name:
        Name of the graph the algorithm ran on.
    reference:
        Label of the reference (query) node for personalized algorithms.
    """

    __slots__ = ("_scores", "_labels", "_order", "_ranks", "algorithm", "parameters",
                 "graph_name", "reference")

    def __init__(
        self,
        scores: Mapping[int, float] | Sequence[float] | np.ndarray,
        *,
        labels: Optional[Sequence[str]] = None,
        algorithm: str = "",
        parameters: Optional[Mapping[str, object]] = None,
        graph_name: str = "",
        reference: Optional[str] = None,
    ) -> None:
        if isinstance(scores, Mapping):
            size = (max(scores) + 1) if scores else 0
            dense = np.zeros(size, dtype=np.float64)
            for node, score in scores.items():
                if node < 0:
                    raise NodeNotFoundError(node)
                dense[node] = float(score)
        else:
            dense = np.asarray(scores, dtype=np.float64).copy()
        if labels is not None and len(labels) < dense.size:
            raise ValueError(
                f"labels has length {len(labels)} but scores cover {dense.size} nodes"
            )
        self._scores = dense
        label_array: Optional[np.ndarray] = None
        if labels is None:
            self._labels = [f"#{i}" for i in range(dense.size)]
        elif isinstance(labels, np.ndarray):
            # Batch producers pass one shared string array for many rankings;
            # reuse it directly instead of re-converting per ranking.
            label_array = np.asarray(labels[: dense.size], dtype=str)
            self._labels = label_array.tolist()
        else:
            # str() of a str returns the same object, so this is a cheap
            # copy-through for the common all-string case.
            self._labels = list(map(str, labels[: dense.size]))
        self.algorithm = algorithm
        self.parameters = dict(parameters or {})
        self.graph_name = graph_name
        self.reference = reference
        # Deterministic order: descending score, then label, then node id.
        # lexsort keys are applied last-first and node ids are already the
        # stable final tie-break, so sorting by (label, -score) stably over
        # ascending ids reproduces the tuple ordering without a Python-level
        # key callback (which dominates construction time for large batches).
        if label_array is None:
            label_array = np.asarray(self._labels, dtype=str)
        order_array = np.lexsort((label_array, -dense))
        self._order = order_array.tolist()
        ranks = np.empty(dense.size, dtype=np.int64)
        ranks[order_array] = np.arange(1, dense.size + 1)
        self._ranks = ranks

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._scores.size)

    def __iter__(self) -> Iterator[ScoredNode]:
        return iter(self.top(len(self)))

    def __contains__(self, node: object) -> bool:
        if isinstance(node, int) and not isinstance(node, bool):
            return 0 <= node < len(self)
        if isinstance(node, str):
            return node in self._labels
        return False

    def score_of(self, node: int | str) -> float:
        """Return the score of a node (by id or label)."""
        return float(self._scores[self._resolve(node)])

    def rank_of(self, node: int | str) -> int:
        """Return the 1-based rank of a node (by id or label)."""
        return int(self._ranks[self._resolve(node)])

    def label_of(self, node: int) -> str:
        """Return the display label of a node id."""
        if not 0 <= node < len(self):
            raise NodeNotFoundError(node)
        return self._labels[node]

    def _resolve(self, node: int | str) -> int:
        if isinstance(node, str):
            try:
                return self._labels.index(node)
            except ValueError:
                raise NodeNotFoundError(node) from None
        if isinstance(node, bool) or not isinstance(node, int) or not 0 <= node < len(self):
            raise NodeNotFoundError(node)
        return node

    @property
    def scores(self) -> np.ndarray:
        """Return a copy of the dense score vector, indexed by node id."""
        return self._scores.copy()

    def as_dict(self) -> Dict[int, float]:
        """Return the scores as a ``{node id: score}`` dictionary."""
        return {node: float(score) for node, score in enumerate(self._scores)}

    def as_label_dict(self) -> Dict[str, float]:
        """Return the scores as a ``{label: score}`` dictionary."""
        return {self._labels[node]: float(score) for node, score in enumerate(self._scores)}

    # ------------------------------------------------------------------ #
    # top-k queries
    # ------------------------------------------------------------------ #
    def top(self, k: int = 10, *, exclude: Iterable[str] = ()) -> List[ScoredNode]:
        """Return the ``k`` highest-scoring nodes as :class:`ScoredNode` entries.

        Parameters
        ----------
        exclude:
            Labels to skip (the demo's tables exclude nothing, but the
            comparison helpers use it to drop the reference node on demand).
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        excluded = set(exclude)
        result: List[ScoredNode] = []
        for node in self._order:
            label = self._labels[node]
            if label in excluded:
                continue
            result.append(
                ScoredNode(node=node, label=label, score=float(self._scores[node]),
                           rank=int(self._ranks[node]))
            )
            if len(result) == k:
                break
        return result

    def top_labels(self, k: int = 10, *, exclude: Iterable[str] = ()) -> List[str]:
        """Return the labels of the ``k`` highest-scoring nodes."""
        return [entry.label for entry in self.top(k, exclude=exclude)]

    def ordered_nodes(self) -> List[int]:
        """Return every node id in ranking order (best first)."""
        return list(self._order)

    def nonzero_count(self) -> int:
        """Return the number of nodes with a strictly positive score."""
        return int(np.count_nonzero(self._scores > 0.0))

    def total(self) -> float:
        """Return the sum of all scores (1.0 for PageRank-family algorithms)."""
        return float(self._scores.sum())

    # ------------------------------------------------------------------ #
    # transformations / serialisation
    # ------------------------------------------------------------------ #
    def normalized(self) -> "Ranking":
        """Return a copy whose scores sum to 1 (no-op for an all-zero ranking)."""
        total = self._scores.sum()
        scores = self._scores / total if total > 0 else self._scores
        return Ranking(
            scores,
            labels=self._labels,
            algorithm=self.algorithm,
            parameters=self.parameters,
            graph_name=self.graph_name,
            reference=self.reference,
        )

    def describe(self) -> str:
        """Return a one-line human-readable description of the run."""
        parts = [self.algorithm or "ranking"]
        if self.reference:
            parts.append(f"reference={self.reference!r}")
        if self.parameters:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.parameters.items()))
            parts.append(f"({rendered})")
        if self.graph_name:
            parts.append(f"on {self.graph_name}")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """Serialise the ranking (provenance + scores) to plain Python types."""
        return {
            "algorithm": self.algorithm,
            "parameters": dict(self.parameters),
            "graph_name": self.graph_name,
            "reference": self.reference,
            "labels": list(self._labels),
            "scores": [float(s) for s in self._scores],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Ranking":
        """Reconstruct a ranking serialised with :meth:`to_dict`."""
        return cls(
            list(payload["scores"]),  # type: ignore[arg-type]
            labels=list(payload["labels"]),  # type: ignore[arg-type]
            algorithm=str(payload.get("algorithm", "")),
            parameters=dict(payload.get("parameters", {})),  # type: ignore[arg-type]
            graph_name=str(payload.get("graph_name", "")),
            reference=payload.get("reference"),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:
        head = ", ".join(
            f"{entry.label}={entry.score:.4g}" for entry in self.top(3)
        )
        return f"<Ranking {self.describe()}: {head}{', ...' if len(self) > 3 else ''}>"
