"""Ranking results and comparison utilities.

Every relevance algorithm in :mod:`repro.algorithms` returns a
:class:`~repro.ranking.result.Ranking`: an immutable mapping from node to
score plus the provenance of the run (algorithm name, parameters, graph).
On top of rankings, this package provides:

* :mod:`~repro.ranking.metrics` — rank-agreement measures (overlap@k,
  Jaccard@k, Kendall's tau, Spearman's rho, rank-biased overlap) used to
  quantify how differently two algorithms order the same graph;
* :mod:`~repro.ranking.comparison` — the side-by-side top-k tables of the
  paper (Tables I, II, III) for both the *algorithm comparison* and the
  *dataset comparison* use cases.
"""

from __future__ import annotations

from .comparison import ComparisonTable, algorithm_comparison, dataset_comparison
from .metrics import (
    jaccard_at_k,
    kendall_tau,
    overlap_at_k,
    precision_at_k,
    rank_biased_overlap,
    spearman_rho,
)
from .result import Ranking, ScoredNode

__all__ = [
    "Ranking",
    "ScoredNode",
    "overlap_at_k",
    "jaccard_at_k",
    "precision_at_k",
    "kendall_tau",
    "spearman_rho",
    "rank_biased_overlap",
    "ComparisonTable",
    "algorithm_comparison",
    "dataset_comparison",
]
