"""Small internal helpers for validating user-supplied arguments.

These helpers centralise the error messages used across the library so that
invalid parameters always produce a consistent, informative
:class:`~repro.exceptions.InvalidParameterError`.
"""

from __future__ import annotations

from typing import Iterable

from .exceptions import InvalidParameterError

__all__ = [
    "require_probability",
    "require_positive_int",
    "require_non_negative_int",
    "require_positive_float",
    "require_in_range",
    "require_one_of",
]


def require_probability(value: float, name: str) -> float:
    """Validate that ``value`` is a float in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not 0.0 <= value <= 1.0:
        raise InvalidParameterError(f"{name} must be in [0, 1], got {value!r}")
    return value


def require_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer strictly greater than zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if value <= 0:
        raise InvalidParameterError(f"{name} must be positive, got {value!r}")
    return value


def require_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer greater than or equal to zero."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidParameterError(f"{name} must be an integer, got {value!r}")
    if value < 0:
        raise InvalidParameterError(f"{name} must be non-negative, got {value!r}")
    return value


def require_positive_float(value: float, name: str) -> float:
    """Validate that ``value`` is a number strictly greater than zero."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if value <= 0.0:
        raise InvalidParameterError(f"{name} must be positive, got {value!r}")
    return value


def require_in_range(value: float, name: str, low: float, high: float) -> float:
    """Validate that ``value`` lies in the closed interval [``low``, ``high``]."""
    try:
        value = float(value)
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(f"{name} must be a number, got {value!r}") from exc
    if not low <= value <= high:
        raise InvalidParameterError(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def require_one_of(value: str, name: str, allowed: Iterable[str]) -> str:
    """Validate that ``value`` is one of the ``allowed`` strings."""
    allowed = tuple(allowed)
    if value not in allowed:
        raise InvalidParameterError(
            f"{name} must be one of {', '.join(repr(a) for a in allowed)}, got {value!r}"
        )
    return value
