"""Personalized PageRank (PPR): PageRank with a query-biased teleport.

Instead of teleporting uniformly, the random surfer always restarts at the
reference node (or at a set of reference nodes).  The stationary distribution
then measures how likely a random walk *from the query* is to be found at
each node, which is the classic notion of personalized relevance the paper
compares CycleRank against.

The shortcoming demonstrated in Tables I and II — globally central nodes
("United States", the Harry Potter series) receiving high scores for any
query — follows directly from this definition: once the walk has wandered a
couple of hops away from the reference, it behaves like a global PageRank
walk and piles mass onto high in-degree nodes.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph, NodeRef
from ..ranking.result import Ranking
from .pagerank import (
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    power_iteration,
    power_iteration_batch,
)

__all__ = [
    "personalized_pagerank",
    "personalized_pagerank_batch",
    "teleport_vector_for",
]

#: Damping factor the paper uses for PPR in Table I (a low value keeps the
#: walk near the reference; Table II uses 0.85).
DEFAULT_PPR_ALPHA = 0.85

ReferenceSpec = Union[NodeRef, Sequence[NodeRef], Mapping[NodeRef, float]]


def teleport_vector_for(graph: DirectedGraph, reference: ReferenceSpec) -> np.ndarray:
    """Build a teleport distribution concentrated on the reference node(s).

    ``reference`` may be a single node (id or label), a sequence of nodes
    (uniform mass over them), or a mapping ``node -> weight``.
    """
    n = graph.number_of_nodes()
    teleport = np.zeros(n, dtype=np.float64)
    if isinstance(reference, Mapping):
        for ref, weight in reference.items():
            if weight < 0:
                raise InvalidParameterError(
                    f"teleport weight for {ref!r} must be non-negative, got {weight}"
                )
            teleport[graph.resolve(ref)] += float(weight)
    elif isinstance(reference, (str, int)) and not isinstance(reference, bool):
        teleport[graph.resolve(reference)] = 1.0
    elif isinstance(reference, Iterable):
        references = list(reference)
        if not references:
            raise InvalidParameterError("reference set must not be empty")
        for ref in references:
            teleport[graph.resolve(ref)] += 1.0
    else:
        raise InvalidParameterError(f"cannot interpret reference {reference!r}")
    if teleport.sum() <= 0:
        raise InvalidParameterError("teleport distribution has no positive mass")
    return teleport / teleport.sum()


def personalized_pagerank(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute Personalized PageRank with respect to ``reference``.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    reference:
        The query node (id or label), a set of query nodes, or a weighted
        teleport mapping.
    alpha:
        Damping factor.  The paper's Table I uses 0.3 (a short-range walk),
        Table II uses 0.85.
    tol, max_iter:
        Power-iteration convergence controls.

    Returns
    -------
    Ranking
        Scores summing to 1, with ``reference`` recorded in the provenance
        (as a label when a single reference node is given).
    """
    teleport = teleport_vector_for(graph, reference)
    csr = graph.to_csr()
    scores, iterations = power_iteration(
        csr, alpha=alpha, teleport=teleport, tol=tol, max_iter=max_iter
    )
    reference_label: Optional[str] = None
    if isinstance(reference, (str, int)) and not isinstance(reference, bool):
        reference_label = graph.label_of(graph.resolve(reference))
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="Personalized PageRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
        reference=reference_label,
    )


def _reference_label_for(graph: DirectedGraph, reference: ReferenceSpec) -> Optional[str]:
    """Return the display label of a single-node reference, else ``None``."""
    if isinstance(reference, (str, int)) and not isinstance(reference, bool):
        return graph.label_of(graph.resolve(reference))
    return None


def personalized_pagerank_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> List[Ranking]:
    """Compute Personalized PageRank for many references in one pass.

    The CSR form, the transition matrix and the dangling mask are built once
    and shared by every reference; the power iteration advances all teleport
    vectors simultaneously as a dense ``n x k`` matrix (see
    :func:`~repro.algorithms.pagerank.power_iteration_batch`).  The
    alpha-folded transposed transition matrix comes from the graph's
    :class:`~repro.graph.compiled.CompiledGraph` artifact, so when the
    platform hands a cached artifact to repeated groups with the same alpha
    the rebuild is skipped entirely.  Results match per-reference
    :func:`personalized_pagerank` calls up to the convergence tolerance.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    references:
        One reference spec per query (node, node set, or weighted mapping).
    alpha, tol, max_iter:
        As in :func:`personalized_pagerank`, shared by the whole batch.

    Returns
    -------
    list of Ranking
        One ranking per reference, in input order.
    """
    references = list(references)
    if not references:
        return []
    teleports = np.column_stack(
        [teleport_vector_for(graph, reference) for reference in references]
    )
    compiled = compiled_of(graph)
    scores, iterations = power_iteration_batch(
        compiled.to_csr(),
        alpha=alpha,
        teleports=teleports,
        tol=tol,
        max_iter=max_iter,
        transition_t=compiled.folded_transition_transpose(alpha),
    )
    # One shared label array for the whole batch (Ranking reuses it as-is).
    labels = np.asarray(graph.labels(), dtype=str)
    return [
        Ranking(
            scores[:, column],
            labels=labels,
            algorithm="Personalized PageRank",
            parameters={
                "alpha": alpha,
                "tol": tol,
                "max_iter": max_iter,
                "iterations": iterations,
            },
            graph_name=graph.name,
            reference=_reference_label_for(graph, reference),
        )
        for column, reference in enumerate(references)
    ]
