"""Personalized PageRank (PPR): PageRank with a query-biased teleport.

Instead of teleporting uniformly, the random surfer always restarts at the
reference node (or at a set of reference nodes).  The stationary distribution
then measures how likely a random walk *from the query* is to be found at
each node, which is the classic notion of personalized relevance the paper
compares CycleRank against.

The shortcoming demonstrated in Tables I and II — globally central nodes
("United States", the Harry Potter series) receiving high scores for any
query — follows directly from this definition: once the walk has wandered a
couple of hops away from the reference, it behaves like a global PageRank
walk and piles mass onto high in-degree nodes.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Union

import numpy as np

from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph, NodeRef
from ..ranking.result import Ranking
from .pagerank import DEFAULT_MAX_ITER, DEFAULT_TOL, power_iteration

__all__ = ["personalized_pagerank", "teleport_vector_for"]

#: Damping factor the paper uses for PPR in Table I (a low value keeps the
#: walk near the reference; Table II uses 0.85).
DEFAULT_PPR_ALPHA = 0.85

ReferenceSpec = Union[NodeRef, Sequence[NodeRef], Mapping[NodeRef, float]]


def teleport_vector_for(graph: DirectedGraph, reference: ReferenceSpec) -> np.ndarray:
    """Build a teleport distribution concentrated on the reference node(s).

    ``reference`` may be a single node (id or label), a sequence of nodes
    (uniform mass over them), or a mapping ``node -> weight``.
    """
    n = graph.number_of_nodes()
    teleport = np.zeros(n, dtype=np.float64)
    if isinstance(reference, Mapping):
        for ref, weight in reference.items():
            if weight < 0:
                raise InvalidParameterError(
                    f"teleport weight for {ref!r} must be non-negative, got {weight}"
                )
            teleport[graph.resolve(ref)] += float(weight)
    elif isinstance(reference, (str, int)) and not isinstance(reference, bool):
        teleport[graph.resolve(reference)] = 1.0
    elif isinstance(reference, Iterable):
        references = list(reference)
        if not references:
            raise InvalidParameterError("reference set must not be empty")
        for ref in references:
            teleport[graph.resolve(ref)] += 1.0
    else:
        raise InvalidParameterError(f"cannot interpret reference {reference!r}")
    if teleport.sum() <= 0:
        raise InvalidParameterError("teleport distribution has no positive mass")
    return teleport / teleport.sum()


def personalized_pagerank(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute Personalized PageRank with respect to ``reference``.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    reference:
        The query node (id or label), a set of query nodes, or a weighted
        teleport mapping.
    alpha:
        Damping factor.  The paper's Table I uses 0.3 (a short-range walk),
        Table II uses 0.85.
    tol, max_iter:
        Power-iteration convergence controls.

    Returns
    -------
    Ranking
        Scores summing to 1, with ``reference`` recorded in the provenance
        (as a label when a single reference node is given).
    """
    teleport = teleport_vector_for(graph, reference)
    csr = graph.to_csr()
    scores, iterations = power_iteration(
        csr, alpha=alpha, teleport=teleport, tol=tol, max_iter=max_iter
    )
    reference_label: Optional[str] = None
    if isinstance(reference, (str, int)) and not isinstance(reference, bool):
        reference_label = graph.label_of(graph.resolve(reference))
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="Personalized PageRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
        reference=reference_label,
    )
