"""Approximate Personalized PageRank by Monte-Carlo random walks with restart.

The estimator simulates ``num_walks`` independent random walks starting at
the reference node.  At each step the walk stops with probability
``1 - alpha`` (the restart event) and otherwise moves to a uniformly random
successor; walks stranded at a dangling node also stop.  The fraction of
walk *visits* each node receives converges to its Personalized PageRank
score as the number of walks grows, with an error of order
``O(1 / sqrt(num_walks))`` on each coordinate.

This estimator is the cheapest way to answer "roughly which nodes are most
relevant to the query?" and is used in the ablation benchmark comparing
precision@k versus the exact power-iteration solver.
"""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np

from .._validation import require_positive_int, require_probability
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .personalized_pagerank import (
    DEFAULT_PPR_ALPHA,
    ReferenceSpec,
    _reference_label_for,
    teleport_vector_for,
)

__all__ = ["ppr_montecarlo", "ppr_montecarlo_batch"]

DEFAULT_NUM_WALKS = 10_000
DEFAULT_MAX_WALK_LENGTH = 100


def ppr_montecarlo(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    num_walks: int = DEFAULT_NUM_WALKS,
    max_walk_length: int = DEFAULT_MAX_WALK_LENGTH,
    seed: int = 0,
) -> Ranking:
    """Estimate Personalized PageRank by simulating random walks with restart.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    reference:
        The query node (id or label), node set, or weighted teleport mapping.
    alpha:
        Damping factor (probability of continuing the walk at each step).
    num_walks:
        Number of independent walks; more walks mean lower variance.
    max_walk_length:
        Hard cap on individual walk length (walks are geometric with mean
        ``1 / (1 - alpha)``, so the cap is rarely hit for reasonable alpha).
    seed:
        Seed for the pseudo-random generator; runs are deterministic per seed.

    Returns
    -------
    Ranking
        Estimated PPR scores normalised to sum to 1.
    """
    alpha = require_probability(alpha, "alpha")
    require_positive_int(num_walks, "num_walks")
    require_positive_int(max_walk_length, "max_walk_length")

    teleport = teleport_vector_for(graph, reference)
    successor_lists = graph.successor_lists()
    visits = _walk_visits(
        teleport,
        successor_lists,
        alpha=alpha,
        num_walks=num_walks,
        max_walk_length=max_walk_length,
        seed=seed,
    )
    return Ranking(
        visits,
        labels=graph.labels(),
        algorithm="PPR (Monte Carlo)",
        parameters={
            "alpha": alpha,
            "num_walks": num_walks,
            "max_walk_length": max_walk_length,
            "seed": seed,
        },
        graph_name=graph.name,
        reference=_reference_label_for(graph, reference),
    )


def _walk_visits(
    teleport: np.ndarray,
    successor_lists,
    *,
    alpha: float,
    num_walks: int,
    max_walk_length: int,
    seed: int,
) -> np.ndarray:
    """Simulate the restart walks for one teleport vector.

    Shared by the single-query and the batched entry points; both seed a
    fresh generator per reference, so the estimates are bit-identical.
    """
    start_nodes = np.nonzero(teleport)[0]
    start_weights = teleport[start_nodes]
    rng = random.Random(seed)

    visits = np.zeros(teleport.size, dtype=np.float64)
    for _ in range(num_walks):
        if start_nodes.size == 1:
            node = int(start_nodes[0])
        else:
            node = int(rng.choices(start_nodes.tolist(), weights=start_weights.tolist())[0])
        visits[node] += 1.0
        for _ in range(max_walk_length):
            if rng.random() >= alpha:
                break
            successors = successor_lists[node]
            if not successors:
                break
            node = successors[rng.randrange(len(successors))]
            visits[node] += 1.0

    total = visits.sum()
    if total > 0:
        visits = visits / total
    return visits


def ppr_montecarlo_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    num_walks: int = DEFAULT_NUM_WALKS,
    max_walk_length: int = DEFAULT_MAX_WALK_LENGTH,
    seed: int = 0,
) -> List[Ranking]:
    """Estimate Personalized PageRank by random walks for many references.

    The successor lists — the expensive graph-shaped precomputation — are
    built once and shared by every reference; each reference then simulates
    its own walks with a generator seeded identically to the single-query
    entry point, so results match :func:`ppr_montecarlo` exactly.
    """
    references = list(references)
    if not references:
        return []
    alpha = require_probability(alpha, "alpha")
    require_positive_int(num_walks, "num_walks")
    require_positive_int(max_walk_length, "max_walk_length")

    successor_lists = graph.successor_lists()
    labels = np.asarray(graph.labels(), dtype=str)
    results = []
    for reference in references:
        teleport = teleport_vector_for(graph, reference)
        visits = _walk_visits(
            teleport,
            successor_lists,
            alpha=alpha,
            num_walks=num_walks,
            max_walk_length=max_walk_length,
            seed=seed,
        )
        results.append(
            Ranking(
                visits,
                labels=labels,
                algorithm="PPR (Monte Carlo)",
                parameters={
                    "alpha": alpha,
                    "num_walks": num_walks,
                    "max_walk_length": max_walk_length,
                    "seed": seed,
                },
                graph_name=graph.name,
                reference=_reference_label_for(graph, reference),
            )
        )
    return results
