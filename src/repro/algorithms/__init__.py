"""Relevance-ranking algorithms for directed graphs.

The seven algorithms showcased by the paper's demo:

=======================  ==============================  ====================
Registry name            Function                        Personalized?
=======================  ==============================  ====================
``pagerank``             :func:`pagerank`                no
``personalized-pagerank`` :func:`personalized_pagerank`  yes (reference node)
``cheirank``             :func:`cheirank`                no
``personalized-cheirank`` :func:`personalized_cheirank`  yes
``2drank``               :func:`twodrank`                no
``personalized-2drank``  :func:`personalized_twodrank`   yes
``cyclerank``            :func:`cyclerank`               yes
=======================  ==============================  ====================

plus two approximate Personalized PageRank solvers used as extensions and in
the ablation benchmarks: the forward-push local algorithm
(:func:`ppr_push`) and the Monte-Carlo random-walk estimator
(:func:`ppr_montecarlo`).

Every function takes a :class:`~repro.graph.digraph.DirectedGraph` and
returns a :class:`~repro.ranking.result.Ranking`.  The class-based interface
(:class:`~repro.algorithms.base.Algorithm` plus the registry in
:mod:`~repro.algorithms.registry`) is what the platform uses to look up an
algorithm by name from task parameters — and what makes it "easy to add new
algorithms", as the paper puts it.
"""

from __future__ import annotations

from .base import Algorithm, AlgorithmSpec, ParameterSpec
from .cheirank import cheirank, personalized_cheirank, personalized_cheirank_batch
from .cycle_enumeration import (
    CycleSearchEngine,
    count_cycles_by_length,
    enumerate_cycles_through,
    enumerate_cycles_through_dict,
    simple_cycles_up_to_length,
)
from .cyclerank import cyclerank, cyclerank_batch, CycleRankStatistics
from .hits import hits, personalized_hits, personalized_hits_batch
from .katz import katz_centrality, personalized_katz, personalized_katz_batch
from .pagerank import pagerank, power_iteration, power_iteration_batch
from .personalized_pagerank import personalized_pagerank, personalized_pagerank_batch
from .ppr_montecarlo import ppr_montecarlo, ppr_montecarlo_batch
from .ppr_push import ppr_push, ppr_push_batch
from .registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
    run_algorithm,
    run_batch,
)
from .twodrank import (
    personalized_twodrank,
    personalized_twodrank_batch,
    twodrank,
    two_dimensional_order,
)

__all__ = [
    # functional interface
    "pagerank",
    "personalized_pagerank",
    "personalized_pagerank_batch",
    "cheirank",
    "personalized_cheirank",
    "personalized_cheirank_batch",
    "twodrank",
    "personalized_twodrank",
    "personalized_twodrank_batch",
    "two_dimensional_order",
    "cyclerank",
    "cyclerank_batch",
    "CycleRankStatistics",
    "ppr_push",
    "ppr_push_batch",
    "ppr_montecarlo",
    "ppr_montecarlo_batch",
    "hits",
    "personalized_hits",
    "personalized_hits_batch",
    "katz_centrality",
    "personalized_katz",
    "personalized_katz_batch",
    "power_iteration",
    "power_iteration_batch",
    # cycle enumeration
    "CycleSearchEngine",
    "enumerate_cycles_through",
    "enumerate_cycles_through_dict",
    "count_cycles_by_length",
    "simple_cycles_up_to_length",
    # class-based interface / registry
    "Algorithm",
    "AlgorithmSpec",
    "ParameterSpec",
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "run_algorithm",
    "run_batch",
]
