"""Bounded-length simple-cycle enumeration through a reference node.

CycleRank (Equation 1 of the paper) needs, for a reference node ``r`` and a
maximum length ``K``, every *simple* cycle of length 2..K that passes through
``r``.  The enumeration is a depth-first search rooted at ``r`` with the
pruning borrowed from the original CycleRank article: a reverse breadth-first
search from ``r`` (bounded by ``K - 1``) precomputes ``dist_to_r[v]``, the
length of the shortest path from ``v`` back to ``r``, and a partial path of
length ``d`` ending at ``v`` is cut whenever ``d + dist_to_r[v] > K``.  (The
article's separate reachability pruning is subsumed: a node that cannot
return to ``r`` within ``K - 1`` hops has no finite ``dist_to_r`` and every
branch into it is cut immediately, and the DFS itself never walks further
from ``r`` than the distance bound allows.)

This module is CSR-native: the search runs over flat ``indptr``/``indices``
adjacency arrays (plus their transpose for the reverse BFS) held as plain
Python lists, with preallocated distance/on-path/alive arrays — no per-node
dict lookups, set copies or ``sorted(...)`` calls on the hot path.  The
reusable search state lives in :class:`CycleSearchEngine`, so a batch of
references against one graph (or repeated queries against a cached
:class:`~repro.graph.compiled.CompiledGraph` artifact) pays the conversion
once; between references only the entries actually touched are reset, keeping
the per-reference cost proportional to the explored neighbourhood.

The enumeration is exhaustive and exact: every simple cycle through ``r`` of
length at most ``K`` is produced exactly once, as a tuple of node ids
beginning with ``r`` (the closing edge back to ``r`` is implicit), in the
same deterministic order as the original dictionary-based implementation
(which is kept as :func:`enumerate_cycles_through_dict`, the reference the
property tests and benchmarks compare against).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .._validation import require_positive_int
from ..exceptions import InvalidParameterError
from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph, NodeRef
from ..graph.traversal import shortest_path_lengths

__all__ = [
    "CycleSearchEngine",
    "enumerate_cycles_through",
    "enumerate_cycles_through_dict",
    "count_cycles_by_length",
    "simple_cycles_up_to_length",
]


def _validate_max_length(max_length: int) -> None:
    require_positive_int(max_length, "max_length")
    if max_length < 2:
        raise InvalidParameterError(f"max_length must be >= 2, got {max_length}")


class CycleSearchEngine:
    """Reusable CSR search state for rooted bounded-length cycle enumeration.

    One engine serves many references against the same graph: the adjacency
    lists are shared (and typically come precompiled from a
    :class:`~repro.graph.compiled.CompiledGraph`), while the per-reference
    BFS/DFS scratch arrays are preallocated once and reset incrementally —
    only the entries a search actually touched are cleared afterwards.

    An engine is *not* reentrant: consume (or close) the generator returned
    by :meth:`cycles_from` before starting the next search, and do not share
    one engine between threads.  :meth:`eliminate` supports the classic
    vertex-elimination scheme used by :func:`simple_cycles_up_to_length`.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_t_indptr",
        "_t_indices",
        "_num_nodes",
        "_dist_to_root",
        "_dist_from_root",
        "_touched_to",
        "_touched_from",
        "_candidate",
        "_on_path",
        "_alive",
    )

    def __init__(
        self,
        indptr: Sequence[int],
        indices: Sequence[int],
        t_indptr: Sequence[int],
        t_indices: Sequence[int],
    ) -> None:
        self._indptr = indptr
        self._indices = indices
        self._t_indptr = t_indptr
        self._t_indices = t_indices
        self._num_nodes = len(indptr) - 1
        self._dist_to_root = [-1] * self._num_nodes
        self._dist_from_root = [-1] * self._num_nodes
        self._touched_to: List[int] = []
        self._touched_from: List[int] = []
        self._candidate = bytearray(self._num_nodes)
        self._on_path = bytearray(self._num_nodes)
        self._alive = bytearray(b"\x01" * self._num_nodes)

    @classmethod
    def for_graph(cls, graph) -> "CycleSearchEngine":
        """Build an engine for a :class:`DirectedGraph` or compiled artifact."""
        return cls(*compiled_of(graph).adjacency_lists())

    def eliminate(self, node: int) -> None:
        """Permanently remove ``node`` from every future search."""
        self._alive[node] = 0

    def _bounded_bfs(
        self,
        root: int,
        cutoff: int,
        indptr: Sequence[int],
        indices: Sequence[int],
        dist: List[int],
        touched: List[int],
    ) -> None:
        """Frontier-array BFS: fill ``dist`` for nodes within ``cutoff`` hops.

        Every node assigned a distance is recorded in ``touched`` so the
        array can be reset in time proportional to the visited
        neighbourhood, not the graph.
        """
        alive = self._alive
        dist[root] = 0
        touched.append(root)
        frontier = [root]
        depth = 0
        while frontier and depth < cutoff:
            depth += 1
            next_frontier = []
            for node in frontier:
                for neighbour in indices[indptr[node] : indptr[node + 1]]:
                    if dist[neighbour] < 0 and alive[neighbour]:
                        dist[neighbour] = depth
                        touched.append(neighbour)
                        next_frontier.append(neighbour)
            frontier = next_frontier

    def cycles_from(self, root: int, max_length: int) -> Iterator[Tuple[int, ...]]:
        """Yield every simple cycle of length ``2..max_length`` through ``root``.

        Cycles are tuples of node ids starting with ``root``; the closing
        edge back to ``root`` is implicit.  Nodes removed with
        :meth:`eliminate` participate in no cycle.
        """
        if not self._alive[root]:
            return
        indptr = self._indptr
        indices = self._indices
        dist_to_root = self._dist_to_root
        dist_from_root = self._dist_from_root
        candidate = self._candidate
        on_path = self._on_path
        path: List[int] = []
        try:
            # Distance pruning data: how far every nearby node is from the
            # root (forward BFS) and how fast it can return to it (BFS on the
            # transpose), both bounded by K - 1.
            self._bounded_bfs(root, max_length - 1, self._t_indptr, self._t_indices,
                              dist_to_root, self._touched_to)
            self._bounded_bfs(root, max_length - 1, indptr, indices,
                              dist_from_root, self._touched_from)
            # Only nodes on some short enough round trip can participate in
            # a cycle; mark them and keep, per candidate, the successors that
            # are themselves candidates — the only edges the DFS ever walks.
            candidates: List[int] = []
            for node in self._touched_from:
                shortest_return = dist_to_root[node]
                if shortest_return >= 0 and dist_from_root[node] + shortest_return <= max_length:
                    candidate[node] = 1
                    candidates.append(node)
            rows: Dict[int, List[int]] = {}
            for node in candidates:
                rows[node] = [
                    neighbour
                    for neighbour in indices[indptr[node] : indptr[node + 1]]
                    if candidate[neighbour]
                ]
            # Iterative DFS; each stack frame is (node, iterator over its
            # filtered successors), resuming in O(1) after every descent.
            path.append(root)
            on_path[root] = 1
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(rows.get(root, ())))]
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for neighbour in neighbours:
                    if neighbour == root:
                        if len(path) >= 2:
                            yield tuple(path)
                        continue
                    if on_path[neighbour]:
                        continue
                    # Appending `neighbour` makes the partial path use
                    # len(path) edges; the cheapest way to close the cycle
                    # from there adds dist_to_root[neighbour] more.  Prune if
                    # even that exceeds K.
                    if len(path) + dist_to_root[neighbour] > max_length:
                        continue
                    path.append(neighbour)
                    on_path[neighbour] = 1
                    stack.append((neighbour, iter(rows[neighbour])))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    on_path[path.pop()] = 0
        finally:
            # Reset only what this search touched, whether it ran to
            # completion or the caller closed the generator early.
            for node in path:
                on_path[node] = 0
            for node in self._touched_from:
                dist_from_root[node] = -1
                candidate[node] = 0
            self._touched_from.clear()
            for node in self._touched_to:
                dist_to_root[node] = -1
            self._touched_to.clear()


def _has_compiled_csr(graph) -> bool:
    """Return ``True`` if ``graph`` is a compiled artifact with its CSR built."""
    return getattr(graph, "csr_ready", False)


def enumerate_cycles_through(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Iterator[Tuple[int, ...]]:
    """Yield every simple cycle of length ``2..max_length`` through ``reference``.

    Each cycle is yielded as a tuple of node ids starting with the reference
    node; its length equals ``len(cycle)`` (the closing edge back to the
    reference is implicit, not repeated).

    A :class:`~repro.graph.compiled.CompiledGraph` whose CSR is already
    built searches through the :class:`CycleSearchEngine` over the shared
    arrays.  A bare graph (or a cold artifact) takes the dictionary walk
    instead: one rooted query touches only the reference's ``K``-hop
    neighbourhood, and paying an O(n + m) conversion for an O(local) answer
    would be a net loss — the engine earns its conversion when the platform
    (or a batch) reuses it across many references.  Both paths produce the
    identical cycle sequence.

    Parameters
    ----------
    graph:
        The directed graph to search (a
        :class:`~repro.graph.compiled.CompiledGraph` artifact is accepted
        too and reuses its compiled adjacency).
    reference:
        The reference node, by id or label.
    max_length:
        Maximum cycle length ``K`` (must be at least 2).

    Yields
    ------
    tuple of int
        Node ids along the cycle, reference first.
    """
    if _has_compiled_csr(graph):
        _validate_max_length(max_length)
        root = graph.resolve(reference)
        engine = CycleSearchEngine.for_graph(graph)
        yield from engine.cycles_from(root, max_length)
    else:
        yield from enumerate_cycles_through_dict(graph, reference, max_length)


def enumerate_cycles_through_dict(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Iterator[Tuple[int, ...]]:
    """Dictionary-based reference implementation of :func:`enumerate_cycles_through`.

    This is the original (pre-CSR) enumeration, kept verbatim as the ground
    truth the property tests and the hot-path benchmark compare the
    CSR-native engine against.  Semantics and yield order are identical; only
    the data layout differs (per-node dict/set lookups instead of flat
    arrays).
    """
    _validate_max_length(max_length)
    root = graph.resolve(reference)

    # Distance from each node back to the root, following edges forward
    # (i.e. length of the shortest path v -> ... -> root).
    dist_to_root = shortest_path_lengths(graph, root, reverse=True, cutoff=max_length - 1)
    # Distance from the root to each node.
    dist_from_root = shortest_path_lengths(graph, root, cutoff=max_length - 1)

    # Only nodes on some short enough round trip can participate in a cycle.
    candidates: Set[int] = {
        node
        for node in dist_from_root
        if node in dist_to_root and dist_from_root[node] + dist_to_root[node] <= max_length
    }
    if root not in candidates:
        return

    successors: Dict[int, Sequence[int]] = {}
    for node in candidates:
        successors[node] = tuple(
            sorted(v for v in graph.successors(node) if v in candidates or v == root)
        )

    path: List[int] = [root]
    on_path: Set[int] = {root}

    # Iterative DFS; each stack frame is (node, iterator over its successors).
    stack: List[Tuple[int, Iterator[int]]] = [(root, iter(successors.get(root, ())))]
    while stack:
        node, neighbours = stack[-1]
        advanced = False
        for neighbour in neighbours:
            if neighbour == root:
                if len(path) >= 2:
                    yield tuple(path)
                continue
            if neighbour in on_path:
                continue
            edges_after_append = len(path)
            shortest_return = dist_to_root.get(neighbour, max_length + 1)
            if edges_after_append + shortest_return > max_length:
                continue
            path.append(neighbour)
            on_path.add(neighbour)
            stack.append((neighbour, iter(successors.get(neighbour, ()))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if path:
                removed = path.pop()
                on_path.discard(removed)


def count_cycles_by_length(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Dict[int, int]:
    """Return ``{cycle length: number of cycles}`` through ``reference``."""
    counts: Dict[int, int] = {}
    for cycle in enumerate_cycles_through(graph, reference, max_length):
        counts[len(cycle)] = counts.get(len(cycle), 0) + 1
    return dict(sorted(counts.items()))


def simple_cycles_up_to_length(graph: DirectedGraph, max_length: int) -> List[Tuple[int, ...]]:
    """Return every simple cycle of length ``<= max_length`` in the whole graph.

    Each cycle is reported once, rotated so its smallest node id comes first:
    cycles through node ``0`` are enumerated, node ``0`` is eliminated,
    cycles through node ``1`` in the remaining graph are enumerated, and so
    on — the classic vertex-elimination scheme.  Elimination is an O(1) flip
    of the engine's alive mask (the previous implementation rebuilt edge sets
    by removing every edge of the pivot from a full graph copy, which was
    quadratic on dense graphs).
    """
    _validate_max_length(max_length)
    engine = CycleSearchEngine.for_graph(graph)
    cycles: List[Tuple[int, ...]] = []
    for pivot in graph.nodes():
        # Every smaller node is already eliminated, so each cycle found here
        # has the pivot as its minimum member and is reported exactly once.
        cycles.extend(engine.cycles_from(pivot, max_length))
        engine.eliminate(pivot)
    return cycles
