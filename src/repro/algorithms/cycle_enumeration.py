"""Bounded-length simple-cycle enumeration through a reference node.

CycleRank (Equation 1 of the paper) needs, for a reference node ``r`` and a
maximum length ``K``, every *simple* cycle of length 2..K that passes through
``r``.  The enumeration is a depth-first search rooted at ``r`` with the
pruning borrowed from the original CycleRank article: a reverse breadth-first
search from ``r`` (bounded by ``K - 1``) precomputes ``dist_to_r[v]``, the
length of the shortest path from ``v`` back to ``r``, and a partial path of
length ``d`` ending at ``v`` is cut whenever ``d + dist_to_r[v] > K``.  (The
article's separate reachability pruning is subsumed: a node that cannot
return to ``r`` within ``K - 1`` hops has no finite ``dist_to_r`` and every
branch into it is cut immediately, and the DFS itself never walks further
from ``r`` than the distance bound allows.)

This module is CSR-native: the search runs over flat ``indptr``/``indices``
adjacency arrays (plus their transpose for the reverse BFS) held as plain
Python lists, with preallocated distance/on-path/alive arrays — no per-node
dict lookups, set copies or ``sorted(...)`` calls on the hot path.  The
reusable search state lives in :class:`CycleSearchEngine`, so a batch of
references against one graph (or repeated queries against a cached
:class:`~repro.graph.compiled.CompiledGraph` artifact) pays the conversion
once; between references only the entries actually touched are reset, keeping
the per-reference cost proportional to the explored neighbourhood.

The enumeration is exhaustive and exact: every simple cycle through ``r`` of
length at most ``K`` is produced exactly once, as a tuple of node ids
beginning with ``r`` (the closing edge back to ``r`` is implicit), in the
same deterministic order as the original dictionary-based implementation
(which is kept as :func:`enumerate_cycles_through_dict`, the reference the
property tests and benchmarks compare against).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._validation import require_positive_int
from ..exceptions import InvalidParameterError
from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph, NodeRef
from ..graph.traversal import shortest_path_lengths

__all__ = [
    "CycleSearchEngine",
    "enumerate_cycles_through",
    "enumerate_cycles_through_dict",
    "count_cycles_by_length",
    "simple_cycles_up_to_length",
]


def _validate_max_length(max_length: int) -> None:
    require_positive_int(max_length, "max_length")
    if max_length < 2:
        raise InvalidParameterError(f"max_length must be >= 2, got {max_length}")


#: Below this frontier size the per-node Python walk beats the vectorised
#: gather (array construction overhead dominates tiny levels); above it the
#: BFS level expands as one concatenate-and-mask sweep over NumPy CSR arrays.
FRONTIER_GATHER_MIN = 16


class CycleSearchEngine:
    """Reusable CSR search state for rooted bounded-length cycle enumeration.

    One engine serves many references against the same graph: the adjacency
    lists are shared (and typically come precompiled from a
    :class:`~repro.graph.compiled.CompiledGraph`), while the per-reference
    BFS/DFS scratch arrays are preallocated once and reset incrementally —
    only the entries a search actually touched are cleared afterwards.

    An engine is *not* reentrant: consume (or close) the generator returned
    by :meth:`cycles_from` before starting the next search, and do not share
    one engine between threads.  :meth:`eliminate` supports the classic
    vertex-elimination scheme used by :func:`simple_cycles_up_to_length`.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_t_indptr",
        "_t_indices",
        "_np_indptr",
        "_np_indices",
        "_np_t_indptr",
        "_np_t_indices",
        "_np_alive",
        "_num_nodes",
        "_dist_to",
        "_dist_from",
        "_dist_to_py",
        "_touched_to",
        "_touched_from",
        "_candidate",
        "_on_path",
    )

    def __init__(
        self,
        indptr: Sequence[int],
        indices: Sequence[int],
        t_indptr: Sequence[int],
        t_indices: Sequence[int],
        *,
        csr_arrays: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = None,
    ) -> None:
        # Flat Python lists for the DFS hot loop and the small-frontier BFS
        # walk (list indexing beats NumPy scalar access there) ...
        self._indptr = indptr
        self._indices = indices
        self._t_indptr = t_indptr
        self._t_indices = t_indices
        self._num_nodes = len(indptr) - 1
        # ... and NumPy views of the same adjacency for the frontier-gather
        # BFS.  A compiled artifact shares its CSR arrays directly; a
        # hand-built engine converts the lists once here.
        if csr_arrays is None:
            csr_arrays = (
                np.asarray(indptr, dtype=np.int64),
                np.asarray(indices, dtype=np.int64),
                np.asarray(t_indptr, dtype=np.int64),
                np.asarray(t_indices, dtype=np.int64),
            )
        self._np_indptr, self._np_indices, self._np_t_indptr, self._np_t_indices = csr_arrays
        self._np_alive = np.ones(self._num_nodes, dtype=bool)
        self._dist_to = np.full(self._num_nodes, -1, dtype=np.int64)
        self._dist_from = np.full(self._num_nodes, -1, dtype=np.int64)
        #: Python-list mirror of ``_dist_to``, filled only for the candidate
        #: nodes of the current search — the DFS pruning reads it once per
        #: visited edge, where list indexing matters.
        self._dist_to_py: List[int] = [-1] * self._num_nodes
        #: Per-level node arrays each BFS touched, for O(touched) resets.
        self._touched_to: List[np.ndarray] = []
        self._touched_from: List[np.ndarray] = []
        self._candidate = bytearray(self._num_nodes)
        self._on_path = bytearray(self._num_nodes)

    @classmethod
    def for_graph(cls, graph) -> "CycleSearchEngine":
        """Build an engine for a :class:`DirectedGraph` or compiled artifact."""
        compiled = compiled_of(graph)
        csr = compiled.to_csr()
        transpose = compiled.transpose_csr()
        lists = compiled.adjacency_lists()
        return cls(
            *lists,
            csr_arrays=(csr.indptr, csr.indices, transpose.indptr, transpose.indices),
        )

    def eliminate(self, node: int) -> None:
        """Permanently remove ``node`` from every future search."""
        self._np_alive[node] = False

    def _bounded_bfs(
        self,
        root: int,
        cutoff: int,
        indptr: Sequence[int],
        indices: Sequence[int],
        np_indptr: np.ndarray,
        np_indices: np.ndarray,
        dist: np.ndarray,
        touched_levels: List[np.ndarray],
    ) -> None:
        """Frontier-gather BFS: fill ``dist`` for alive nodes within ``cutoff`` hops.

        Each level is appended to ``touched_levels`` so the distance array
        resets in time proportional to the visited neighbourhood, not the
        graph.  A level below :data:`FRONTIER_GATHER_MIN` nodes expands with
        a per-node walk (array overhead dominates tiny frontiers); from there
        up the whole next level is produced by one NumPy sweep — the
        frontier's adjacency rows are concatenated with a repeat/arange
        gather, masked against the alive and distance arrays, and
        deduplicated with ``np.unique``.  That sweep is what lifts the
        ``K >= 4`` prunings over large neighbourhoods the same way the
        closed-form counting kernel lifted ``K <= 3``.
        """
        np_alive = self._np_alive
        dist[root] = 0
        frontier = np.array([root], dtype=np.int64)
        touched_levels.append(frontier)
        depth = 0
        while frontier.size and depth < cutoff:
            depth += 1
            if frontier.size < FRONTIER_GATHER_MIN:
                # NumPy scalar access here is slower per edge than the old
                # pure-list walk, a measured sub-millisecond cost on tiny
                # graphs that buys the shared ndarray state the gather and
                # the vectorised candidate selection need at scale.
                level: List[int] = []
                for node in frontier.tolist():
                    for neighbour in indices[indptr[node] : indptr[node + 1]]:
                        if dist[neighbour] < 0 and np_alive[neighbour]:
                            dist[neighbour] = depth
                            level.append(neighbour)
                if not level:
                    return
                fresh = np.asarray(level, dtype=np.int64)
            else:
                starts = np_indptr[frontier]
                counts = np_indptr[frontier + 1] - starts
                total = int(counts.sum())
                if total == 0:
                    return
                # Concatenate the frontier's adjacency rows without a
                # Python-level loop: for each frontier node, generate its
                # [start, start + count) index range.
                ends = np.cumsum(counts)
                gather = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - (ends - counts), counts
                )
                neighbours = np_indices[gather]
                fresh = neighbours[np_alive[neighbours] & (dist[neighbours] < 0)]
                if fresh.size == 0:
                    return
                fresh = np.unique(fresh)
                dist[fresh] = depth
            touched_levels.append(fresh)
            frontier = fresh

    def cycles_from(self, root: int, max_length: int) -> Iterator[Tuple[int, ...]]:
        """Yield every simple cycle of length ``2..max_length`` through ``root``.

        Cycles are tuples of node ids starting with ``root``; the closing
        edge back to ``root`` is implicit.  Nodes removed with
        :meth:`eliminate` participate in no cycle.
        """
        if not self._np_alive[root]:
            return
        indptr = self._indptr
        indices = self._indices
        dist_to = self._dist_to
        dist_from = self._dist_from
        dist_to_py = self._dist_to_py
        candidate = self._candidate
        on_path = self._on_path
        path: List[int] = []
        candidates: List[int] = []
        try:
            # Distance pruning data: how far every nearby node is from the
            # root (forward BFS) and how fast it can return to it (BFS on the
            # transpose), both bounded by K - 1.
            self._bounded_bfs(root, max_length - 1, self._t_indptr, self._t_indices,
                              self._np_t_indptr, self._np_t_indices,
                              dist_to, self._touched_to)
            self._bounded_bfs(root, max_length - 1, indptr, indices,
                              self._np_indptr, self._np_indices,
                              dist_from, self._touched_from)
            # Only nodes on some short enough round trip can participate in a
            # cycle; select them in one vectorised sweep over everything the
            # forward BFS reached (the old per-node Python pass over the
            # touched set dominated pruning-bound searches).
            reached = np.concatenate(self._touched_from)
            return_distances = dist_to[reached]
            keep = (return_distances >= 0) & (
                dist_from[reached] + return_distances <= max_length
            )
            candidate_nodes = reached[keep]
            candidates = candidate_nodes.tolist()
            # The DFS reads the return distance once per visited edge; give
            # it Python-list indexing by mirroring just the candidates.
            for node, shortest_return in zip(candidates, dist_to[candidate_nodes].tolist()):
                candidate[node] = 1
                dist_to_py[node] = shortest_return
            # Keep, per candidate, the successors that are themselves
            # candidates — the only edges the DFS ever walks.
            rows: Dict[int, List[int]] = {}
            for node in candidates:
                rows[node] = [
                    neighbour
                    for neighbour in indices[indptr[node] : indptr[node + 1]]
                    if candidate[neighbour]
                ]
            # Iterative DFS; each stack frame is (node, iterator over its
            # filtered successors), resuming in O(1) after every descent.
            # `depth` tracks len(path) incrementally: the pruning test runs
            # once per edge visited, where a len() call is measurable.
            path.append(root)
            depth = 1
            on_path[root] = 1
            stack: List[Tuple[int, Iterator[int]]] = [(root, iter(rows.get(root, ())))]
            while stack:
                node, neighbours = stack[-1]
                advanced = False
                for neighbour in neighbours:
                    if neighbour == root:
                        if depth >= 2:
                            yield tuple(path)
                        continue
                    if on_path[neighbour]:
                        continue
                    # Appending `neighbour` makes the partial path use
                    # `depth` edges; the cheapest way to close the cycle
                    # from there adds dist_to_py[neighbour] more.  Prune if
                    # even that exceeds K.
                    if depth + dist_to_py[neighbour] > max_length:
                        continue
                    path.append(neighbour)
                    depth += 1
                    on_path[neighbour] = 1
                    stack.append((neighbour, iter(rows[neighbour])))
                    advanced = True
                    break
                if not advanced:
                    stack.pop()
                    depth -= 1
                    on_path[path.pop()] = 0
        finally:
            # Reset only what this search touched, whether it ran to
            # completion or the caller closed the generator early.
            for node in path:
                on_path[node] = 0
            for node in candidates:
                candidate[node] = 0
                dist_to_py[node] = -1
            for level in self._touched_from:
                dist_from[level] = -1
            self._touched_from.clear()
            for level in self._touched_to:
                dist_to[level] = -1
            self._touched_to.clear()


def _has_compiled_csr(graph) -> bool:
    """Return ``True`` if ``graph`` is a compiled artifact with its CSR built."""
    return getattr(graph, "csr_ready", False)


def enumerate_cycles_through(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Iterator[Tuple[int, ...]]:
    """Yield every simple cycle of length ``2..max_length`` through ``reference``.

    Each cycle is yielded as a tuple of node ids starting with the reference
    node; its length equals ``len(cycle)`` (the closing edge back to the
    reference is implicit, not repeated).

    A :class:`~repro.graph.compiled.CompiledGraph` whose CSR is already
    built searches through the :class:`CycleSearchEngine` over the shared
    arrays.  A bare graph (or a cold artifact) takes the dictionary walk
    instead: one rooted query touches only the reference's ``K``-hop
    neighbourhood, and paying an O(n + m) conversion for an O(local) answer
    would be a net loss — the engine earns its conversion when the platform
    (or a batch) reuses it across many references.  Both paths produce the
    identical cycle sequence.

    Parameters
    ----------
    graph:
        The directed graph to search (a
        :class:`~repro.graph.compiled.CompiledGraph` artifact is accepted
        too and reuses its compiled adjacency).
    reference:
        The reference node, by id or label.
    max_length:
        Maximum cycle length ``K`` (must be at least 2).

    Yields
    ------
    tuple of int
        Node ids along the cycle, reference first.
    """
    if _has_compiled_csr(graph):
        _validate_max_length(max_length)
        root = graph.resolve(reference)
        engine = CycleSearchEngine.for_graph(graph)
        yield from engine.cycles_from(root, max_length)
    else:
        yield from enumerate_cycles_through_dict(graph, reference, max_length)


def enumerate_cycles_through_dict(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Iterator[Tuple[int, ...]]:
    """Dictionary-based reference implementation of :func:`enumerate_cycles_through`.

    This is the original (pre-CSR) enumeration, kept verbatim as the ground
    truth the property tests and the hot-path benchmark compare the
    CSR-native engine against.  Semantics and yield order are identical; only
    the data layout differs (per-node dict/set lookups instead of flat
    arrays).
    """
    _validate_max_length(max_length)
    root = graph.resolve(reference)

    # Distance from each node back to the root, following edges forward
    # (i.e. length of the shortest path v -> ... -> root).
    dist_to_root = shortest_path_lengths(graph, root, reverse=True, cutoff=max_length - 1)
    # Distance from the root to each node.
    dist_from_root = shortest_path_lengths(graph, root, cutoff=max_length - 1)

    # Only nodes on some short enough round trip can participate in a cycle.
    candidates: Set[int] = {
        node
        for node in dist_from_root
        if node in dist_to_root and dist_from_root[node] + dist_to_root[node] <= max_length
    }
    if root not in candidates:
        return

    successors: Dict[int, Sequence[int]] = {}
    for node in candidates:
        successors[node] = tuple(
            sorted(v for v in graph.successors(node) if v in candidates or v == root)
        )

    path: List[int] = [root]
    on_path: Set[int] = {root}

    # Iterative DFS; each stack frame is (node, iterator over its successors).
    stack: List[Tuple[int, Iterator[int]]] = [(root, iter(successors.get(root, ())))]
    while stack:
        node, neighbours = stack[-1]
        advanced = False
        for neighbour in neighbours:
            if neighbour == root:
                if len(path) >= 2:
                    yield tuple(path)
                continue
            if neighbour in on_path:
                continue
            edges_after_append = len(path)
            shortest_return = dist_to_root.get(neighbour, max_length + 1)
            if edges_after_append + shortest_return > max_length:
                continue
            path.append(neighbour)
            on_path.add(neighbour)
            stack.append((neighbour, iter(successors.get(neighbour, ()))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if path:
                removed = path.pop()
                on_path.discard(removed)


def count_cycles_by_length(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Dict[int, int]:
    """Return ``{cycle length: number of cycles}`` through ``reference``."""
    counts: Dict[int, int] = {}
    for cycle in enumerate_cycles_through(graph, reference, max_length):
        counts[len(cycle)] = counts.get(len(cycle), 0) + 1
    return dict(sorted(counts.items()))


def simple_cycles_up_to_length(graph: DirectedGraph, max_length: int) -> List[Tuple[int, ...]]:
    """Return every simple cycle of length ``<= max_length`` in the whole graph.

    Each cycle is reported once, rotated so its smallest node id comes first:
    cycles through node ``0`` are enumerated, node ``0`` is eliminated,
    cycles through node ``1`` in the remaining graph are enumerated, and so
    on — the classic vertex-elimination scheme.  Elimination is an O(1) flip
    of the engine's alive mask (the previous implementation rebuilt edge sets
    by removing every edge of the pivot from a full graph copy, which was
    quadratic on dense graphs).
    """
    _validate_max_length(max_length)
    engine = CycleSearchEngine.for_graph(graph)
    cycles: List[Tuple[int, ...]] = []
    for pivot in graph.nodes():
        # Every smaller node is already eliminated, so each cycle found here
        # has the pivot as its minimum member and is reported exactly once.
        cycles.extend(engine.cycles_from(pivot, max_length))
        engine.eliminate(pivot)
    return cycles
