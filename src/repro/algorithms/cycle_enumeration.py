"""Bounded-length simple-cycle enumeration through a reference node.

CycleRank (Equation 1 of the paper) needs, for a reference node ``r`` and a
maximum length ``K``, every *simple* cycle of length 2..K that passes through
``r``.  This module implements the enumeration as a depth-first search rooted
at ``r`` with two prunings borrowed from the original CycleRank article:

1. **Distance pruning** — a reverse breadth-first search from ``r`` (bounded
   by ``K``) precomputes ``dist_to_r[v]``, the length of the shortest path
   from ``v`` back to ``r``.  A partial path of length ``d`` ending at ``v``
   can only close into a cycle of length ``<= K`` if
   ``d + dist_to_r[v] <= K``, so any branch violating this is cut.
2. **Reachability pruning** — nodes that cannot reach ``r`` at all within
   ``K - 1`` hops, or cannot be reached from ``r`` within ``K - 1`` hops, are
   removed from the search entirely (they can appear on no qualifying cycle).

The enumeration is exhaustive and exact: every simple cycle through ``r`` of
length at most ``K`` is produced exactly once, as a tuple of node ids
beginning with ``r`` (the closing edge back to ``r`` is implicit).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Set, Tuple

from .._validation import require_positive_int
from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph, NodeRef
from ..graph.traversal import shortest_path_lengths

__all__ = [
    "enumerate_cycles_through",
    "count_cycles_by_length",
    "simple_cycles_up_to_length",
]


def enumerate_cycles_through(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Iterator[Tuple[int, ...]]:
    """Yield every simple cycle of length ``2..max_length`` through ``reference``.

    Each cycle is yielded as a tuple of node ids starting with the reference
    node; its length equals ``len(cycle)`` (the closing edge back to the
    reference is implicit, not repeated).

    Parameters
    ----------
    graph:
        The directed graph to search.
    reference:
        The reference node, by id or label.
    max_length:
        Maximum cycle length ``K`` (must be at least 2).

    Yields
    ------
    tuple of int
        Node ids along the cycle, reference first.
    """
    require_positive_int(max_length, "max_length")
    if max_length < 2:
        raise InvalidParameterError(f"max_length must be >= 2, got {max_length}")
    root = graph.resolve(reference)

    # Distance from each node back to the root, following edges forward
    # (i.e. length of the shortest path v -> ... -> root).
    dist_to_root = shortest_path_lengths(graph, root, reverse=True, cutoff=max_length - 1)
    # Distance from the root to each node.
    dist_from_root = shortest_path_lengths(graph, root, cutoff=max_length - 1)

    # Only nodes on some short enough round trip can participate in a cycle.
    candidates: Set[int] = {
        node
        for node in dist_from_root
        if node in dist_to_root and dist_from_root[node] + dist_to_root[node] <= max_length
    }
    if root not in candidates:
        return

    successors: Dict[int, Sequence[int]] = {}
    for node in candidates:
        successors[node] = tuple(
            sorted(v for v in graph.successors(node) if v in candidates or v == root)
        )

    path: List[int] = [root]
    on_path: Set[int] = {root}

    # Iterative DFS; each stack frame is (node, iterator over its successors).
    stack: List[Tuple[int, Iterator[int]]] = [(root, iter(successors.get(root, ())))]
    while stack:
        node, neighbours = stack[-1]
        advanced = False
        for neighbour in neighbours:
            if neighbour == root:
                if len(path) >= 2:
                    yield tuple(path)
                continue
            if neighbour in on_path:
                continue
            # Appending `neighbour` makes the partial path use len(path) edges;
            # the cheapest way to close the cycle from there adds
            # dist_to_root[neighbour] more.  Prune if even that exceeds K.
            edges_after_append = len(path)
            shortest_return = dist_to_root.get(neighbour, max_length + 1)
            if edges_after_append + shortest_return > max_length:
                continue
            path.append(neighbour)
            on_path.add(neighbour)
            stack.append((neighbour, iter(successors.get(neighbour, ()))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if path:
                removed = path.pop()
                on_path.discard(removed)


def count_cycles_by_length(
    graph: DirectedGraph,
    reference: NodeRef,
    max_length: int,
) -> Dict[int, int]:
    """Return ``{cycle length: number of cycles}`` through ``reference``."""
    counts: Dict[int, int] = {}
    for cycle in enumerate_cycles_through(graph, reference, max_length):
        counts[len(cycle)] = counts.get(len(cycle), 0) + 1
    return dict(sorted(counts.items()))


def simple_cycles_up_to_length(graph: DirectedGraph, max_length: int) -> List[Tuple[int, ...]]:
    """Return every simple cycle of length ``<= max_length`` in the whole graph.

    This is a reference implementation used by tests to validate the rooted
    enumeration: each cycle is reported once, rotated so its smallest node id
    comes first.  It enumerates cycles through node ``0``, removes node ``0``,
    enumerates cycles through node ``1`` in the remaining graph, and so on —
    the classic vertex-elimination scheme.
    """
    require_positive_int(max_length, "max_length")
    cycles: List[Tuple[int, ...]] = []
    remaining = graph.copy()
    alive = set(graph.nodes())
    for pivot in graph.nodes():
        if pivot not in alive:
            continue
        for cycle in enumerate_cycles_through(remaining, pivot, max_length):
            # Only keep cycles whose minimum node is the pivot: every cycle is
            # found exactly once, when its smallest member is the pivot.
            if min(cycle) == pivot:
                cycles.append(cycle)
        # Remove the pivot before moving on.
        alive.discard(pivot)
        for successor in list(remaining.successors(pivot)):
            remaining.remove_edge(pivot, successor)
        for predecessor in list(remaining.predecessors(pivot)):
            remaining.remove_edge(predecessor, pivot)
    return cycles
