"""CycleRank: personalized relevance from cyclic paths (the paper's contribution).

Given a directed graph ``G``, a reference node ``r`` and a maximum cycle
length ``K``, the CycleRank score of node ``i`` is (Equation 1)::

    CR_{r,K}(i) = sum_{n=2}^{K} sigma(n) * c_{r,n}(i)

where ``c_{r,n}(i)`` is the number of simple cycles of length ``n`` that
contain both ``r`` and ``i``, and ``sigma`` is a non-increasing scoring
function that rewards shorter cycles (the paper uses ``sigma(n) = e^{-n}``).

Intuition: a node linked *from* the reference but not back is probably
globally relevant yet unrelated; a node linking *to* the reference but not
linked back is related but not relevant; only nodes connected in both
directions — directly or through short indirect paths — are both related and
relevant, and those are exactly the nodes lying on short cycles through the
reference.  By construction the reference node participates in every counted
cycle and therefore receives the maximum score.

The enumeration runs on the CSR-native
:class:`~repro.algorithms.cycle_enumeration.CycleSearchEngine`;
:func:`cyclerank_batch` reuses one engine (and one shared label array) across
a whole batch of references, so the per-graph conversion work is paid once
per batch — per query group on the platform, whose scheduler feeds batches
from its group-and-batch path.  A batched run produces bit-identical scores
to per-reference :func:`cyclerank` calls: both walk the same engine in the
same order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._validation import require_positive_int
from ..exceptions import InvalidParameterError
from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph, NodeRef
from ..ranking.result import Ranking
from ..scoring import ScoringFunction, get_scoring_function
from .cycle_enumeration import CycleSearchEngine, enumerate_cycles_through_dict

__all__ = [
    "cyclerank",
    "cyclerank_batch",
    "cyclerank_reference",
    "CycleRankStatistics",
]

#: Default maximum cycle length; the paper uses K=3 for Wikipedia and K=5 for
#: the sparser Amazon co-purchase graph.
DEFAULT_MAX_CYCLE_LENGTH = 3


@dataclass
class CycleRankStatistics:
    """Diagnostics collected during a CycleRank run.

    Attributes
    ----------
    cycles_by_length:
        ``{cycle length: number of cycles}`` enumerated through the reference.
    total_cycles:
        Total number of cycles enumerated.
    nodes_on_cycles:
        Number of distinct nodes (including the reference) lying on at least
        one counted cycle — exactly the nodes with a positive score.
    """

    cycles_by_length: Dict[int, int] = field(default_factory=dict)
    total_cycles: int = 0
    nodes_on_cycles: int = 0


def _validate_cyclerank_parameters(
    max_cycle_length: int, scoring: ScoringFunction | str
) -> Tuple[ScoringFunction, Dict[int, float]]:
    """Validate K, resolve sigma and precompute its weight per cycle length."""
    require_positive_int(max_cycle_length, "max_cycle_length")
    if max_cycle_length < 2:
        raise InvalidParameterError(
            f"max_cycle_length must be >= 2, got {max_cycle_length}"
        )
    scoring_function = get_scoring_function(scoring)
    weights = {
        length: weight
        for length, weight in zip(
            range(2, max_cycle_length + 1),
            scoring_function.weights_up_to(max_cycle_length),
        )
    }
    return scoring_function, weights


#: Up to this cycle length the per-reference counts come from the closed-form
#: vectorised kernel instead of the DFS enumeration.
_SHORT_KERNEL_MAX_K = 3


def _cyclerank_scores_short(
    compiled,
    root: int,
    max_cycle_length: int,
    weights: Dict[int, float],
    *,
    track_nodes: bool = False,
) -> Tuple[np.ndarray, Dict[int, int], int]:
    """Closed-form Equation 1 for ``K <= 3`` — no cycle enumeration at all.

    For the paper's flagship setting the per-node cycle counts have direct
    set-intersection forms, evaluated here with pure array operations over
    the compiled CSR and its transpose:

    * a length-2 cycle through ``r`` is a reciprocated edge — one count per
      node in ``succ(r) ∩ pred(r)``;
    * a length-3 cycle ``r -> u -> v -> r`` pairs each ``u ∈ succ(r)`` with
      ``v ∈ succ(u) ∩ pred(r)`` (``u``, ``v``, ``r`` pairwise distinct, which
      already makes the cycle simple) — gathered for *all* ``u`` in one
      concatenate/mask/bincount sweep.

    Only local adjacency is needed: the formulas read ``succ(r)``, the rows
    of its members, and ``pred(r)`` — never a full transpose.  When the
    artifact's CSR is already compiled (a platform-cached artifact, or a
    batch that built it once up front) rows come from the shared arrays;
    otherwise they are gathered straight from the graph's adjacency sets, so
    a one-off query never pays an O(m) conversion for an O(local) answer.
    Both sources feed the same integer counting, so the resulting scores are
    bit-identical either way.

    Scores are ``weights[length] * count`` per node, so a single multiply
    replaces the per-cycle float accumulation; results agree with the
    enumeration kernel to one rounding of each weight sum.
    """
    num_nodes = compiled.number_of_nodes()
    scores = np.zeros(num_nodes, dtype=np.float64)
    cycles_by_length: Dict[int, int] = {}
    on_cycle = np.zeros(num_nodes, dtype=bool) if track_nodes else None

    use_csr = compiled.csr_ready
    if use_csr:
        csr = compiled.to_csr()
        indptr, indices = csr.indptr, csr.indices
        successors_of_root = indices[indptr[root] : indptr[root + 1]]
    else:
        root_successors = compiled.successors(root)
        successors_of_root = np.sort(
            np.fromiter(root_successors, dtype=np.int64, count=len(root_successors))
        )
    root_predecessors = compiled.predecessors(root)
    predecessors_of_root = np.sort(
        np.fromiter(root_predecessors, dtype=np.int64, count=len(root_predecessors))
    )
    # Length 2: reciprocated edges with the root (rows are sorted and unique).
    reciprocal = np.intersect1d(
        successors_of_root, predecessors_of_root, assume_unique=True
    )
    reciprocal = reciprocal[reciprocal != root]
    root_score = 0.0
    if reciprocal.size:
        weight = weights[2]
        cycles_by_length[2] = int(reciprocal.size)
        scores[reciprocal] = weight
        root_score += weight * reciprocal.size
        if on_cycle is not None:
            on_cycle[reciprocal] = True

    if max_cycle_length >= 3:
        middles = successors_of_root[successors_of_root != root]
        if middles.size:
            predecessor_mask = np.zeros(num_nodes, dtype=bool)
            predecessor_mask[predecessors_of_root] = True
            if use_csr:
                rows = [indices[indptr[u] : indptr[u + 1]] for u in middles.tolist()]
                owners = np.repeat(middles, indptr[middles + 1] - indptr[middles])
            else:
                graph = compiled.graph
                rows = []
                for u in middles.tolist():
                    row = graph.successors(u)
                    rows.append(np.fromiter(row, dtype=np.int64, count=len(row)))
                owners = np.repeat(middles, [row.size for row in rows])
            closing = (
                np.concatenate(rows) if rows else np.empty(0, dtype=np.int64)
            )
            keep = predecessor_mask[closing] & (closing != root) & (closing != owners)
            last_nodes = closing[keep]
            middle_nodes = owners[keep]
            if last_nodes.size:
                weight = weights[3]
                cycles_by_length[3] = int(last_nodes.size)
                scores += weight * (
                    np.bincount(middle_nodes, minlength=num_nodes)
                    + np.bincount(last_nodes, minlength=num_nodes)
                )
                root_score += weight * last_nodes.size
                if on_cycle is not None:
                    on_cycle[middle_nodes] = True
                    on_cycle[last_nodes] = True

    scores[root] = root_score
    nodes_on_cycles = 0
    if on_cycle is not None:
        nodes_on_cycles = int(on_cycle.sum()) + (1 if cycles_by_length else 0)
    return scores, cycles_by_length, nodes_on_cycles


def _cyclerank_scores(
    cycles: Iterable[Tuple[int, ...]],
    num_nodes: int,
    weights: Dict[int, float],
    *,
    track_nodes: bool = False,
) -> Tuple[np.ndarray, Dict[int, int], int]:
    """Accumulate Equation 1 over a stream of cycles.

    The stream may come from a shared :class:`CycleSearchEngine` (batches,
    warmed artifacts) or from the dictionary walk (one-off queries on a bare
    graph); both enumerate the identical cycle sequence, so the accumulated
    floats are bit-identical either way.  ``track_nodes`` additionally counts
    the distinct nodes seen on cycles (for :class:`CycleRankStatistics`); it
    costs one set insertion per cycle node, so the batch path leaves it off.
    """
    scores = np.zeros(num_nodes, dtype=np.float64)
    cycles_by_length: Dict[int, int] = {}
    touched: Set[int] = set()
    if track_nodes:
        for cycle in cycles:
            length = len(cycle)
            weight = weights[length]
            cycles_by_length[length] = cycles_by_length.get(length, 0) + 1
            for node in cycle:
                scores[node] += weight
                touched.add(node)
    else:
        for cycle in cycles:
            length = len(cycle)
            weight = weights[length]
            cycles_by_length[length] = cycles_by_length.get(length, 0) + 1
            for node in cycle:
                scores[node] += weight
    return scores, cycles_by_length, len(touched)


def _fill_statistics(
    statistics: Optional[CycleRankStatistics],
    cycles_by_length: Dict[int, int],
    nodes_on_cycles: int,
) -> None:
    if statistics is None:
        return
    statistics.cycles_by_length = dict(sorted(cycles_by_length.items()))
    statistics.total_cycles = sum(cycles_by_length.values())
    statistics.nodes_on_cycles = nodes_on_cycles


def cyclerank(
    graph: DirectedGraph,
    reference: NodeRef,
    *,
    max_cycle_length: int = DEFAULT_MAX_CYCLE_LENGTH,
    scoring: ScoringFunction | str = "exp",
    statistics: Optional[CycleRankStatistics] = None,
) -> Ranking:
    """Compute CycleRank scores with respect to ``reference``.

    Parameters
    ----------
    graph:
        The directed graph to rank (a compiled artifact is accepted too).
    reference:
        The reference (query) node, by id or label.
    max_cycle_length:
        The parameter ``K`` of Equation 1 — only cycles of length 2..K are
        counted.  Must be at least 2.
    scoring:
        The scoring function σ, either a
        :class:`~repro.scoring.ScoringFunction` instance or a registry name
        (``"exp"``, ``"lin"``, ``"quad"``, ``"const"``).
    statistics:
        Optional :class:`CycleRankStatistics` instance that will be filled
        with run diagnostics (cycle counts per length).

    Returns
    -------
    Ranking
        Non-negative scores; nodes on no qualifying cycle score 0 and the
        reference node holds the maximum score.
    """
    scoring_function, weights = _validate_cyclerank_parameters(max_cycle_length, scoring)
    compiled = compiled_of(graph)
    root = compiled.resolve(reference)
    track_nodes = statistics is not None
    if max_cycle_length <= _SHORT_KERNEL_MAX_K:
        scores, cycles_by_length, nodes_on_cycles = _cyclerank_scores_short(
            compiled, root, max_cycle_length, weights, track_nodes=track_nodes
        )
    else:
        if compiled.csr_ready:
            # A warmed artifact (platform cache): reuse its compiled arrays.
            cycles = CycleSearchEngine.for_graph(compiled).cycles_from(
                root, max_cycle_length
            )
        else:
            # One-off query on a bare graph: the dictionary walk touches only
            # the reference's K-hop neighbourhood, so it beats paying an
            # O(n + m) conversion; the cycle sequence is identical.
            cycles = enumerate_cycles_through_dict(
                compiled.graph, root, max_cycle_length
            )
        scores, cycles_by_length, nodes_on_cycles = _cyclerank_scores(
            cycles, compiled.number_of_nodes(), weights, track_nodes=track_nodes
        )
    _fill_statistics(statistics, cycles_by_length, nodes_on_cycles)
    return Ranking(
        scores,
        labels=compiled.labels(),
        algorithm="CycleRank",
        parameters={
            "k": max_cycle_length,
            "sigma": scoring_function.name,
        },
        graph_name=compiled.name,
        reference=compiled.label_of(root),
    )


def cyclerank_batch(
    graph: DirectedGraph,
    references: Sequence[NodeRef],
    *,
    max_cycle_length: int = DEFAULT_MAX_CYCLE_LENGTH,
    scoring: ScoringFunction | str = "exp",
) -> List[Ranking]:
    """Compute CycleRank for many references against one graph.

    The candidate-subgraph machinery — CSR adjacency and transpose in
    flat-list form, the search engine's preallocated distance/on-path arrays,
    and the shared label array — is built once and reused by every reference;
    between references only the entries the previous search touched are
    reset.  Scores are bit-identical to per-reference :func:`cyclerank`
    calls.

    Parameters
    ----------
    graph:
        The directed graph to rank (a compiled artifact is accepted too).
    references:
        One reference node (id or label) per query.
    max_cycle_length, scoring:
        As in :func:`cyclerank`, shared by the whole batch.

    Returns
    -------
    list of Ranking
        One ranking per reference, in input order.
    """
    scoring_function, weights = _validate_cyclerank_parameters(max_cycle_length, scoring)
    references = list(references)
    if not references:
        return []
    compiled = compiled_of(graph)
    roots = [compiled.resolve(reference) for reference in references]
    num_nodes = compiled.number_of_nodes()
    short_kernel = max_cycle_length <= _SHORT_KERNEL_MAX_K
    if short_kernel:
        # Compile the shared CSR up front: the whole batch reads rows from it.
        compiled.to_csr()
        engine = None
    else:
        engine = CycleSearchEngine.for_graph(compiled)
    labels = compiled.labels_array()
    rankings: List[Ranking] = []
    for root in roots:
        if short_kernel:
            scores, _, _ = _cyclerank_scores_short(compiled, root, max_cycle_length, weights)
        else:
            scores, _, _ = _cyclerank_scores(
                engine.cycles_from(root, max_cycle_length), num_nodes, weights
            )
        rankings.append(
            Ranking(
                scores,
                labels=labels,
                algorithm="CycleRank",
                parameters={
                    "k": max_cycle_length,
                    "sigma": scoring_function.name,
                },
                graph_name=compiled.name,
                reference=compiled.label_of(root),
            )
        )
    return rankings


def cyclerank_reference(
    graph: DirectedGraph,
    reference: NodeRef,
    *,
    max_cycle_length: int = DEFAULT_MAX_CYCLE_LENGTH,
    scoring: ScoringFunction | str = "exp",
) -> Ranking:
    """The seed CycleRank implementation, kept as a comparison baseline.

    Dictionary-based enumeration (:func:`enumerate_cycles_through_dict`) with
    per-cycle score accumulation — exactly the pre-CSR code path.  The
    equivalence tests and the hot-path benchmark
    (``benchmarks/bench_cyclerank_hotpath.py``) measure the optimised
    kernels against this single shared baseline; it is not meant for
    production use.
    """
    scoring_function, weights = _validate_cyclerank_parameters(max_cycle_length, scoring)
    root = graph.resolve(reference)
    scores = np.zeros(graph.number_of_nodes(), dtype=np.float64)
    for cycle in enumerate_cycles_through_dict(graph, root, max_cycle_length):
        weight = weights[len(cycle)]
        for node in cycle:
            scores[node] += weight
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="CycleRank",
        parameters={
            "k": max_cycle_length,
            "sigma": scoring_function.name,
        },
        graph_name=graph.name,
        reference=graph.label_of(root),
    )
