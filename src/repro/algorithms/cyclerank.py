"""CycleRank: personalized relevance from cyclic paths (the paper's contribution).

Given a directed graph ``G``, a reference node ``r`` and a maximum cycle
length ``K``, the CycleRank score of node ``i`` is (Equation 1)::

    CR_{r,K}(i) = sum_{n=2}^{K} sigma(n) * c_{r,n}(i)

where ``c_{r,n}(i)`` is the number of simple cycles of length ``n`` that
contain both ``r`` and ``i``, and ``sigma`` is a non-increasing scoring
function that rewards shorter cycles (the paper uses ``sigma(n) = e^{-n}``).

Intuition: a node linked *from* the reference but not back is probably
globally relevant yet unrelated; a node linking *to* the reference but not
linked back is related but not relevant; only nodes connected in both
directions — directly or through short indirect paths — are both related and
relevant, and those are exactly the nodes lying on short cycles through the
reference.  By construction the reference node participates in every counted
cycle and therefore receives the maximum score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from .._validation import require_positive_int
from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph, NodeRef
from ..ranking.result import Ranking
from ..scoring import ScoringFunction, get_scoring_function
from .cycle_enumeration import enumerate_cycles_through

__all__ = ["cyclerank", "CycleRankStatistics"]

#: Default maximum cycle length; the paper uses K=3 for Wikipedia and K=5 for
#: the sparser Amazon co-purchase graph.
DEFAULT_MAX_CYCLE_LENGTH = 3


@dataclass
class CycleRankStatistics:
    """Diagnostics collected during a CycleRank run.

    Attributes
    ----------
    cycles_by_length:
        ``{cycle length: number of cycles}`` enumerated through the reference.
    total_cycles:
        Total number of cycles enumerated.
    nodes_on_cycles:
        Number of distinct nodes (including the reference) lying on at least
        one counted cycle — exactly the nodes with a positive score.
    """

    cycles_by_length: Dict[int, int] = field(default_factory=dict)
    total_cycles: int = 0
    nodes_on_cycles: int = 0


def cyclerank(
    graph: DirectedGraph,
    reference: NodeRef,
    *,
    max_cycle_length: int = DEFAULT_MAX_CYCLE_LENGTH,
    scoring: ScoringFunction | str = "exp",
    statistics: Optional[CycleRankStatistics] = None,
) -> Ranking:
    """Compute CycleRank scores with respect to ``reference``.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    reference:
        The reference (query) node, by id or label.
    max_cycle_length:
        The parameter ``K`` of Equation 1 — only cycles of length 2..K are
        counted.  Must be at least 2.
    scoring:
        The scoring function σ, either a
        :class:`~repro.scoring.ScoringFunction` instance or a registry name
        (``"exp"``, ``"lin"``, ``"quad"``, ``"const"``).
    statistics:
        Optional :class:`CycleRankStatistics` instance that will be filled
        with run diagnostics (cycle counts per length).

    Returns
    -------
    Ranking
        Non-negative scores; nodes on no qualifying cycle score 0 and the
        reference node holds the maximum score.
    """
    require_positive_int(max_cycle_length, "max_cycle_length")
    if max_cycle_length < 2:
        raise InvalidParameterError(
            f"max_cycle_length must be >= 2, got {max_cycle_length}"
        )
    scoring_function = get_scoring_function(scoring)
    # Precompute sigma for every admissible cycle length.
    weights = {
        length: weight
        for length, weight in zip(
            range(2, max_cycle_length + 1),
            scoring_function.weights_up_to(max_cycle_length),
        )
    }

    root = graph.resolve(reference)
    scores = np.zeros(graph.number_of_nodes(), dtype=np.float64)
    cycles_by_length: Dict[int, int] = {}
    touched = set()
    for cycle in enumerate_cycles_through(graph, root, max_cycle_length):
        length = len(cycle)
        weight = weights[length]
        cycles_by_length[length] = cycles_by_length.get(length, 0) + 1
        for node in cycle:
            scores[node] += weight
            touched.add(node)

    if statistics is not None:
        statistics.cycles_by_length = dict(sorted(cycles_by_length.items()))
        statistics.total_cycles = sum(cycles_by_length.values())
        statistics.nodes_on_cycles = len(touched)

    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="CycleRank",
        parameters={
            "k": max_cycle_length,
            "sigma": scoring_function.name,
        },
        graph_name=graph.name,
        reference=graph.label_of(root),
    )
