"""2DRank: the two-dimensional combination of PageRank and CheiRank.

Zhirov, Zhirov & Shepelyansky (2010) place every node in the plane spanned by
its PageRank rank ``K`` and its CheiRank rank ``K*`` and read off a single
combined ranking by scanning squares of growing side length: a node enters
the 2DRank order when the square ``[1..r] × [1..r]`` first contains its
``(K, K*)`` point, i.e. at ``r = max(K, K*)``.  Nodes entering at the same
``r`` are ordered along the two new sides of the square — first down the
vertical side (``K = r``, increasing ``K*``), then along the horizontal side
(``K* = r``, increasing ``K``), with the corner ``(r, r)`` last.

As the paper notes, 2DRank "does not assign a score to each node, but just
produces a ranking"; the returned :class:`Ranking` therefore carries a
synthetic score of ``1 / position`` purely so it can flow through the same
comparison machinery as the score-based algorithms.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .cheirank import cheirank, personalized_cheirank, personalized_cheirank_batch
from .pagerank import DEFAULT_ALPHA, DEFAULT_MAX_ITER, DEFAULT_TOL, pagerank
from .personalized_pagerank import (
    DEFAULT_PPR_ALPHA,
    ReferenceSpec,
    personalized_pagerank,
    personalized_pagerank_batch,
)

__all__ = [
    "twodrank",
    "personalized_twodrank",
    "personalized_twodrank_batch",
    "two_dimensional_order",
]


def two_dimensional_order(pagerank_ranking: Ranking, cheirank_ranking: Ranking) -> List[int]:
    """Return node ids in 2DRank order given a PageRank and a CheiRank ranking.

    Both rankings must cover the same node set (same length, same labels).
    """
    if len(pagerank_ranking) != len(cheirank_ranking):
        raise ValueError(
            "PageRank and CheiRank rankings cover different node sets "
            f"({len(pagerank_ranking)} vs {len(cheirank_ranking)} nodes)"
        )
    n = len(pagerank_ranking)
    order: List[int] = []
    entries = []
    for node in range(n):
        k = pagerank_ranking.rank_of(node)
        k_star = cheirank_ranking.rank_of(node)
        r = max(k, k_star)
        if k == r and k_star == r:
            side, offset = 2, 0  # the corner of the square enters last
        elif k == r:
            side, offset = 0, k_star  # vertical side, scanned by increasing K*
        else:
            side, offset = 1, k  # horizontal side, scanned by increasing K
        entries.append((r, side, offset, node))
    for _, _, _, node in sorted(entries):
        order.append(node)
    return order


def _ranking_from_order(
    order: List[int],
    template: Ranking,
    *,
    algorithm: str,
    parameters: dict,
    reference: str | None = None,
) -> Ranking:
    """Build a Ranking whose scores encode only the position in ``order``."""
    scores = np.zeros(len(order), dtype=np.float64)
    for position, node in enumerate(order, start=1):
        scores[node] = 1.0 / position
    return Ranking(
        scores,
        labels=[template.label_of(i) for i in range(len(template))],
        algorithm=algorithm,
        parameters=parameters,
        graph_name=template.graph_name,
        reference=reference,
    )


def twodrank(
    graph: DirectedGraph,
    *,
    alpha: float = DEFAULT_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute the global 2DRank ordering of every node.

    Parameters
    ----------
    alpha, tol, max_iter:
        Passed to the underlying PageRank and CheiRank computations (both use
        the same damping factor, as in the original 2DRank formulation).
    """
    pr = pagerank(graph, alpha=alpha, tol=tol, max_iter=max_iter)
    cr = cheirank(graph, alpha=alpha, tol=tol, max_iter=max_iter)
    order = two_dimensional_order(pr, cr)
    return _ranking_from_order(
        order,
        pr,
        algorithm="2DRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter},
    )


def personalized_twodrank(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute the personalized 2DRank ordering with respect to ``reference``.

    The two underlying rankings are Personalized PageRank and Personalized
    CheiRank with the same reference node, combined with the same
    square-scanning rule as the global variant.
    """
    ppr = personalized_pagerank(graph, reference, alpha=alpha, tol=tol, max_iter=max_iter)
    pcr = personalized_cheirank(graph, reference, alpha=alpha, tol=tol, max_iter=max_iter)
    order = two_dimensional_order(ppr, pcr)
    return _ranking_from_order(
        order,
        ppr,
        algorithm="Personalized 2DRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter},
        reference=ppr.reference,
    )


def personalized_twodrank_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> List[Ranking]:
    """Compute personalized 2DRank for many references in one pass.

    Both underlying rankings come from the batched kernels, so the graph and
    its transpose are each converted to CSR once for the whole batch.
    """
    references = list(references)
    if not references:
        return []
    pprs = personalized_pagerank_batch(
        graph, references, alpha=alpha, tol=tol, max_iter=max_iter
    )
    pcrs = personalized_cheirank_batch(
        graph, references, alpha=alpha, tol=tol, max_iter=max_iter
    )
    results = []
    for ppr, pcr in zip(pprs, pcrs):
        order = two_dimensional_order(ppr, pcr)
        results.append(
            _ranking_from_order(
                order,
                ppr,
                algorithm="Personalized 2DRank",
                parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter},
                reference=ppr.reference,
            )
        )
    return results
