"""HITS (hubs and authorities) and a personalized, query-rooted variant.

HITS (Kleinberg 1999) is the natural companion baseline to PageRank/CheiRank:
it assigns every node a *hub* score (it points to good authorities) and an
*authority* score (it is pointed at by good hubs), computed by the mutually
recursive power iteration

.. math::

    a \\leftarrow A^T h, \\qquad h \\leftarrow A a

with L2 normalisation at every step.  The demo does not showcase HITS, but
the platform is explicitly designed so that "new algorithms can be easily
added"; this module is that extension point exercised for real, and it is
registered in the algorithm registry as ``hits`` / ``personalized-hits``.

The personalized variant follows the rooted-HITS idea: at every iteration a
fraction ``1 - alpha`` of the authority mass is re-concentrated on the
reference node before normalisation, so the fixed point describes hubs and
authorities *of the query's neighbourhood* rather than of the whole graph.

The iteration core advances an ``n x k`` matrix of hub/authority columns
(one per reference) and freezes each column the moment it converges, so a
batch (:func:`personalized_hits_batch`) shares the adjacency build across
references while every column follows exactly the update sequence a single
run would: the single-reference entry points are the ``k = 1`` special case
of the same kernel, which makes batched and per-reference results identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .._validation import require_positive_int, require_probability
from ..exceptions import ConvergenceError
from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .personalized_pagerank import (
    ReferenceSpec,
    _reference_label_for,
    teleport_vector_for,
)

__all__ = ["hits", "personalized_hits", "personalized_hits_batch"]

# HITS contracts at (lambda_2 / lambda_1)^2 of A^T A per iteration, which can
# be close to 1 on community-structured graphs, so the default tolerance is
# looser and the iteration budget larger than for the PageRank family.
DEFAULT_TOL = 1e-8
DEFAULT_MAX_ITER = 5000


def _column_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-column sums, each over a contiguous copy of its column.

    ``matrix.sum(axis=0)`` picks a different reduction tree depending on the
    matrix width, so its per-column results are not bit-identical to the
    ``k = 1`` case.  Summing each column as a contiguous 1-D array makes the
    rounding of every column independent of how many other columns ride in
    the batch — the property the exact batch-equals-single guarantee rests
    on.  ``k`` is a batch size, so the Python-level loop is negligible.
    """
    return np.array(
        [np.ascontiguousarray(matrix[:, j]).sum() for j in range(matrix.shape[1])]
    )


def _column_abs_sums(matrix: np.ndarray) -> np.ndarray:
    """Per-column L1 norms with width-independent rounding (see `_column_sums`)."""
    return np.array(
        [np.abs(np.ascontiguousarray(matrix[:, j])).sum() for j in range(matrix.shape[1])]
    )


def _column_norms(matrix: np.ndarray) -> np.ndarray:
    """Per-column L2 norms with width-independent rounding (see `_column_sums`)."""
    return np.array(
        [
            np.sqrt(np.square(np.ascontiguousarray(matrix[:, j])).sum())
            for j in range(matrix.shape[1])
        ]
    )


def _hits_iteration_batch(
    adjacency,
    adjacency_t,
    *,
    teleports: Optional[np.ndarray],
    num_columns: int,
    alpha: float,
    tol: float,
    max_iter: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run the (optionally rooted) HITS power iteration for ``k`` columns.

    ``adjacency_t`` must be the materialised CSR of ``A^T`` (not a lazy
    ``.T`` view), so every column's update is one CSR-times-dense product.
    Each column freezes — final sum-to-1 normalisation applied, iteration
    count recorded — the moment its residual drops below ``tol``; active
    columns continue unperturbed, so every column traverses exactly the
    sequence of updates a ``k = 1`` run would.

    Returns ``(authorities, hubs, iterations)`` with matrix shapes
    ``(n, k)`` and per-column iteration counts.
    """
    n = adjacency.shape[0]
    k = num_columns
    iterations = np.zeros(k, dtype=np.int64)
    if n == 0 or k == 0:
        return np.zeros((n, k)), np.zeros((n, k)), iterations
    hubs = np.full((n, k), 1.0 / n, dtype=np.float64)
    authorities = np.full((n, k), 1.0 / n, dtype=np.float64)
    active = np.arange(k)
    worst_residual = 0.0
    for iteration in range(1, max_iter + 1):
        old_authorities = authorities[:, active]
        old_hubs = hubs[:, active]
        new_authorities = np.asarray(adjacency_t @ old_hubs)
        if teleports is not None:
            teleport_columns = teleports[:, active]
            totals = _column_sums(new_authorities)
            flowing = totals > 0
            new_authorities = np.where(
                flowing,
                alpha * new_authorities + teleport_columns * ((1 - alpha) * totals),
                # No authority mass flows at all (e.g. the reference has an
                # empty neighbourhood): the rooted variant falls back to the
                # restart distribution instead of an all-zero vector.
                teleport_columns,
            )
        new_hubs = np.asarray(adjacency @ new_authorities)
        authority_norms = _column_norms(new_authorities)
        hub_norms = _column_norms(new_hubs)
        new_authorities = new_authorities / np.where(authority_norms > 0, authority_norms, 1.0)
        new_hubs = new_hubs / np.where(hub_norms > 0, hub_norms, 1.0)
        residuals = (
            _column_abs_sums(new_authorities - old_authorities)
            + _column_abs_sums(new_hubs - old_hubs)
        )
        authorities[:, active] = new_authorities
        hubs[:, active] = new_hubs
        converged = residuals < tol
        if converged.any():
            done = active[converged]
            done_authorities = new_authorities[:, converged]
            done_hubs = new_hubs[:, converged]
            authority_totals = _column_sums(done_authorities)
            hub_totals = _column_sums(done_hubs)
            authorities[:, done] = done_authorities / np.where(
                authority_totals > 0, authority_totals, 1.0
            )
            hubs[:, done] = done_hubs / np.where(hub_totals > 0, hub_totals, 1.0)
            iterations[done] = iteration
            active = active[~converged]
            if active.size == 0:
                return authorities, hubs, iterations
        worst_residual = float(residuals[~converged].max()) if (~converged).any() else 0.0
    raise ConvergenceError(
        f"HITS did not converge within {max_iter} iterations "
        f"(last residual {worst_residual:.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=worst_residual,
    )


def _adjacency_pair(graph):
    """Return ``(A, A^T)`` as CSR matrices, reusing a compiled artifact's cache."""
    compiled = compiled_of(graph)
    return compiled.adjacency(), compiled.adjacency_transpose()


def hits(
    graph: DirectedGraph,
    *,
    scores: str = "authority",
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute global HITS scores.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    scores:
        ``"authority"`` (default) ranks by authority score, ``"hub"`` by hub
        score.
    tol, max_iter:
        Power-iteration convergence controls.
    """
    require_positive_int(max_iter, "max_iter")
    if scores not in ("authority", "hub"):
        raise ValueError(f"scores must be 'authority' or 'hub', got {scores!r}")
    adjacency, adjacency_t = _adjacency_pair(graph)
    authorities, hubs, iterations = _hits_iteration_batch(
        adjacency, adjacency_t, teleports=None, num_columns=1,
        alpha=1.0, tol=tol, max_iter=max_iter,
    )
    selected = (authorities if scores == "authority" else hubs)[:, 0]
    return Ranking(
        selected,
        labels=graph.labels(),
        algorithm="HITS" if scores == "authority" else "HITS (hubs)",
        parameters={"scores": scores, "tol": tol, "max_iter": max_iter,
                    "iterations": int(iterations[0])},
        graph_name=graph.name,
    )


def personalized_hits(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = 0.85,
    scores: str = "authority",
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute rooted (personalized) HITS scores with respect to ``reference``.

    Parameters
    ----------
    alpha:
        Fraction of the authority mass kept from the mutual-reinforcement
        update; the remaining ``1 - alpha`` is re-concentrated on the
        reference node at every iteration (the rooted-HITS restart).
    scores:
        ``"authority"`` (default) or ``"hub"``.
    """
    return personalized_hits_batch(
        graph, [reference], alpha=alpha, scores=scores, tol=tol, max_iter=max_iter
    )[0]


def personalized_hits_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    alpha: float = 0.85,
    scores: str = "authority",
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> List[Ranking]:
    """Compute rooted HITS for many references in one ``n x k`` iteration.

    The adjacency matrices are built (or fetched from a compiled artifact)
    once for the whole batch and the power iteration advances one column per
    reference, freezing each column at its own convergence point — so the
    returned rankings are identical to per-reference
    :func:`personalized_hits` calls.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    references:
        One reference spec per query (node, node set, or weighted mapping).
    alpha, scores, tol, max_iter:
        As in :func:`personalized_hits`, shared by the whole batch.

    Returns
    -------
    list of Ranking
        One ranking per reference, in input order.
    """
    alpha = require_probability(alpha, "alpha")
    require_positive_int(max_iter, "max_iter")
    if scores not in ("authority", "hub"):
        raise ValueError(f"scores must be 'authority' or 'hub', got {scores!r}")
    references = list(references)
    if not references:
        return []
    compiled = compiled_of(graph)
    teleports = np.column_stack(
        [teleport_vector_for(compiled, reference) for reference in references]
    )
    authorities, hubs, iterations = _hits_iteration_batch(
        compiled.adjacency(), compiled.adjacency_transpose(),
        teleports=teleports, num_columns=len(references),
        alpha=alpha, tol=tol, max_iter=max_iter,
    )
    selected = authorities if scores == "authority" else hubs
    labels = compiled.labels_array()
    return [
        Ranking(
            selected[:, column],
            labels=labels,
            algorithm="Personalized HITS",
            parameters={"alpha": alpha, "scores": scores, "tol": tol,
                        "max_iter": max_iter, "iterations": int(iterations[column])},
            graph_name=compiled.name,
            reference=_reference_label_for(compiled, reference),
        )
        for column, reference in enumerate(references)
    ]
