"""HITS (hubs and authorities) and a personalized, query-rooted variant.

HITS (Kleinberg 1999) is the natural companion baseline to PageRank/CheiRank:
it assigns every node a *hub* score (it points to good authorities) and an
*authority* score (it is pointed at by good hubs), computed by the mutually
recursive power iteration

.. math::

    a \\leftarrow A^T h, \\qquad h \\leftarrow A a

with L2 normalisation at every step.  The demo does not showcase HITS, but
the platform is explicitly designed so that "new algorithms can be easily
added"; this module is that extension point exercised for real, and it is
registered in the algorithm registry as ``hits`` / ``personalized-hits``.

The personalized variant follows the rooted-HITS idea: at every iteration a
fraction ``1 - alpha`` of the authority mass is re-concentrated on the
reference node before normalisation, so the fixed point describes hubs and
authorities *of the query's neighbourhood* rather than of the whole graph.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import require_positive_int, require_probability
from ..exceptions import ConvergenceError
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .personalized_pagerank import ReferenceSpec, teleport_vector_for

__all__ = ["hits", "personalized_hits"]

# HITS contracts at (lambda_2 / lambda_1)^2 of A^T A per iteration, which can
# be close to 1 on community-structured graphs, so the default tolerance is
# looser and the iteration budget larger than for the PageRank family.
DEFAULT_TOL = 1e-8
DEFAULT_MAX_ITER = 5000


def _hits_iteration(
    adjacency,
    *,
    teleport: Optional[np.ndarray],
    alpha: float,
    tol: float,
    max_iter: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Run the (optionally rooted) HITS power iteration.

    Returns ``(authorities, hubs, iterations)``; both vectors are normalised
    to sum to 1 so they read as distributions like the PageRank family.
    """
    n = adjacency.shape[0]
    if n == 0:
        return np.zeros(0), np.zeros(0), 0
    hubs = np.full(n, 1.0 / n, dtype=np.float64)
    authorities = np.full(n, 1.0 / n, dtype=np.float64)
    residual = 0.0
    for iteration in range(1, max_iter + 1):
        new_authorities = np.asarray(adjacency.T @ hubs).ravel()
        if teleport is not None:
            total = new_authorities.sum()
            if total > 0:
                new_authorities = alpha * new_authorities + (1 - alpha) * total * teleport
            else:
                # No authority mass flows at all (e.g. the reference has an
                # empty neighbourhood): the rooted variant falls back to the
                # restart distribution instead of an all-zero vector.
                new_authorities = teleport.astype(np.float64).copy()
        new_hubs = np.asarray(adjacency @ new_authorities).ravel()
        authority_norm = np.linalg.norm(new_authorities)
        hub_norm = np.linalg.norm(new_hubs)
        if authority_norm > 0:
            new_authorities = new_authorities / authority_norm
        if hub_norm > 0:
            new_hubs = new_hubs / hub_norm
        residual = float(
            np.abs(new_authorities - authorities).sum() + np.abs(new_hubs - hubs).sum()
        )
        authorities, hubs = new_authorities, new_hubs
        if residual < tol:
            authority_total = authorities.sum()
            hub_total = hubs.sum()
            if authority_total > 0:
                authorities = authorities / authority_total
            if hub_total > 0:
                hubs = hubs / hub_total
            return authorities, hubs, iteration
    raise ConvergenceError(
        f"HITS did not converge within {max_iter} iterations "
        f"(last residual {residual:.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=residual,
    )


def hits(
    graph: DirectedGraph,
    *,
    scores: str = "authority",
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute global HITS scores.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    scores:
        ``"authority"`` (default) ranks by authority score, ``"hub"`` by hub
        score.
    tol, max_iter:
        Power-iteration convergence controls.
    """
    require_positive_int(max_iter, "max_iter")
    if scores not in ("authority", "hub"):
        raise ValueError(f"scores must be 'authority' or 'hub', got {scores!r}")
    adjacency = graph.to_csr().to_scipy()
    authorities, hubs, iterations = _hits_iteration(
        adjacency, teleport=None, alpha=1.0, tol=tol, max_iter=max_iter
    )
    selected = authorities if scores == "authority" else hubs
    return Ranking(
        selected,
        labels=graph.labels(),
        algorithm="HITS" if scores == "authority" else "HITS (hubs)",
        parameters={"scores": scores, "tol": tol, "max_iter": max_iter,
                    "iterations": iterations},
        graph_name=graph.name,
    )


def personalized_hits(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = 0.85,
    scores: str = "authority",
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute rooted (personalized) HITS scores with respect to ``reference``.

    Parameters
    ----------
    alpha:
        Fraction of the authority mass kept from the mutual-reinforcement
        update; the remaining ``1 - alpha`` is re-concentrated on the
        reference node at every iteration (the rooted-HITS restart).
    scores:
        ``"authority"`` (default) or ``"hub"``.
    """
    alpha = require_probability(alpha, "alpha")
    require_positive_int(max_iter, "max_iter")
    if scores not in ("authority", "hub"):
        raise ValueError(f"scores must be 'authority' or 'hub', got {scores!r}")
    teleport = teleport_vector_for(graph, reference)
    adjacency = graph.to_csr().to_scipy()
    authorities, hubs, iterations = _hits_iteration(
        adjacency, teleport=teleport, alpha=alpha, tol=tol, max_iter=max_iter
    )
    selected = authorities if scores == "authority" else hubs
    reference_label = None
    if isinstance(reference, (str, int)) and not isinstance(reference, bool):
        reference_label = graph.label_of(graph.resolve(reference))
    return Ranking(
        selected,
        labels=graph.labels(),
        algorithm="Personalized HITS",
        parameters={"alpha": alpha, "scores": scores, "tol": tol, "max_iter": max_iter,
                    "iterations": iterations},
        graph_name=graph.name,
        reference=reference_label,
    )
