"""PageRank by power iteration on the column-stochastic transition matrix.

PageRank models a random surfer who, at every step, follows a uniformly
random outgoing edge with probability ``alpha`` (the damping factor, 0.85 in
the paper's global-ranking columns) and teleports to a random node with
probability ``1 - alpha``.  Dangling nodes (no outgoing edges) redistribute
their mass according to the teleport distribution, the standard fix that
keeps the iteration stochastic.

The same power-iteration core (:func:`power_iteration`) is shared by
Personalized PageRank and CheiRank: they only differ in the teleport vector
and in whether the graph is transposed first.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .._validation import require_positive_int, require_probability
from ..exceptions import ConvergenceError
from ..graph.csr import CSRGraph
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking

__all__ = ["pagerank", "power_iteration", "power_iteration_batch", "transition_matrix"]

#: Damping factor used by the paper for the global PageRank columns.
DEFAULT_ALPHA = 0.85
DEFAULT_TOL = 1e-10
# The power iteration contracts at rate alpha per step, so reaching a 1e-10
# residual at alpha = 0.95 takes ~450 iterations; 1000 leaves ample headroom.
DEFAULT_MAX_ITER = 1000


def transition_matrix(csr: CSRGraph):
    """Return the row-stochastic transition matrix ``P`` of a graph.

    ``P[u, v] = 1 / outdeg(u)`` for each edge ``u -> v``; rows of dangling
    nodes are left all-zero (their mass is handled separately by
    :func:`power_iteration`).
    """
    adjacency = csr.to_scipy(dtype=np.float64)
    out_degrees = np.asarray(adjacency.sum(axis=1)).ravel()
    inverse_out = np.zeros_like(out_degrees)
    nonzero = out_degrees > 0
    inverse_out[nonzero] = 1.0 / out_degrees[nonzero]
    from scipy.sparse import diags

    return diags(inverse_out) @ adjacency


def power_iteration(
    csr: CSRGraph,
    *,
    alpha: float,
    teleport: Optional[np.ndarray] = None,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Tuple[np.ndarray, int]:
    """Run the PageRank power iteration and return ``(scores, iterations)``.

    Parameters
    ----------
    csr:
        The graph in CSR form.
    alpha:
        Damping factor in [0, 1].
    teleport:
        Teleport (personalization) distribution; uniform when ``None``.  It is
        normalised to sum to 1.
    tol:
        L1 convergence threshold between successive iterates.
    max_iter:
        Maximum number of iterations before raising
        :class:`~repro.exceptions.ConvergenceError`.

    Returns
    -------
    (scores, iterations):
        ``scores`` is a probability vector over nodes; ``iterations`` is the
        number of power-iteration steps performed.
    """
    alpha = require_probability(alpha, "alpha")
    require_positive_int(max_iter, "max_iter")
    n = csr.number_of_nodes()
    if n == 0:
        return np.zeros(0, dtype=np.float64), 0
    if teleport is None:
        teleport_vector = np.full(n, 1.0 / n, dtype=np.float64)
    else:
        teleport_vector = np.asarray(teleport, dtype=np.float64)
        if teleport_vector.shape != (n,):
            raise ValueError(
                f"teleport vector has shape {teleport_vector.shape}, expected ({n},)"
            )
        if np.any(teleport_vector < 0):
            raise ValueError("teleport vector must be non-negative")
        total = teleport_vector.sum()
        if total <= 0:
            raise ValueError("teleport vector must have positive mass")
        teleport_vector = teleport_vector / total

    transition = transition_matrix(csr)
    dangling_mask = np.asarray(csr.out_degrees() == 0, dtype=np.float64)
    scores = teleport_vector.copy()
    iterations = 0
    for iterations in range(1, max_iter + 1):
        dangling_mass = float(scores @ dangling_mask)
        updated = (
            alpha * (scores @ transition)
            + alpha * dangling_mass * teleport_vector
            + (1.0 - alpha) * teleport_vector
        )
        updated = np.asarray(updated).ravel()
        # Guard against numerical drift so scores remain a distribution.
        updated_sum = updated.sum()
        if updated_sum > 0:
            updated = updated / updated_sum
        residual = float(np.abs(updated - scores).sum())
        scores = updated
        if residual < tol:
            return scores, iterations
    raise ConvergenceError(
        f"power iteration did not converge within {max_iter} iterations "
        f"(last residual {residual:.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=residual,
    )


def power_iteration_batch(
    csr: CSRGraph,
    *,
    alpha: float,
    teleports: np.ndarray,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
    transition_t=None,
) -> Tuple[np.ndarray, int]:
    """Run the PageRank power iteration for ``k`` teleport vectors at once.

    The transition matrix and the dangling mask are built a single time and
    every iteration advances a dense ``n x k`` score matrix, so the shared
    per-graph work (the dominant cost for batches of personalized queries on
    the same dataset) is paid once instead of ``k`` times.

    Parameters
    ----------
    csr:
        The graph in CSR form.
    alpha:
        Damping factor in [0, 1].
    teleports:
        ``(n, k)`` matrix whose columns are teleport (personalization)
        distributions; each column is normalised to sum to 1.
    tol:
        L1 convergence threshold, applied per column.
    max_iter:
        Maximum number of iterations before raising
        :class:`~repro.exceptions.ConvergenceError`.
    transition_t:
        Optional prebuilt ``alpha * P^T`` in ``scipy.sparse`` CSR form — the
        matrix a :class:`~repro.graph.compiled.CompiledGraph` caches per
        alpha (:meth:`~repro.graph.compiled.CompiledGraph.folded_transition_transpose`),
        so repeat batches on a cached artifact skip the rebuild.  Built from
        ``csr`` when omitted; must correspond to the same graph and alpha.

    Returns
    -------
    (scores, iterations):
        ``scores`` is an ``(n, k)`` matrix whose columns are probability
        vectors; ``iterations`` is the number of steps until the *slowest*
        column converged.
    """
    alpha = require_probability(alpha, "alpha")
    require_positive_int(max_iter, "max_iter")
    n = csr.number_of_nodes()
    teleport_matrix = np.asarray(teleports, dtype=np.float64)
    if teleport_matrix.ndim != 2 or teleport_matrix.shape[0] != n:
        raise ValueError(
            f"teleports has shape {teleport_matrix.shape}, expected ({n}, k)"
        )
    k = teleport_matrix.shape[1]
    if n == 0 or k == 0:
        return np.zeros((n, k), dtype=np.float64), 0
    if np.any(teleport_matrix < 0):
        raise ValueError("teleport vectors must be non-negative")
    column_mass = teleport_matrix.sum(axis=0)
    if np.any(column_mass <= 0):
        raise ValueError("every teleport vector must have positive mass")
    teleport_matrix = teleport_matrix / column_mass

    # `scores @ P` for a batch of columns is `P.T @ scores`; materialise the
    # transpose in CSR form once, with alpha folded into the matrix data so
    # the iteration body is one sparse-dense product plus in-place updates.
    if transition_t is None:
        transition_t = transition_matrix(csr).transpose().tocsr()
        transition_t.data = transition_t.data * alpha
    dangling_mask = np.asarray(csr.out_degrees() == 0, dtype=np.float64)
    has_dangling = bool(dangling_mask.any())
    scores = teleport_matrix.copy()
    scratch = np.empty_like(scores)
    if not has_dangling:
        # Without dangling nodes the teleport contribution is constant, so it
        # is hoisted out of the loop entirely.
        constant_teleport_term = teleport_matrix * (1.0 - alpha)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        updated = transition_t @ scores
        if has_dangling:
            teleport_coefficients = alpha * (dangling_mask @ scores) + (1.0 - alpha)  # (k,)
            np.multiply(teleport_matrix, teleport_coefficients, out=scratch)
            updated += scratch
        else:
            updated += constant_teleport_term
        # The update preserves column mass exactly in exact arithmetic, so the
        # drift guard only needs to run occasionally (and once on return).
        if iterations % 16 == 0:
            column_sums = updated.sum(axis=0)
            updated /= np.where(column_sums > 0, column_sums, 1.0)
        np.subtract(updated, scores, out=scratch)
        np.abs(scratch, out=scratch)
        residual = scratch.sum(axis=0)
        scores = updated
        if float(residual.max()) < tol:
            column_sums = scores.sum(axis=0)
            scores /= np.where(column_sums > 0, column_sums, 1.0)
            return scores, iterations
    raise ConvergenceError(
        f"batched power iteration did not converge within {max_iter} iterations "
        f"(worst residual {float(residual.max()):.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=float(residual.max()),
    )


def pagerank(
    graph: DirectedGraph,
    *,
    alpha: float = DEFAULT_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute the global PageRank of every node.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    alpha:
        Damping factor (probability of following an edge instead of
        teleporting); the paper uses 0.85.
    tol, max_iter:
        Power-iteration convergence controls.

    Returns
    -------
    Ranking
        Scores summing to 1, with provenance ``algorithm="PageRank"``.
    """
    csr = graph.to_csr()
    scores, iterations = power_iteration(csr, alpha=alpha, tol=tol, max_iter=max_iter)
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="PageRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
    )
