"""Approximate Personalized PageRank via forward push (Andersen–Chung–Lang).

The forward-push (a.k.a. local push) algorithm maintains, for every node, an
*estimate* ``p`` and a *residual* ``r`` such that the exact PPR vector equals
``p`` plus the PPR of ``r``.  It repeatedly picks a node whose residual
exceeds ``epsilon * outdeg`` and pushes a ``(1 - alpha)`` fraction of it into
the estimate, spreading the rest over the node's successors.  The result is a
sparse, local approximation whose support stays near the reference node —
exactly the regime the demo needs for interactive queries on large graphs.

The approximation guarantee is the classic one: for every node ``v``,
``|ppr(v) - p(v)| <= epsilon * outdeg(v)``.

Note on convention: this implementation uses ``alpha`` as the *damping*
factor (probability of continuing the walk), matching the rest of the
library, rather than the restart-probability convention of the original
paper.
"""

from __future__ import annotations

from collections import deque
from typing import List, Sequence, Tuple

import numpy as np

from .._validation import require_positive_float, require_positive_int, require_probability
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .personalized_pagerank import (
    DEFAULT_PPR_ALPHA,
    ReferenceSpec,
    _reference_label_for,
    teleport_vector_for,
)

__all__ = ["ppr_push", "ppr_push_batch"]

DEFAULT_EPSILON = 1e-6
DEFAULT_MAX_PUSHES = 10_000_000


def ppr_push(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    epsilon: float = DEFAULT_EPSILON,
    max_pushes: int = DEFAULT_MAX_PUSHES,
) -> Ranking:
    """Approximate Personalized PageRank by forward push.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    reference:
        The query node (id or label), node set, or weighted teleport mapping.
    alpha:
        Damping factor (probability of following an edge).
    epsilon:
        Per-out-degree residual threshold controlling the accuracy/locality
        trade-off; smaller values give estimates closer to exact PPR.
    max_pushes:
        Safety cap on the number of push operations.

    Returns
    -------
    Ranking
        Approximate PPR scores normalised to sum to 1 (so they are directly
        comparable with the exact solver's output).
    """
    alpha = require_probability(alpha, "alpha")
    epsilon = require_positive_float(epsilon, "epsilon")
    require_positive_int(max_pushes, "max_pushes")

    teleport = teleport_vector_for(graph, reference)
    out_degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    successor_lists = graph.successor_lists()
    estimate, pushes = _push_core(
        teleport,
        out_degrees,
        successor_lists,
        alpha=alpha,
        epsilon=epsilon,
        max_pushes=max_pushes,
    )
    return Ranking(
        estimate,
        labels=graph.labels(),
        algorithm="PPR (forward push)",
        parameters={"alpha": alpha, "epsilon": epsilon, "pushes": pushes},
        graph_name=graph.name,
        reference=_reference_label_for(graph, reference),
    )


def _push_core(
    teleport: np.ndarray,
    out_degrees: np.ndarray,
    successor_lists,
    *,
    alpha: float,
    epsilon: float,
    max_pushes: int,
) -> Tuple[np.ndarray, int]:
    """Run the forward-push loop for one teleport vector.

    Shared by the single-query and the batched entry points so both produce
    bit-identical estimates; returns the normalised estimate and the number
    of pushes performed.
    """
    n = teleport.size
    estimate = np.zeros(n, dtype=np.float64)
    residual = teleport.copy()

    # Work queue of nodes whose residual may exceed the push threshold.
    queue = deque(int(node) for node in np.nonzero(residual)[0])
    queued = set(queue)
    pushes = 0
    while queue and pushes < max_pushes:
        node = queue.popleft()
        queued.discard(node)
        degree = out_degrees[node]
        threshold = epsilon * max(degree, 1.0)
        if residual[node] < threshold:
            continue
        pushes += 1
        mass = residual[node]
        residual[node] = 0.0
        estimate[node] += (1.0 - alpha) * mass
        if degree > 0:
            share = alpha * mass / degree
            for successor in successor_lists[node]:
                residual[successor] += share
                if successor not in queued and residual[successor] >= epsilon * max(
                    out_degrees[successor], 1.0
                ):
                    queue.append(successor)
                    queued.add(successor)
        else:
            # Dangling node: its continued mass restarts at the teleport
            # distribution, mirroring the exact solver's dangling fix.
            restart = alpha * mass
            residual += restart * teleport
            for target in np.nonzero(teleport)[0]:
                target = int(target)
                if target not in queued:
                    queue.append(target)
                    queued.add(target)
        # Re-examine the node itself if teleport pushed mass back onto it.
        if residual[node] >= threshold and node not in queued:
            queue.append(node)
            queued.add(node)

    total = estimate.sum()
    if total > 0:
        estimate = estimate / total
    return estimate, pushes


def ppr_push_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    epsilon: float = DEFAULT_EPSILON,
    max_pushes: int = DEFAULT_MAX_PUSHES,
) -> List[Ranking]:
    """Approximate Personalized PageRank by forward push for many references.

    The push loop is inherently per-reference, but the out-degree vector and
    the successor lists (the expensive graph-shaped precomputation) are built
    once and shared by the whole batch.  Each result is bit-identical to the
    corresponding single :func:`ppr_push` call.
    """
    references = list(references)
    if not references:
        return []
    alpha = require_probability(alpha, "alpha")
    epsilon = require_positive_float(epsilon, "epsilon")
    require_positive_int(max_pushes, "max_pushes")

    out_degrees = np.asarray(graph.out_degrees(), dtype=np.float64)
    successor_lists = graph.successor_lists()
    labels = np.asarray(graph.labels(), dtype=str)
    results = []
    for reference in references:
        teleport = teleport_vector_for(graph, reference)
        estimate, pushes = _push_core(
            teleport,
            out_degrees,
            successor_lists,
            alpha=alpha,
            epsilon=epsilon,
            max_pushes=max_pushes,
        )
        results.append(
            Ranking(
                estimate,
                labels=labels,
                algorithm="PPR (forward push)",
                parameters={"alpha": alpha, "epsilon": epsilon, "pushes": pushes},
                graph_name=graph.name,
                reference=_reference_label_for(graph, reference),
            )
        )
    return results
