"""Registry of runnable algorithms and their concrete :class:`Algorithm` wrappers.

The registry maps the names used in task parameters (``"cyclerank"``,
``"pagerank"``, ...) to :class:`~repro.algorithms.base.Algorithm` instances.
The seven algorithms of the paper are pre-registered; users add their own
with :func:`register_algorithm`, which is all it takes for a new algorithm to
become selectable from the task builder, the gateway API and the CLI.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..exceptions import AlgorithmNotFoundError, InvalidParameterError
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from ..scoring import available_scoring_functions
from .base import Algorithm, AlgorithmSpec, ParameterSpec
from .cheirank import cheirank, personalized_cheirank, personalized_cheirank_batch
from .cyclerank import cyclerank, cyclerank_batch
from .hits import hits, personalized_hits, personalized_hits_batch
from .katz import katz_centrality, personalized_katz, personalized_katz_batch
from .pagerank import pagerank
from .personalized_pagerank import personalized_pagerank, personalized_pagerank_batch
from .ppr_montecarlo import ppr_montecarlo, ppr_montecarlo_batch
from .ppr_push import ppr_push, ppr_push_batch
from .twodrank import personalized_twodrank, personalized_twodrank_batch, twodrank

__all__ = [
    "register_algorithm",
    "get_algorithm",
    "available_algorithms",
    "run_algorithm",
    "run_batch",
    "PAPER_ALGORITHMS",
]

_ALPHA_SPEC = ParameterSpec(
    name="alpha",
    kind="float",
    default=0.85,
    minimum=0.0,
    maximum=1.0,
    description="damping factor: probability of following an edge instead of teleporting",
)

_MAX_ITER_SPEC = ParameterSpec(
    name="max_iter",
    kind="int",
    default=1000,
    minimum=1,
    description="maximum number of power-iteration steps",
)


class _PageRankAlgorithm(Algorithm):
    """Global PageRank (registry name ``pagerank``)."""

    spec = AlgorithmSpec(
        name="pagerank",
        display_name="PageRank",
        personalized=False,
        parameters=(_ALPHA_SPEC, _MAX_ITER_SPEC),
        description="Global importance from incoming connections (random-surfer model).",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return pagerank(graph, alpha=parameters["alpha"], max_iter=parameters["max_iter"])


class _PersonalizedPageRankAlgorithm(Algorithm):
    """Personalized PageRank (registry name ``personalized-pagerank``)."""

    spec = AlgorithmSpec(
        name="personalized-pagerank",
        display_name="Pers. PageRank",
        personalized=True,
        parameters=(_ALPHA_SPEC, _MAX_ITER_SPEC),
        description="PageRank whose teleport always returns to the reference node.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return personalized_pagerank(
            graph, source, alpha=parameters["alpha"], max_iter=parameters["max_iter"]
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return personalized_pagerank_batch(
            graph, sources, alpha=parameters["alpha"], max_iter=parameters["max_iter"]
        )


class _CheiRankAlgorithm(Algorithm):
    """Global CheiRank (registry name ``cheirank``)."""

    spec = AlgorithmSpec(
        name="cheirank",
        display_name="CheiRank",
        personalized=False,
        parameters=(_ALPHA_SPEC, _MAX_ITER_SPEC),
        description="PageRank computed on the transposed graph (outgoing connections).",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return cheirank(graph, alpha=parameters["alpha"], max_iter=parameters["max_iter"])


class _PersonalizedCheiRankAlgorithm(Algorithm):
    """Personalized CheiRank (registry name ``personalized-cheirank``)."""

    spec = AlgorithmSpec(
        name="personalized-cheirank",
        display_name="Pers. CheiRank",
        personalized=True,
        parameters=(_ALPHA_SPEC, _MAX_ITER_SPEC),
        description="Personalized PageRank on the transposed graph.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return personalized_cheirank(
            graph, source, alpha=parameters["alpha"], max_iter=parameters["max_iter"]
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return personalized_cheirank_batch(
            graph, sources, alpha=parameters["alpha"], max_iter=parameters["max_iter"]
        )


class _TwoDRankAlgorithm(Algorithm):
    """Global 2DRank (registry name ``2drank``)."""

    spec = AlgorithmSpec(
        name="2drank",
        display_name="2DRank",
        personalized=False,
        parameters=(_ALPHA_SPEC, _MAX_ITER_SPEC),
        description="Two-dimensional combination of PageRank and CheiRank (ranking only).",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return twodrank(graph, alpha=parameters["alpha"], max_iter=parameters["max_iter"])


class _PersonalizedTwoDRankAlgorithm(Algorithm):
    """Personalized 2DRank (registry name ``personalized-2drank``)."""

    spec = AlgorithmSpec(
        name="personalized-2drank",
        display_name="Pers. 2DRank",
        personalized=True,
        parameters=(_ALPHA_SPEC, _MAX_ITER_SPEC),
        description="2DRank built from Personalized PageRank and Personalized CheiRank.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return personalized_twodrank(
            graph, source, alpha=parameters["alpha"], max_iter=parameters["max_iter"]
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return personalized_twodrank_batch(
            graph, sources, alpha=parameters["alpha"], max_iter=parameters["max_iter"]
        )


class _CycleRankAlgorithm(Algorithm):
    """CycleRank (registry name ``cyclerank``)."""

    spec = AlgorithmSpec(
        name="cyclerank",
        display_name="Cyclerank",
        personalized=True,
        parameters=(
            ParameterSpec(
                name="k",
                kind="int",
                default=3,
                minimum=2,
                maximum=10,
                description="maximum cycle length K considered by Equation 1",
            ),
            ParameterSpec(
                name="sigma",
                kind="str",
                default="exp",
                choices=tuple(available_scoring_functions()),
                description="scoring function weighting cycles by their length",
            ),
        ),
        description="Personalized relevance from the cycles through the reference node.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return cyclerank(
            graph, source, max_cycle_length=parameters["k"], scoring=parameters["sigma"]
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return cyclerank_batch(
            graph, sources, max_cycle_length=parameters["k"], scoring=parameters["sigma"]
        )


class _PushPPRAlgorithm(Algorithm):
    """Forward-push approximate PPR (registry name ``ppr-push``, extension)."""

    spec = AlgorithmSpec(
        name="ppr-push",
        display_name="PPR (push)",
        personalized=True,
        parameters=(
            _ALPHA_SPEC,
            ParameterSpec(
                name="epsilon",
                kind="float",
                default=1e-6,
                minimum=0.0,
                description="per-out-degree residual threshold (accuracy/locality trade-off)",
            ),
        ),
        description="Local forward-push approximation of Personalized PageRank.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return ppr_push(
            graph, source, alpha=parameters["alpha"], epsilon=parameters["epsilon"]
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return ppr_push_batch(
            graph, sources, alpha=parameters["alpha"], epsilon=parameters["epsilon"]
        )


class _MonteCarloPPRAlgorithm(Algorithm):
    """Monte-Carlo approximate PPR (registry name ``ppr-montecarlo``, extension)."""

    spec = AlgorithmSpec(
        name="ppr-montecarlo",
        display_name="PPR (Monte Carlo)",
        personalized=True,
        parameters=(
            _ALPHA_SPEC,
            ParameterSpec(
                name="num_walks",
                kind="int",
                default=10_000,
                minimum=1,
                description="number of random walks simulated from the reference node",
            ),
            ParameterSpec(
                name="seed",
                kind="int",
                default=0,
                description="pseudo-random generator seed",
            ),
        ),
        description="Monte-Carlo random-walk estimate of Personalized PageRank.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return ppr_montecarlo(
            graph,
            source,
            alpha=parameters["alpha"],
            num_walks=parameters["num_walks"],
            seed=parameters["seed"],
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return ppr_montecarlo_batch(
            graph,
            sources,
            alpha=parameters["alpha"],
            num_walks=parameters["num_walks"],
            seed=parameters["seed"],
        )


_HITS_MAX_ITER_SPEC = ParameterSpec(
    name="max_iter",
    kind="int",
    default=5000,
    minimum=1,
    description="maximum number of HITS iterations (its contraction can be slow)",
)


class _HitsAlgorithm(Algorithm):
    """Global HITS authorities (registry name ``hits``, extension)."""

    spec = AlgorithmSpec(
        name="hits",
        display_name="HITS",
        personalized=False,
        parameters=(
            ParameterSpec(
                name="scores",
                kind="str",
                default="authority",
                choices=("authority", "hub"),
                description="rank by authority or by hub score",
            ),
            _HITS_MAX_ITER_SPEC,
        ),
        description="Hubs-and-authorities mutual reinforcement (Kleinberg).",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return hits(graph, scores=parameters["scores"], max_iter=parameters["max_iter"])


class _PersonalizedHitsAlgorithm(Algorithm):
    """Rooted HITS (registry name ``personalized-hits``, extension)."""

    spec = AlgorithmSpec(
        name="personalized-hits",
        display_name="Pers. HITS",
        personalized=True,
        parameters=(
            _ALPHA_SPEC,
            ParameterSpec(
                name="scores",
                kind="str",
                default="authority",
                choices=("authority", "hub"),
                description="rank by authority or by hub score",
            ),
            _HITS_MAX_ITER_SPEC,
        ),
        description="HITS whose authority mass restarts at the reference node.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return personalized_hits(
            graph, source, alpha=parameters["alpha"], scores=parameters["scores"],
            max_iter=parameters["max_iter"],
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return personalized_hits_batch(
            graph, sources, alpha=parameters["alpha"], scores=parameters["scores"],
            max_iter=parameters["max_iter"],
        )


_BETA_SPEC = ParameterSpec(
    name="beta",
    kind="float",
    default=0.05,
    minimum=0.0,
    description="walk-length damping factor (must stay below 1 / spectral radius)",
)


class _KatzAlgorithm(Algorithm):
    """Global Katz centrality (registry name ``katz``, extension)."""

    spec = AlgorithmSpec(
        name="katz",
        display_name="Katz",
        personalized=False,
        parameters=(_BETA_SPEC, _MAX_ITER_SPEC),
        description="Damped count of incoming walks of every length.",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return katz_centrality(graph, beta=parameters["beta"], max_iter=parameters["max_iter"])


class _PersonalizedKatzAlgorithm(Algorithm):
    """Personalized Katz index (registry name ``personalized-katz``, extension)."""

    spec = AlgorithmSpec(
        name="personalized-katz",
        display_name="Pers. Katz",
        personalized=True,
        parameters=(_BETA_SPEC, _MAX_ITER_SPEC),
        description="Damped count of walks from the reference node (Katz relatedness index).",
    )

    def _execute(self, graph: DirectedGraph, *, source, parameters) -> Ranking:
        return personalized_katz(
            graph, source, beta=parameters["beta"], max_iter=parameters["max_iter"]
        )

    def _execute_batch(self, graph: DirectedGraph, *, sources, parameters) -> List[Ranking]:
        return personalized_katz_batch(
            graph, sources, beta=parameters["beta"], max_iter=parameters["max_iter"]
        )


#: The seven algorithms showcased in the paper, in the order it lists them.
PAPER_ALGORITHMS = (
    "cyclerank",
    "pagerank",
    "personalized-pagerank",
    "cheirank",
    "personalized-cheirank",
    "2drank",
    "personalized-2drank",
)

_REGISTRY: Dict[str, Algorithm] = {}


def register_algorithm(algorithm: Algorithm, *, replace: bool = False) -> Algorithm:
    """Register an :class:`Algorithm` instance under its spec name.

    Set ``replace=True`` to overwrite an existing registration (useful in
    tests and when experimenting with variants).
    """
    name = algorithm.name
    if not name:
        raise InvalidParameterError("algorithm spec must define a non-empty name")
    if name in _REGISTRY and not replace:
        raise InvalidParameterError(
            f"algorithm {name!r} is already registered; pass replace=True to overwrite"
        )
    _REGISTRY[name] = algorithm
    return algorithm


def get_algorithm(name: str) -> Algorithm:
    """Return the registered algorithm called ``name``.

    Lookup is case-insensitive and tolerant of ``_`` vs ``-``.
    """
    normalized = name.strip().lower().replace("_", "-")
    algorithm = _REGISTRY.get(normalized)
    if algorithm is None:
        raise AlgorithmNotFoundError(name)
    return algorithm


def available_algorithms(*, personalized: Optional[bool] = None) -> List[str]:
    """Return registered algorithm names, optionally filtered by personalization."""
    names = []
    for name, algorithm in sorted(_REGISTRY.items()):
        if personalized is None or algorithm.is_personalized == personalized:
            names.append(name)
    return names


def run_algorithm(
    name: str,
    graph: DirectedGraph,
    *,
    source: Optional[str] = None,
    parameters: Optional[Mapping[str, Any]] = None,
) -> Ranking:
    """Look up ``name`` in the registry and run it on ``graph``."""
    return get_algorithm(name).run(graph, source=source, parameters=parameters)


def run_batch(
    name: str,
    graph: DirectedGraph,
    *,
    sources: Sequence[Optional[str]],
    parameters: Optional[Mapping[str, Any]] = None,
) -> List[Ranking]:
    """Run ``name`` for many sources sharing one parameter set.

    Algorithms with a native batch kernel (the PageRank family and the PPR
    approximations) amortise the per-graph work across the batch; every other
    algorithm transparently falls back to a per-source loop.
    """
    return get_algorithm(name).run_batch(graph, sources=sources, parameters=parameters)


for _algorithm_class in (
    _PageRankAlgorithm,
    _PersonalizedPageRankAlgorithm,
    _CheiRankAlgorithm,
    _PersonalizedCheiRankAlgorithm,
    _TwoDRankAlgorithm,
    _PersonalizedTwoDRankAlgorithm,
    _CycleRankAlgorithm,
    _PushPPRAlgorithm,
    _MonteCarloPPRAlgorithm,
    _HitsAlgorithm,
    _PersonalizedHitsAlgorithm,
    _KatzAlgorithm,
    _PersonalizedKatzAlgorithm,
):
    register_algorithm(_algorithm_class())
