"""Katz centrality and the personalized Katz relatedness index.

Katz centrality scores a node by the number of walks arriving at it, damped
exponentially in the walk length: ``x = Σ_{l>=1} (beta * A^T)^l 1``.  The
*personalized* variant — often called the Katz index between two nodes — is
the classic link-prediction relatedness measure: the score of node ``i`` with
respect to a reference ``r`` is the damped count of walks *from r to i*,

.. math::

    K_r(i) = \\sum_{l \\ge 1} \\beta^l \\, (A^l)_{r,i}

which makes it a natural additional baseline for the demo's personalized
relevance comparison (like CycleRank it counts paths explicitly, unlike
CycleRank it does not require paths back to the reference).  Both variants
are registered as ``katz`` / ``personalized-katz``.

The personalized series is accumulated for a whole batch of references at
once (:func:`personalized_katz_batch`): every reference is one row of a
``k x n`` walk-count matrix advanced by a single sparse product per term,
with each row frozen at its own truncation point — so a batched run returns
exactly the rankings of per-reference calls while paying the adjacency build
once.  The single-reference :func:`personalized_katz` is the ``k = 1``
special case of the same kernel.

Convergence requires ``beta`` to be smaller than the reciprocal of the
adjacency matrix's spectral radius; the iteration detects divergence and
reports it as a :class:`~repro.exceptions.ConvergenceError`.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .._validation import require_positive_float, require_positive_int
from ..exceptions import ConvergenceError
from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .personalized_pagerank import (
    ReferenceSpec,
    _reference_label_for,
    teleport_vector_for,
)

__all__ = ["katz_centrality", "personalized_katz", "personalized_katz_batch"]

DEFAULT_BETA = 0.05
DEFAULT_TOL = 1e-12
DEFAULT_MAX_ITER = 1000
#: Abort when the accumulated scores exceed this magnitude — beta is beyond
#: the convergence radius and the series diverges.
_DIVERGENCE_LIMIT = 1e12


def _katz_series(
    adjacency,
    start: np.ndarray,
    *,
    beta: float,
    tol: float,
    max_iter: int,
) -> tuple[np.ndarray, int]:
    """Accumulate ``Σ_{l>=1} beta^l * (A^T)^l start`` (the global variant)."""
    total = np.zeros_like(start)
    term = start.copy()
    for iteration in range(1, max_iter + 1):
        term = beta * np.asarray(adjacency.T @ term).ravel()
        total += term
        magnitude = float(np.abs(term).sum())
        if not np.isfinite(magnitude) or magnitude > _DIVERGENCE_LIMIT:
            raise ConvergenceError(
                f"the Katz series diverges for beta={beta}; choose a smaller beta "
                "(it must be below 1 / spectral radius of the adjacency matrix)",
                iterations=iteration,
                residual=magnitude,
            )
        if magnitude < tol:
            return total, iteration
    raise ConvergenceError(
        f"the Katz series did not converge within {max_iter} iterations "
        f"(last term magnitude {magnitude:.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=magnitude,
    )


def _katz_series_rows(
    adjacency,
    starts: np.ndarray,
    *,
    beta: float,
    tol: float,
    max_iter: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Accumulate ``Σ_{l>=1} beta^l * starts @ A^l`` row by row, batched.

    ``starts`` is ``(k, n)`` — one walk-origin distribution per row.  All
    still-running rows advance through one sparse product per term; a row is
    frozen (its accumulation stops, its truncation point recorded) as soon as
    its term magnitude drops below ``tol``, so each row reproduces exactly
    the series a single-reference run would compute.

    Returns ``(totals, iterations)`` with shapes ``(k, n)`` and ``(k,)``.
    """
    k = starts.shape[0]
    totals = np.zeros_like(starts)
    term = starts.copy()
    iterations = np.zeros(k, dtype=np.int64)
    active = np.arange(k)
    for iteration in range(1, max_iter + 1):
        new_terms = beta * np.asarray(term[active] @ adjacency)
        totals[active] += new_terms
        term[active] = new_terms
        magnitudes = np.abs(new_terms).sum(axis=1)
        diverged = ~np.isfinite(magnitudes) | (magnitudes > _DIVERGENCE_LIMIT)
        if diverged.any():
            raise ConvergenceError(
                f"the Katz series diverges for beta={beta}; choose a smaller beta "
                "(it must be below 1 / spectral radius of the adjacency matrix)",
                iterations=iteration,
                residual=float(magnitudes[diverged].max()),
            )
        converged = magnitudes < tol
        if converged.any():
            iterations[active[converged]] = iteration
            active = active[~converged]
            if active.size == 0:
                return totals, iterations
    raise ConvergenceError(
        f"the Katz series did not converge within {max_iter} iterations "
        f"(last term magnitude {float(magnitudes.max()):.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=float(magnitudes.max()),
    )


def katz_centrality(
    graph: DirectedGraph,
    *,
    beta: float = DEFAULT_BETA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute global Katz centrality (damped count of incoming walks).

    Parameters
    ----------
    beta:
        Damping factor per walk step; must be below the reciprocal of the
        adjacency matrix's spectral radius for the series to converge.
    tol, max_iter:
        Series-truncation controls.
    """
    beta = require_positive_float(beta, "beta")
    require_positive_int(max_iter, "max_iter")
    n = graph.number_of_nodes()
    if n == 0:
        return Ranking([], algorithm="Katz", graph_name=graph.name)
    adjacency = compiled_of(graph).adjacency()
    ones = np.ones(n, dtype=np.float64)
    scores, iterations = _katz_series(
        adjacency, ones, beta=beta, tol=tol, max_iter=max_iter
    )
    total = scores.sum()
    if total > 0:
        scores = scores / total
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="Katz",
        parameters={"beta": beta, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
    )


def personalized_katz(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    beta: float = DEFAULT_BETA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute the Katz relatedness of every node to ``reference``.

    The score of node ``i`` is the damped number of walks from the reference
    to ``i`` (the reference itself scores the damped count of closed walks
    through it plus an explicit 1 so it always tops the ranking, mirroring
    the other personalized algorithms).
    """
    return personalized_katz_batch(
        graph, [reference], beta=beta, tol=tol, max_iter=max_iter
    )[0]


def personalized_katz_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    beta: float = DEFAULT_BETA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> List[Ranking]:
    """Compute the Katz relatedness index for many references in one pass.

    The adjacency matrix is built (or fetched from a compiled artifact) once
    and the damped walk counts of all references advance together, one row
    each (see :func:`_katz_series_rows`); results are identical to
    per-reference :func:`personalized_katz` calls.

    Parameters
    ----------
    graph:
        The directed graph to rank.
    references:
        One reference spec per query (node, node set, or weighted mapping).
    beta, tol, max_iter:
        As in :func:`personalized_katz`, shared by the whole batch.

    Returns
    -------
    list of Ranking
        One ranking per reference, in input order.
    """
    beta = require_positive_float(beta, "beta")
    require_positive_int(max_iter, "max_iter")
    references = list(references)
    if not references:
        return []
    compiled = compiled_of(graph)
    adjacency = compiled.adjacency()
    starts = np.vstack(
        [teleport_vector_for(compiled, reference) for reference in references]
    )
    totals, iterations = _katz_series_rows(
        adjacency, starts, beta=beta, tol=tol, max_iter=max_iter
    )
    labels = compiled.labels_array()
    rankings: List[Ranking] = []
    for row, reference in enumerate(references):
        scores = totals[row]
        start = starts[row]
        # Guarantee the reference node holds the maximum score, as for the
        # other personalized algorithms (it is the node trivially most
        # related to itself).
        scores = scores + start * (scores.max() + 1.0 if scores.size else 1.0)
        total = scores.sum()
        if total > 0:
            scores = scores / total
        rankings.append(
            Ranking(
                scores,
                labels=labels,
                algorithm="Personalized Katz",
                parameters={"beta": beta, "tol": tol, "max_iter": max_iter,
                            "iterations": int(iterations[row])},
                graph_name=compiled.name,
                reference=_reference_label_for(compiled, reference),
            )
        )
    return rankings
