"""Katz centrality and the personalized Katz relatedness index.

Katz centrality scores a node by the number of walks arriving at it, damped
exponentially in the walk length: ``x = Σ_{l>=1} (beta * A^T)^l 1``.  The
*personalized* variant — often called the Katz index between two nodes — is
the classic link-prediction relatedness measure: the score of node ``i`` with
respect to a reference ``r`` is the damped count of walks *from r to i*,

.. math::

    K_r(i) = \\sum_{l \\ge 1} \\beta^l \\, (A^l)_{r,i}

which makes it a natural additional baseline for the demo's personalized
relevance comparison (like CycleRank it counts paths explicitly, unlike
CycleRank it does not require paths back to the reference).  Both variants
are registered as ``katz`` / ``personalized-katz``.

Convergence requires ``beta`` to be smaller than the reciprocal of the
adjacency matrix's spectral radius; the iteration detects divergence and
reports it as a :class:`~repro.exceptions.ConvergenceError`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import require_positive_float, require_positive_int
from ..exceptions import ConvergenceError
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .personalized_pagerank import ReferenceSpec, teleport_vector_for

__all__ = ["katz_centrality", "personalized_katz"]

DEFAULT_BETA = 0.05
DEFAULT_TOL = 1e-12
DEFAULT_MAX_ITER = 1000
#: Abort when the accumulated scores exceed this magnitude — beta is beyond
#: the convergence radius and the series diverges.
_DIVERGENCE_LIMIT = 1e12


def _katz_series(
    adjacency,
    start: np.ndarray,
    *,
    beta: float,
    tol: float,
    max_iter: int,
    transpose: bool,
) -> tuple[np.ndarray, int]:
    """Accumulate ``Σ_{l>=1} beta^l * start @ A^l`` (or ``A^T``)."""
    total = np.zeros_like(start)
    term = start.copy()
    for iteration in range(1, max_iter + 1):
        term = beta * np.asarray((term @ adjacency) if not transpose else (adjacency.T @ term)).ravel()
        total += term
        magnitude = float(np.abs(term).sum())
        if not np.isfinite(magnitude) or magnitude > _DIVERGENCE_LIMIT:
            raise ConvergenceError(
                f"the Katz series diverges for beta={beta}; choose a smaller beta "
                "(it must be below 1 / spectral radius of the adjacency matrix)",
                iterations=iteration,
                residual=magnitude,
            )
        if magnitude < tol:
            return total, iteration
    raise ConvergenceError(
        f"the Katz series did not converge within {max_iter} iterations "
        f"(last term magnitude {magnitude:.3e}, tol {tol:.3e})",
        iterations=max_iter,
        residual=magnitude,
    )


def katz_centrality(
    graph: DirectedGraph,
    *,
    beta: float = DEFAULT_BETA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute global Katz centrality (damped count of incoming walks).

    Parameters
    ----------
    beta:
        Damping factor per walk step; must be below the reciprocal of the
        adjacency matrix's spectral radius for the series to converge.
    tol, max_iter:
        Series-truncation controls.
    """
    beta = require_positive_float(beta, "beta")
    require_positive_int(max_iter, "max_iter")
    n = graph.number_of_nodes()
    if n == 0:
        return Ranking([], algorithm="Katz", graph_name=graph.name)
    adjacency = graph.to_csr().to_scipy()
    ones = np.ones(n, dtype=np.float64)
    scores, iterations = _katz_series(
        adjacency, ones, beta=beta, tol=tol, max_iter=max_iter, transpose=True
    )
    total = scores.sum()
    if total > 0:
        scores = scores / total
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="Katz",
        parameters={"beta": beta, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
    )


def personalized_katz(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    beta: float = DEFAULT_BETA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute the Katz relatedness of every node to ``reference``.

    The score of node ``i`` is the damped number of walks from the reference
    to ``i`` (the reference itself scores the damped count of closed walks
    through it plus an explicit 1 so it always tops the ranking, mirroring
    the other personalized algorithms).
    """
    beta = require_positive_float(beta, "beta")
    require_positive_int(max_iter, "max_iter")
    n = graph.number_of_nodes()
    adjacency = graph.to_csr().to_scipy()
    start = teleport_vector_for(graph, reference)
    scores, iterations = _katz_series(
        adjacency, start, beta=beta, tol=tol, max_iter=max_iter, transpose=False
    )
    # Guarantee the reference node holds the maximum score, as for the other
    # personalized algorithms (it is the node trivially most related to itself).
    scores = scores + start * (scores.max() + 1.0 if scores.size else 1.0)
    total = scores.sum()
    if total > 0:
        scores = scores / total
    reference_label: Optional[str] = None
    if isinstance(reference, (str, int)) and not isinstance(reference, bool):
        reference_label = graph.label_of(graph.resolve(reference))
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="Personalized Katz",
        parameters={"beta": beta, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
        reference=reference_label,
    )
