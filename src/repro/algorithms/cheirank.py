"""CheiRank: PageRank computed on the transposed graph.

Chepelianskii (2010) observed that running PageRank on the graph with every
edge reversed measures how "communicative" a node is — how many relevant
nodes it points *to* rather than how many point to it.  Zhirov et al. later
combined CheiRank with PageRank into the two-dimensional ranking (2DRank)
also included in the demo.

The implementation is intentionally a thin wrapper: ``CheiRank(G, ...) ==
PageRank(Gᵀ, ...)`` by definition, and the equality is asserted exactly by a
property test.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..graph.compiled import compiled_of
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking
from .pagerank import (
    DEFAULT_ALPHA,
    DEFAULT_MAX_ITER,
    DEFAULT_TOL,
    power_iteration,
    power_iteration_batch,
)
from .personalized_pagerank import (
    DEFAULT_PPR_ALPHA,
    ReferenceSpec,
    _reference_label_for,
    teleport_vector_for,
)

__all__ = ["cheirank", "personalized_cheirank", "personalized_cheirank_batch"]


def cheirank(
    graph: DirectedGraph,
    *,
    alpha: float = DEFAULT_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute the global CheiRank of every node.

    Parameters mirror :func:`~repro.algorithms.pagerank.pagerank`; the only
    difference is that the random surfer follows edges backwards.
    """
    transposed = graph.transpose()
    csr = transposed.to_csr()
    scores, iterations = power_iteration(csr, alpha=alpha, tol=tol, max_iter=max_iter)
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="CheiRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
    )


def personalized_cheirank(
    graph: DirectedGraph,
    reference: ReferenceSpec,
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> Ranking:
    """Compute Personalized CheiRank: PPR on the transposed graph.

    The teleport is concentrated on ``reference`` exactly as in
    :func:`~repro.algorithms.personalized_pagerank.personalized_pagerank`,
    but the walk follows reversed edges, measuring relevance through
    *outgoing* connectivity of the reference node.
    """
    transposed = graph.transpose()
    teleport = teleport_vector_for(transposed, reference)
    csr = transposed.to_csr()
    scores, iterations = power_iteration(
        csr, alpha=alpha, teleport=teleport, tol=tol, max_iter=max_iter
    )
    reference_label = _reference_label_for(graph, reference)
    return Ranking(
        scores,
        labels=graph.labels(),
        algorithm="Personalized CheiRank",
        parameters={"alpha": alpha, "tol": tol, "max_iter": max_iter, "iterations": iterations},
        graph_name=graph.name,
        reference=reference_label,
    )


def personalized_cheirank_batch(
    graph: DirectedGraph,
    references: Sequence[ReferenceSpec],
    *,
    alpha: float = DEFAULT_PPR_ALPHA,
    tol: float = DEFAULT_TOL,
    max_iter: int = DEFAULT_MAX_ITER,
) -> List[Ranking]:
    """Compute Personalized CheiRank for many references in one pass.

    The reversed-graph CSR and the alpha-folded transition matrix come from
    the graph's :class:`~repro.graph.compiled.CompiledGraph` artifact
    (``reverse=True`` direction), so a batch shares them across every
    reference — and repeat batches on a platform-cached artifact skip the
    build entirely; all teleport vectors then power-iterate together (the
    batched analogue of :func:`personalized_cheirank`).
    """
    references = list(references)
    if not references:
        return []
    compiled = compiled_of(graph)
    teleports = np.column_stack(
        [teleport_vector_for(graph, reference) for reference in references]
    )
    scores, iterations = power_iteration_batch(
        compiled.transpose_csr(),
        alpha=alpha,
        teleports=teleports,
        tol=tol,
        max_iter=max_iter,
        transition_t=compiled.folded_transition_transpose(alpha, reverse=True),
    )
    # One shared label array for the whole batch (Ranking reuses it as-is).
    labels = np.asarray(graph.labels(), dtype=str)
    return [
        Ranking(
            scores[:, column],
            labels=labels,
            algorithm="Personalized CheiRank",
            parameters={
                "alpha": alpha,
                "tol": tol,
                "max_iter": max_iter,
                "iterations": iterations,
            },
            graph_name=graph.name,
            reference=_reference_label_for(graph, reference),
        )
        for column, reference in enumerate(references)
    ]
