"""Class-based algorithm interface used by the platform.

The functional interface (:func:`repro.algorithms.pagerank`, ...) is what a
library user calls directly.  The platform, however, receives tasks as plain
data — an algorithm *name*, an optional *source* (reference node label) and a
dictionary of *parameters* typed in the task-builder UI — and therefore needs
a uniform, introspectable way to:

* discover which algorithms exist (``available_algorithms()``),
* know which parameters each accepts, with types, defaults and bounds
  (:class:`ParameterSpec`), so the UI can render the right form fields,
* validate and coerce the user-supplied parameter dictionary,
* and finally execute the run.

:class:`Algorithm` encapsulates exactly that.  Adding a new algorithm to the
demo amounts to subclassing :class:`Algorithm` and registering it — the
"demo design enables the possibility of adding new algorithms" property the
paper highlights.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph
from ..ranking.result import Ranking

__all__ = ["ParameterSpec", "AlgorithmSpec", "Algorithm"]


@dataclass(frozen=True)
class ParameterSpec:
    """Description of one algorithm parameter.

    Attributes
    ----------
    name:
        Parameter name as typed in task parameters (e.g. ``"alpha"``, ``"k"``).
    kind:
        One of ``"float"``, ``"int"``, ``"str"``.
    default:
        Default value used when the task omits the parameter.
    minimum, maximum:
        Optional numeric bounds (inclusive).
    choices:
        Optional allowed values for string parameters.
    description:
        Human-readable help text shown by the UI and the CLI.
    """

    name: str
    kind: str
    default: Any
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    choices: Optional[Tuple[str, ...]] = None
    description: str = ""

    def coerce(self, value: Any) -> Any:
        """Validate and convert ``value`` to this parameter's type.

        Raises
        ------
        InvalidParameterError
            If the value cannot be converted or violates bounds/choices.
        """
        if value is None:
            return self.default
        try:
            if self.kind == "float":
                coerced: Any = float(value)
            elif self.kind == "int":
                coerced = int(value)
            elif self.kind == "str":
                coerced = str(value)
            else:
                raise InvalidParameterError(
                    f"parameter {self.name!r} has unknown kind {self.kind!r}"
                )
        except (TypeError, ValueError) as exc:
            raise InvalidParameterError(
                f"parameter {self.name!r} expects a {self.kind}, got {value!r}"
            ) from exc
        if self.minimum is not None and coerced < self.minimum:
            raise InvalidParameterError(
                f"parameter {self.name!r} must be >= {self.minimum}, got {coerced!r}"
            )
        if self.maximum is not None and coerced > self.maximum:
            raise InvalidParameterError(
                f"parameter {self.name!r} must be <= {self.maximum}, got {coerced!r}"
            )
        if self.choices is not None and coerced not in self.choices:
            raise InvalidParameterError(
                f"parameter {self.name!r} must be one of {', '.join(self.choices)}, "
                f"got {coerced!r}"
            )
        return coerced


@dataclass(frozen=True)
class AlgorithmSpec:
    """Static description of an algorithm: name, personalization, parameters."""

    name: str
    display_name: str
    personalized: bool
    parameters: Tuple[ParameterSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def parameter(self, name: str) -> ParameterSpec:
        """Return the spec of the parameter called ``name``."""
        for spec in self.parameters:
            if spec.name == name:
                return spec
        raise InvalidParameterError(
            f"algorithm {self.name!r} has no parameter {name!r}; "
            f"available: {', '.join(p.name for p in self.parameters) or 'none'}"
        )

    def defaults(self) -> Dict[str, Any]:
        """Return the default value of every parameter."""
        return {spec.name: spec.default for spec in self.parameters}


class Algorithm(ABC):
    """A relevance algorithm runnable from plain task data.

    Subclasses define :attr:`spec` (a class attribute) and implement
    :meth:`_execute`, receiving already-validated parameters.
    """

    #: Static description; subclasses must override.
    spec: AlgorithmSpec

    #: Algorithms whose kernels coordinate with in-process state (locks,
    #: events, test gates) set this to ``True`` so the process executor
    #: tier keeps them on the submitting process instead of shipping them
    #: to a worker, where that state would be a meaningless fork-time copy.
    process_local: bool = False

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        """Registry name of the algorithm."""
        return self.spec.name

    @property
    def display_name(self) -> str:
        """Human-readable name (used as a comparison-table column header)."""
        return self.spec.display_name

    @property
    def is_personalized(self) -> bool:
        """``True`` if the algorithm requires a reference (source) node."""
        return self.spec.personalized

    @property
    def has_native_batch(self) -> bool:
        """``True`` if the subclass provides a real batch kernel.

        The scheduler uses this to decide between one grouped dispatch
        (amortised per-graph work) and per-query dispatch across the pool
        (the fallback loop would otherwise serialise independent queries on
        a single worker).
        """
        return type(self)._execute_batch is not Algorithm._execute_batch

    def validate_parameters(self, parameters: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
        """Validate a raw parameter mapping against the spec.

        Unknown parameter names raise :class:`InvalidParameterError`; missing
        ones take their default.  Returns the fully-populated dictionary.
        """
        parameters = dict(parameters or {})
        known = {spec.name for spec in self.spec.parameters}
        unknown = set(parameters) - known
        if unknown:
            raise InvalidParameterError(
                f"unknown parameter(s) for {self.name}: {', '.join(sorted(unknown))}; "
                f"accepted: {', '.join(sorted(known)) or 'none'}"
            )
        validated: Dict[str, Any] = {}
        for spec in self.spec.parameters:
            validated[spec.name] = spec.coerce(parameters.get(spec.name))
        return validated

    def run(
        self,
        graph: DirectedGraph,
        *,
        source: Optional[str] = None,
        parameters: Optional[Mapping[str, Any]] = None,
    ) -> Ranking:
        """Validate parameters and execute the algorithm on ``graph``.

        Parameters
        ----------
        graph:
            The graph to rank.
        source:
            Reference node label for personalized algorithms; must be omitted
            (or ``None``) for global algorithms and present for personalized
            ones.
        parameters:
            Raw parameter mapping (strings fresh from a UI form are fine —
            they are coerced according to the spec).
        """
        if self.is_personalized and not source:
            raise InvalidParameterError(
                f"{self.display_name} is a personalized algorithm and requires a "
                "source (reference) node"
            )
        if not self.is_personalized and source:
            raise InvalidParameterError(
                f"{self.display_name} is a global algorithm and does not accept a "
                f"source node (got {source!r})"
            )
        validated = self.validate_parameters(parameters)
        return self._execute(graph, source=source, parameters=validated)

    def run_batch(
        self,
        graph: DirectedGraph,
        *,
        sources: Sequence[Optional[str]],
        parameters: Optional[Mapping[str, Any]] = None,
    ) -> List[Ranking]:
        """Execute the algorithm for many sources sharing one parameter set.

        Parameters are validated once for the whole batch.  Algorithms with a
        native batch kernel override :meth:`_execute_batch` to amortise the
        per-graph work (CSR build, transition matrix, ...) across the batch;
        the default falls back to one :meth:`_execute` call per source, so
        ``run_batch`` is available for *every* registered algorithm.

        Parameters
        ----------
        graph:
            The graph to rank.
        sources:
            One reference node label per query for personalized algorithms;
            must be all ``None`` for global ones (whose result is computed a
            single time and shared).
        parameters:
            Raw parameter mapping applied to every query in the batch.

        Returns
        -------
        list of Ranking
            One ranking per source, in input order.
        """
        sources = list(sources)
        if not sources:
            return []
        if self.is_personalized and not all(sources):
            raise InvalidParameterError(
                f"{self.display_name} is a personalized algorithm; every query in "
                "a batch requires a source (reference) node"
            )
        if not self.is_personalized and any(sources):
            raise InvalidParameterError(
                f"{self.display_name} is a global algorithm and does not accept "
                "source nodes in a batch"
            )
        validated = self.validate_parameters(parameters)
        if not self.is_personalized:
            # A global run is source-independent: compute once, share the result.
            ranking = self._execute(graph, source=None, parameters=validated)
            return [ranking] * len(sources)
        return self._execute_batch(graph, sources=sources, parameters=validated)

    # ------------------------------------------------------------------ #
    # to implement
    # ------------------------------------------------------------------ #
    @abstractmethod
    def _execute(
        self,
        graph: DirectedGraph,
        *,
        source: Optional[str],
        parameters: Dict[str, Any],
    ) -> Ranking:
        """Run the algorithm; ``parameters`` are already validated."""

    def _execute_batch(
        self,
        graph: DirectedGraph,
        *,
        sources: List[str],
        parameters: Dict[str, Any],
    ) -> List[Ranking]:
        """Run the algorithm for many sources; override for a native kernel.

        The fallback loops :meth:`_execute` per source, which is correct for
        any algorithm but amortises nothing.
        """
        return [
            self._execute(graph, source=source, parameters=parameters)
            for source in sources
        ]

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def describe_parameters(self) -> List[str]:
        """Return one help line per parameter (used by the CLI)."""
        lines = []
        for spec in self.spec.parameters:
            bounds = ""
            if spec.minimum is not None or spec.maximum is not None:
                bounds = f" [{spec.minimum if spec.minimum is not None else ''}" \
                         f"..{spec.maximum if spec.maximum is not None else ''}]"
            choices = f" ({'|'.join(spec.choices)})" if spec.choices else ""
            lines.append(
                f"{spec.name} ({spec.kind}{bounds}{choices}, default {spec.default!r}): "
                f"{spec.description}"
            )
        return lines

    def __repr__(self) -> str:
        return f"<Algorithm {self.name!r}>"
