"""Command-line interface: the demo's functionality without the browser.

Sub-commands mirror the Web UI workflow:

``repro-relevance datasets``
    List the pre-loaded datasets (optionally filtered by family).
``repro-relevance algorithms``
    List the available algorithms and their parameters.
``repro-relevance summary <dataset>``
    Print the structural summary of one dataset.
``repro-relevance run <dataset> <algorithm> [--source ... --param k=3 ...]``
    Run one algorithm and print its top-k results.
``repro-relevance compare <dataset> --source ... [--algorithms ...]``
    Run several algorithms on the same dataset and reference node and print
    the side-by-side comparison table (the algorithm-comparison use case).
``repro-relevance cross-language --topic fake-news [--languages de en fr]``
    Run CycleRank on several language editions (the dataset-comparison use
    case of Table III).

``run`` and ``compare`` block by default; two flags tap the job/event
subsystem instead:

``--no-wait``
    Submit the comparison and print only its permalink id instead of
    rendering results.  Note the CLI builds an in-process gateway per
    invocation: the submission itself is non-blocking, but the gateway
    drains in-flight work on exit (results are discarded with the process
    unless a persistent datastore backs it).  Against a served deployment
    the id is the real permalink — POST ``/api/comparisons`` with
    ``"synchronous": false`` and redeem it via the REST endpoints.

    ::

        $ repro-relevance compare enwiki-2018 --source Pasta --no-wait
        b3c5e1f0-...-id

``--follow``
    Submit without blocking, then render the streamed per-query progress
    events (one line per ``query_started``/``query_completed``/... event,
    read from the job's event cursor) before printing the same results the
    blocking path prints.

    ::

        $ repro-relevance run enwiki-2018 cyclerank --source Pasta --follow
        comparison 6f0b...: submitted 1 queries
        query 0 started: cyclerank on enwiki-2018
        query 0 completed (1/1 done)
        comparison done (1/1 queries)
        ...top-k results...

Overload protection rides on the same flags surface: ``--deadline-ms``
bounds how long a submission may wait before it is settled with a typed
``deadline_exceeded`` event, ``--admission-budget`` enables load shedding
(shed submissions are retried client-side after the server's hinted delay,
bounded by ``--shed-retries``; ``--no-retry`` fails fast), and
``--retry-budget``/``--breaker-cooldown`` tune the replicated storage
tier's retry token bucket and per-shard circuit breakers.
``--read-consistency quorum`` makes every dataset read open with a
version-digest round over the live replicas, so a known-stale copy is
never served (requires ``--replicas``; the default ``one`` keeps the
single-source fast path).

Observability rides on ``run``/``compare`` too: ``--stats`` prints the
platform serving counters after the results — the cache/batch/storage
lines plus the ``overload`` (admission, deadlines, retries, breakers) and
``telemetry`` (tracer + span latency percentiles) sections of
``GET /api/stats``.  ``--cache-stats`` survives as a deprecated alias for
``--stats``.  ``--trace`` prints the comparison's recorded span waterfall
(gateway submit → scheduler dispatch → batch execute → storage writes),
the CLI view of ``GET /api/comparisons/<id>/trace``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Sequence

from .algorithms.registry import available_algorithms, get_algorithm
from .datasets.seeds import FAKE_NEWS_TOPICS
from .exceptions import GatewayOverloadedError, ReproError
from .platform.gateway import ApiGateway
from .platform.webui import WebUI
from .ranking.comparison import dataset_comparison
from .version import __version__

__all__ = ["main", "build_parser"]

#: Algorithms used by ``compare`` when the user does not pick any.
DEFAULT_COMPARISON_ALGORITHMS = ("pagerank", "cyclerank", "personalized-pagerank")


def _parse_parameter_overrides(pairs: Optional[Sequence[str]]) -> Dict[str, str]:
    """Turn ``["k=3", "sigma=exp"]`` into ``{"k": "3", "sigma": "exp"}``."""
    overrides: Dict[str, str] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        overrides[key.strip()] = value.strip()
    return overrides


def _add_storage_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the storage-topology flags shared by run/compare/serve."""
    parser.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="shard the storage layer across N consistent-hash backends",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        metavar="R",
        help="keep R copies of every dataset/result (quorum-acked writes, "
        "failover reads); implies a sharded store",
    )
    parser.add_argument(
        "--spill-dir",
        metavar="DIR",
        help="directory of the cold file tier cold datasets spill to "
        "(its contents survive restarts)",
    )
    parser.add_argument(
        "--spill-budget",
        type=int,
        metavar="BYTES",
        help="automatic spill policy: demote cold datasets whenever the "
        "estimated resident graph bytes exceed BYTES (requires --spill-dir)",
    )
    parser.add_argument(
        "--read-consistency",
        choices=("one", "quorum"),
        help="replicated-store read consistency: 'one' (default) serves the "
        "first answering replica, 'quorum' polls the replicas' version "
        "digests first and never serves a copy below the known version "
        "floor (requires --replicas)",
    )


def _add_overload_flags(
    parser: argparse.ArgumentParser, *, client_retries: bool = True
) -> None:
    """Attach the overload-protection knobs shared by run/compare/serve.

    ``client_retries`` additionally attaches the client-side shed-retry
    flags (``run``/``compare`` re-submit shed requests after the hinted
    ``retry_after``; ``serve`` is the server, so it only takes the knobs).
    """
    parser.add_argument(
        "--deadline-ms",
        type=int,
        metavar="MS",
        help="per-submission deadline: a comparison that cannot start within "
        "MS milliseconds is settled with a typed deadline_exceeded event "
        "instead of occupying a worker",
    )
    parser.add_argument(
        "--admission-budget",
        type=int,
        metavar="COST",
        help="admission-control budget in estimated query cost units; "
        "submissions over the budget are shed (HTTP 429 under 'serve') "
        "before anything is enqueued",
    )
    parser.add_argument(
        "--admission-retry-after",
        type=float,
        metavar="SECONDS",
        help="base Retry-After hint returned with shed submissions "
        "(scaled by how far over budget the gateway is; default 1.0)",
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        metavar="TOKENS",
        help="token-bucket budget shared by all storage retries (requires "
        "--replicas); caps retry amplification during a shard outage",
    )
    parser.add_argument(
        "--breaker-cooldown",
        type=float,
        metavar="SECONDS",
        help="per-shard circuit-breaker cooldown before a half-open probe "
        "is allowed (requires --replicas)",
    )
    if client_retries:
        parser.add_argument(
            "--shed-retries",
            type=int,
            default=3,
            metavar="N",
            help="re-submit a shed comparison up to N times, sleeping the "
            "server's retry_after hint between attempts (default 3)",
        )
        parser.add_argument(
            "--no-retry",
            action="store_true",
            help="fail immediately when the submission is shed instead of "
            "retrying after the hinted delay",
        )


def _add_observability_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the stats/trace reporting flags shared by run/compare."""
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the platform serving counters after the results: cache, "
        "batches, storage, plus the overload and telemetry sections",
    )
    parser.add_argument(
        "--cache-stats",
        action="store_true",
        help="deprecated alias for --stats",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="print the comparison's recorded span waterfall after the results",
    )


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the compute-tier flags shared by run/compare/serve."""
    parser.add_argument(
        "--executor-mode",
        choices=("thread", "process"),
        help="executor tier: 'thread' (default) runs batch kernels in-process; "
        "'process' runs them on worker processes mapping the compiled graph "
        "zero-copy from shared memory, scaling CPU-bound batches across cores",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="number of executor nodes in the pool"
    )


def _add_wait_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the non-blocking submission flags shared by run/compare."""
    waiting = parser.add_mutually_exclusive_group()
    waiting.add_argument(
        "--no-wait",
        action="store_true",
        help="print only the comparison id instead of waiting to render results "
        "(in-flight work still drains on exit)",
    )
    waiting.add_argument(
        "--follow",
        action="store_true",
        help="submit without blocking and render streamed per-query progress",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for tests and documentation)."""
    parser = argparse.ArgumentParser(
        prog="repro-relevance",
        description="Compare personalized relevance algorithms on directed graphs.",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="list the pre-loaded datasets")
    datasets_parser.add_argument("--family", help="filter by family (wikipedia, amazon, ...)")

    subparsers.add_parser("algorithms", help="list the available algorithms")

    summary_parser = subparsers.add_parser("summary", help="print a dataset's structural summary")
    summary_parser.add_argument("dataset", help="dataset identifier (e.g. enwiki-2018)")

    run_parser = subparsers.add_parser("run", help="run one algorithm on one dataset")
    run_parser.add_argument("dataset", help="dataset identifier")
    run_parser.add_argument("algorithm", help="algorithm name (see 'algorithms')")
    run_parser.add_argument("--source", help="reference node for personalized algorithms")
    run_parser.add_argument(
        "--param", action="append", metavar="KEY=VALUE", help="algorithm parameter override"
    )
    run_parser.add_argument("--top", type=int, default=10, help="number of results to print")
    run_parser.add_argument(
        "--scores", action="store_true", help="print scores next to the labels"
    )
    _add_observability_flags(run_parser)
    _add_storage_flags(run_parser)
    _add_overload_flags(run_parser)
    _add_executor_flags(run_parser)
    _add_wait_flags(run_parser)

    compare_parser = subparsers.add_parser(
        "compare", help="compare several algorithms on the same dataset and reference"
    )
    compare_parser.add_argument("dataset", help="dataset identifier")
    compare_parser.add_argument("--source", required=True, help="reference node label")
    compare_parser.add_argument(
        "--algorithms",
        nargs="+",
        default=list(DEFAULT_COMPARISON_ALGORITHMS),
        help="algorithms to compare (default: pagerank cyclerank personalized-pagerank)",
    )
    compare_parser.add_argument("--alpha", type=float, default=0.85, help="damping factor")
    compare_parser.add_argument("--k", type=int, default=3, help="CycleRank maximum cycle length")
    compare_parser.add_argument("--top", type=int, default=5, help="rows in the comparison table")
    compare_parser.add_argument("--logs", action="store_true", help="print the execution log")
    _add_observability_flags(compare_parser)
    _add_storage_flags(compare_parser)
    _add_overload_flags(compare_parser)
    _add_executor_flags(compare_parser)
    _add_wait_flags(compare_parser)

    cross_parser = subparsers.add_parser(
        "cross-language", help="run CycleRank on several Wikipedia language editions"
    )
    cross_parser.add_argument(
        "--languages", nargs="+", default=["de", "en", "fr", "it", "nl", "pl"],
        help="language codes (default: the six editions of Table III)",
    )
    cross_parser.add_argument("--snapshot-year", default="2018", help="snapshot year")
    cross_parser.add_argument("--k", type=int, default=3, help="CycleRank maximum cycle length")
    cross_parser.add_argument("--top", type=int, default=5, help="rows in the comparison table")

    serve_parser = subparsers.add_parser(
        "serve", help="expose the API gateway over HTTP (the demo's REST surface)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="bind address")
    serve_parser.add_argument("--port", type=int, default=8080, help="bind port (0 = random)")
    _add_storage_flags(serve_parser)
    _add_overload_flags(serve_parser, client_retries=False)
    _add_executor_flags(serve_parser)

    return parser


def _command_datasets(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    ui = WebUI(gateway)
    print(ui.render_dataset_picker(family=arguments.family))
    return 0


def _command_algorithms(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    ui = WebUI(gateway)
    print(ui.render_algorithm_picker())
    return 0


def _command_summary(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    summary = gateway.dataset_summary(arguments.dataset)
    width = max(len(key) for key in summary)
    for key, value in summary.items():
        if isinstance(value, float):
            value = f"{value:.6f}"
        print(f"{key.ljust(width)}  {value}")
    return 0


def _print_cache_stats(gateway: ApiGateway) -> None:
    """Print the platform serving counters (cache hits/misses, batch sizes)."""
    stats = gateway.get_platform_stats()
    cache = stats["cache"]
    batches = stats["batches"]
    print(
        f"cache: {cache['hits']} hits / {cache['misses']} misses "
        f"(hit rate {cache['hit_rate']:.0%}), {cache['size']}/{cache['capacity']} entries, "
        f"{cache['evictions']} evictions, {cache['invalidations']} invalidations"
    )
    print(
        f"batches: {batches['batches']} dispatched carrying "
        f"{batches['batched_queries']} queries (largest {batches['largest_batch']})"
    )
    artifacts = stats["artifacts"]
    print(
        f"artifacts: {artifacts['hits']} hits / {artifacts['misses']} misses "
        f"(hit rate {artifacts['hit_rate']:.0%}), {artifacts['compiled']} compiled, "
        f"{artifacts['invalidations']} invalidations"
    )
    shards = stats.get("shards")
    if shards:
        breakdown = ", ".join(
            f"{shard_id}: {info['occupancy']['datasets']} dataset(s), "
            f"{info['cache_hit_rate']:.0%} cache hits"
            if info.get("healthy")
            else f"{shard_id}: "
            + ("MARKED DOWN" if info.get("marked_down")
               else f"UNHEALTHY ({info.get('error', 'unknown')})")
            for shard_id, info in sorted(shards["per_shard"].items())
        )
        print(f"shards: {shards['num_shards']} on the ring — {breakdown}")
        replication = shards.get("replication")
        if replication:
            lag = replication["underreplicated"]
            print(
                f"replication: R={replication['replicas']} "
                f"(quorum {replication['quorum']}), "
                f"{replication['failover_reads']} failover reads, "
                f"{replication['degraded_writes']} degraded writes, "
                f"lag {'unknown' if lag is None else lag}"
            )
            print(
                f"reads: {replication.get('read_consistency', 'one')} "
                f"consistency, {replication.get('digest_reads', 0)} digest "
                f"rounds, {replication.get('stale_reads', 0)} stale detected "
                f"/ {replication.get('stale_reads_prevented', 0)} withheld, "
                f"{replication.get('version_conflicts_resolved', 0)} version "
                f"conflicts resolved"
            )
            print(
                f"self-healing: {replication.get('read_repairs', 0)} read-repairs "
                f"({replication.get('repair_queue', 0)} queued), "
                f"tombstones {replication.get('tombstones_written', 0)} written / "
                f"{replication.get('tombstones_reaped', 0)} reaped, "
                f"auto down/up {replication.get('auto_downs', 0)}"
                f"/{replication.get('auto_ups', 0)}"
            )
        spill = shards.get("spill")
        if spill and spill.get("enabled"):
            resident = spill.get("resident_bytes")
            budget = (
                "" if resident is None else f", ~{resident} resident byte(s) on the ring"
            )
            print(
                f"spill: {spill.get('spilled_datasets', 0)} dataset(s) on the "
                f"file tier ({spill.get('spills', 0)} demotions{budget})"
            )


def _print_overload_stats(stats: Dict[str, object]) -> None:
    """Print the ``overload`` stats section as compact human-readable lines."""
    admission = stats.get("admission") or {}
    if admission.get("enabled"):
        print(
            f"admission: {admission.get('admitted', 0)} admitted / "
            f"{admission.get('shed', 0)} shed, in-flight cost "
            f"{admission.get('inflight_cost', 0)}/{admission.get('max_cost', 0)} "
            f"(peak {admission.get('peak_cost', 0)})"
        )
    else:
        print("admission: disabled")
    deadlines = stats.get("deadlines") or {}
    default_ms = deadlines.get("default_deadline_ms")
    print(
        f"deadlines: {deadlines.get('deadline_exceeded', 0)} exceeded "
        f"(default {'none' if default_ms is None else f'{default_ms}ms'})"
    )
    storage = stats.get("storage")
    if storage:
        retries = storage.get("retries") or {}
        budget = retries.get("budget") or {}
        budget_text = (
            f", budget {budget.get('available', 0)}/{budget.get('capacity', 0)} tokens"
            if budget
            else ""
        )
        print(
            f"retries: {retries.get('retries_spent', 0)} spent / "
            f"{retries.get('retries_denied', 0)} denied{budget_text}"
        )
        breakers = storage.get("breakers") or {}
        if breakers:
            breakdown = ", ".join(
                f"{shard_id}: {info.get('state', '?')} "
                f"({info.get('opens', 0)} opens, "
                f"{info.get('short_circuits', 0)} short-circuits)"
                for shard_id, info in sorted(breakers.items())
            )
            print(f"breakers: {breakdown}")


def _print_telemetry_stats(stats: Dict[str, object]) -> None:
    """Print the ``telemetry`` stats section as compact human-readable lines."""
    tracer = stats.get("tracer") or {}
    if not tracer.get("enabled"):
        print("telemetry: disabled")
        return
    print(
        f"telemetry: {tracer.get('traces_tracked', 0)} trace(s) tracked, "
        f"{tracer.get('spans_collected', 0)} span(s) collected "
        f"({tracer.get('spans_dropped', 0)} dropped), "
        f"{len(tracer.get('slow_spans') or [])} slow span(s) over "
        f"{tracer.get('slow_threshold_ms', 0):g}ms"
    )
    metrics = stats.get("metrics") or {}
    durations = metrics.get("span_duration_ms")
    if isinstance(durations, dict):
        for labels, summary in sorted(durations.items()):
            if not isinstance(summary, dict):
                continue
            name = labels.strip("{}")
            if name.startswith('span="') and name.endswith('"'):
                name = name[len('span="'):-1]
            print(
                f"  span {name}: {summary.get('count', 0)} recorded, "
                f"p50 {summary.get('p50', 0):.2f}ms, "
                f"p95 {summary.get('p95', 0):.2f}ms, "
                f"p99 {summary.get('p99', 0):.2f}ms"
            )


def _print_executor_stats(stats: Dict[str, object]) -> None:
    """Print the ``executors`` stats section as one compact line."""
    segments = ""
    if stats.get("mode") == "process":
        segments = (
            f", {stats.get('segments', 0)} shared segment(s) "
            f"({stats.get('shared_bytes', 0)} bytes), "
            f"{stats.get('worker_crashes', 0)} worker crash(es)"
        )
    print(
        f"executors: {stats.get('mode')} mode, "
        f"{stats.get('busy_workers', 0)}/{stats.get('num_workers', 0)} busy, "
        f"{stats.get('executed_queries', 0)} queries executed{segments}"
    )


def _print_platform_stats(gateway: ApiGateway) -> None:
    """Print the full ``--stats`` report: cache, executors, overload, telemetry."""
    _print_cache_stats(gateway)
    stats = gateway.get_platform_stats()
    executors = stats.get("executors")
    if executors:
        _print_executor_stats(executors)
    overload = stats.get("overload")
    if overload:
        _print_overload_stats(overload)
    telemetry = stats.get("telemetry")
    if telemetry:
        _print_telemetry_stats(telemetry)


def _wants_stats(arguments: argparse.Namespace) -> bool:
    """True when ``--stats`` (or its deprecated ``--cache-stats`` alias) is set."""
    if getattr(arguments, "cache_stats", False):
        print(
            "warning: --cache-stats is deprecated; use --stats",
            file=sys.stderr,
        )
        return True
    return getattr(arguments, "stats", False)


def _describe_event(event: Dict[str, object]) -> str:
    """Render one job event as the ``--follow`` progress line."""
    kind = event.get("type")
    index = event.get("query")
    if kind == "submitted":
        return f"submitted {event.get('total_queries')} queries"
    if kind == "query_started":
        joined = " (joined in-flight twin)" if event.get("joined") else ""
        return (
            f"query {index} started: {event.get('algorithm')} "
            f"on {event.get('dataset_id')}{joined}"
        )
    if kind == "query_cached":
        return (
            f"query {index} served from cache "
            f"({event.get('completed_queries')}/{event.get('total_queries')} done)"
        )
    if kind == "query_completed":
        return (
            f"query {index} completed "
            f"({event.get('completed_queries')}/{event.get('total_queries')} done)"
        )
    if kind == "query_failed":
        return f"query {index} FAILED: {event.get('error')}"
    if kind == "progress":
        return (
            f"{event.get('kind')}: {event.get('item')} "
            f"({event.get('completed')}/{event.get('total')})"
        )
    if kind == "cancelled":
        return "cancellation requested"
    if kind == "shed":
        return (
            f"submission shed by admission control "
            f"(cost {event.get('cost')}, retry after {event.get('retry_after')}s)"
        )
    if kind == "deadline_exceeded":
        return (
            f"deadline exceeded after {event.get('deadline_ms')}ms "
            f"({event.get('completed_queries')}/{event.get('total_queries')} done)"
        )
    if kind == "task_done":
        return (
            f"comparison {event.get('state')} "
            f"({event.get('completed_queries')}/{event.get('total_queries')} queries)"
        )
    return f"{kind}"


#: Upper bound on one client-side shed-retry sleep, so a badly overloaded
#: gateway cannot park the CLI for minutes.
_SHED_RETRY_SLEEP_CAP = 5.0


def _run_queries_with_shed_retries(
    gateway: ApiGateway,
    queries: List[dict],
    arguments: argparse.Namespace,
    *,
    synchronous: bool,
) -> str:
    """Submit, honouring the server's shed hints like an HTTP client honours 429.

    A shed submission was never enqueued, so re-sending it is safe.  The
    loop sleeps the gateway's ``retry_after`` hint (capped) between the
    bounded ``--shed-retries`` attempts; ``--no-retry`` fails on the first
    shed instead.
    """
    retries = 0 if getattr(arguments, "no_retry", False) else max(
        0, getattr(arguments, "shed_retries", 0)
    )
    attempt = 0
    while True:
        try:
            return gateway.run_queries(queries, synchronous=synchronous)
        except GatewayOverloadedError as error:
            attempt += 1
            if attempt > retries:
                raise
            delay = min(max(error.retry_after, 0.0), _SHED_RETRY_SLEEP_CAP)
            print(
                f"submission shed (attempt {attempt}/{retries}); "
                f"retrying in {delay:.2f}s",
                file=sys.stderr,
            )
            time.sleep(delay)


def _submit_comparison(
    gateway: ApiGateway, queries: List[dict], arguments: argparse.Namespace
) -> Optional[str]:
    """Submit ``queries`` honouring ``--no-wait``/``--follow``.

    Returns the comparison id once it has finished, or ``None`` when the
    caller should exit immediately (``--no-wait`` printed the permalink).
    The default path blocks exactly like the pre-jobs CLI did.  Shed
    submissions are retried per ``--shed-retries``/``--no-retry``.
    """
    if getattr(arguments, "no_wait", False):
        comparison = _run_queries_with_shed_retries(
            gateway, queries, arguments, synchronous=False
        )
        print(comparison)
        return None
    if getattr(arguments, "follow", False):
        comparison = _run_queries_with_shed_retries(
            gateway, queries, arguments, synchronous=False
        )
        print(f"comparison {comparison}:")
        for event in gateway.stream_events(comparison):
            print(_describe_event(event))
        return comparison
    return _run_queries_with_shed_retries(
        gateway, queries, arguments, synchronous=True
    )


def _fail_if_errored(gateway: ApiGateway, comparison_id: str) -> Optional[int]:
    """Print the task error and return an exit code if the comparison failed."""
    progress = gateway.get_status(comparison_id)
    if progress.error is not None:
        print(f"error: {progress.error}", file=sys.stderr)
        return 1
    return None


def _command_run(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    parameters = _parse_parameter_overrides(arguments.param)
    comparison = _submit_comparison(
        gateway,
        [
            {
                "dataset_id": arguments.dataset,
                "algorithm": arguments.algorithm,
                "source": arguments.source,
                "parameters": parameters,
            }
        ],
        arguments,
    )
    if comparison is None:
        return 0
    failure = _fail_if_errored(gateway, comparison)
    if failure is not None:
        return failure
    ranking = gateway.get_rankings(comparison)[0]
    print(ranking.describe())
    for entry in ranking.top(arguments.top):
        if arguments.scores:
            print(f"{entry.rank:>3}. {entry.label}  ({entry.score:.6g})")
        else:
            print(f"{entry.rank:>3}. {entry.label}")
    if arguments.trace:
        print(WebUI(gateway).render_trace_waterfall(comparison))
    if _wants_stats(arguments):
        _print_platform_stats(gateway)
    return 0


def _command_compare(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    queries: List[dict] = []
    for name in arguments.algorithms:
        algorithm = get_algorithm(name)
        parameters: Dict[str, object] = {}
        if any(spec.name == "alpha" for spec in algorithm.spec.parameters):
            parameters["alpha"] = arguments.alpha
        if any(spec.name == "k" for spec in algorithm.spec.parameters):
            parameters["k"] = arguments.k
        queries.append(
            {
                "dataset_id": arguments.dataset,
                "algorithm": algorithm.name,
                "source": arguments.source if algorithm.is_personalized else None,
                "parameters": parameters,
            }
        )
    comparison = _submit_comparison(gateway, queries, arguments)
    if comparison is None:
        return 0
    failure = _fail_if_errored(gateway, comparison)
    if failure is not None:
        return failure
    table = gateway.get_comparison_table(
        comparison,
        k=arguments.top,
        title=f"Top-{arguments.top} results for {arguments.source!r} on {arguments.dataset}",
    )
    print(table.to_text())
    if arguments.logs:
        print()
        for line in gateway.get_logs(comparison):
            print(line)
    if arguments.trace:
        print(WebUI(gateway).render_trace_waterfall(comparison))
    if _wants_stats(arguments):
        _print_platform_stats(gateway)
    return 0


def _command_cross_language(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    rankings = {}
    for language in arguments.languages:
        seed = FAKE_NEWS_TOPICS.get(language)
        if seed is None:
            print(f"skipping unknown language {language!r}", file=sys.stderr)
            continue
        dataset_id = f"{language}wiki-{arguments.snapshot_year}"
        comparison = gateway.run_queries(
            [
                {
                    "dataset_id": dataset_id,
                    "algorithm": "cyclerank",
                    "source": seed.reference,
                    "parameters": {"k": arguments.k},
                }
            ],
            synchronous=True,
        )
        failure = _fail_if_errored(gateway, comparison)
        if failure is not None:
            return failure
        rankings[f"{seed.reference} ({language})"] = gateway.get_rankings(comparison)[0]
    table = dataset_comparison(rankings, k=arguments.top)
    print(table.to_text())
    return 0


def _command_serve(gateway: ApiGateway, arguments: argparse.Namespace) -> int:
    from .platform.restapi import RestApiServer

    server = RestApiServer(gateway, host=arguments.host, port=arguments.port)
    host, port = server.start()
    print(f"Serving the comparison API on http://{host}:{port} (Ctrl-C to stop)")
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down")
        return 0
    finally:
        server.stop()


_COMMANDS = {
    "datasets": _command_datasets,
    "algorithms": _command_algorithms,
    "summary": _command_summary,
    "run": _command_run,
    "compare": _command_compare,
    "cross-language": _command_cross_language,
    "serve": _command_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``repro-relevance`` console script."""
    parser = build_parser()
    arguments = parser.parse_args(argv)
    handler = _COMMANDS[arguments.command]
    shards = getattr(arguments, "shards", None)
    if shards is not None and shards < 1:
        print(f"error: --shards must be a positive integer, got {shards}", file=sys.stderr)
        return 2
    replicas = getattr(arguments, "replicas", None)
    if replicas is not None and replicas < 1:
        print(
            f"error: --replicas must be a positive integer, got {replicas}",
            file=sys.stderr,
        )
        return 2
    spill_dir = getattr(arguments, "spill_dir", None)
    spill_budget = getattr(arguments, "spill_budget", None)
    if spill_budget is not None and spill_budget < 0:
        print(
            f"error: --spill-budget must be >= 0, got {spill_budget}",
            file=sys.stderr,
        )
        return 2
    deadline_ms = getattr(arguments, "deadline_ms", None)
    if deadline_ms is not None and deadline_ms < 1:
        print(
            f"error: --deadline-ms must be a positive integer, got {deadline_ms}",
            file=sys.stderr,
        )
        return 2
    admission_budget = getattr(arguments, "admission_budget", None)
    if admission_budget is not None and admission_budget < 0:
        print(
            f"error: --admission-budget must be >= 0, got {admission_budget}",
            file=sys.stderr,
        )
        return 2
    retry_budget = getattr(arguments, "retry_budget", None)
    if retry_budget is not None and retry_budget < 0:
        print(
            f"error: --retry-budget must be >= 0, got {retry_budget}",
            file=sys.stderr,
        )
        return 2
    breaker_cooldown = getattr(arguments, "breaker_cooldown", None)
    if breaker_cooldown is not None and breaker_cooldown <= 0:
        print(
            f"error: --breaker-cooldown must be > 0, got {breaker_cooldown}",
            file=sys.stderr,
        )
        return 2
    workers = getattr(arguments, "workers", None)
    if workers is not None and workers < 1:
        print(
            f"error: --workers must be a positive integer, got {workers}",
            file=sys.stderr,
        )
        return 2
    gateway_options: Dict[str, object] = {}
    if getattr(arguments, "admission_retry_after", None) is not None:
        gateway_options["admission_retry_after_seconds"] = arguments.admission_retry_after
    if workers is not None:
        gateway_options["num_workers"] = workers
    if getattr(arguments, "executor_mode", None) is not None:
        gateway_options["executor_mode"] = arguments.executor_mode
    if getattr(arguments, "read_consistency", None) is not None:
        gateway_options["read_consistency"] = arguments.read_consistency
    try:
        with ApiGateway(
            shards=shards,
            replicas=replicas,
            spill_dir=spill_dir,
            spill_budget_bytes=spill_budget,
            default_deadline_ms=deadline_ms,
            admission_max_cost=admission_budget,
            retry_budget_capacity=retry_budget,
            breaker_cooldown_seconds=breaker_cooldown,
            **gateway_options,
        ) as gateway:
            return handler(gateway, arguments)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
