"""Dataset catalog and synthetic dataset generators.

The demo ships 50 pre-loaded datasets: WikiLinkGraphs snapshots (9 language
editions × several yearly snapshots), the Amazon co-purchase graph and two
Twitter interaction networks (cop27 and 8m).  The original data is crawled
from production services and cannot be redistributed here, so this package
generates *synthetic stand-ins* that preserve the structural properties the
paper's evaluation relies on (see DESIGN.md §2 for the substitution
rationale):

* a layer of globally central hub nodes with very high in-degree,
* topic communities whose members link to each other in both directions
  (rich in short cycles),
* asymmetric links from topical nodes to the hubs,
* and a heavy-tailed background of filler nodes.

All generators are deterministic for a given seed.  The
:class:`~repro.datasets.catalog.DatasetCatalog` exposes every pre-loaded
dataset by identifier (``"enwiki-2018"``, ``"amazon-copurchase"``,
``"twitter-cop27"``, ...) and builds graphs lazily, caching them in memory.
"""

from __future__ import annotations

from .amazon import AMAZON_REFERENCE_ITEMS, generate_amazon_graph
from .catalog import DatasetCatalog, DatasetDescriptor, default_catalog
from .seeds import (
    AMAZON_COMMUNITIES,
    AMAZON_POPULAR_ITEMS,
    FAKE_NEWS_TOPICS,
    WIKIPEDIA_GLOBAL_HUBS,
    WIKIPEDIA_LANGUAGES,
    WIKIPEDIA_SNAPSHOTS,
    WIKIPEDIA_TOPICS,
    TopicSeed,
)
from .twitter import TWITTER_DATASETS, generate_twitter_graph
from .wikipedia import generate_wikilink_graph

__all__ = [
    "DatasetCatalog",
    "DatasetDescriptor",
    "default_catalog",
    "generate_wikilink_graph",
    "generate_amazon_graph",
    "generate_twitter_graph",
    "TopicSeed",
    "WIKIPEDIA_TOPICS",
    "WIKIPEDIA_GLOBAL_HUBS",
    "WIKIPEDIA_LANGUAGES",
    "WIKIPEDIA_SNAPSHOTS",
    "FAKE_NEWS_TOPICS",
    "AMAZON_COMMUNITIES",
    "AMAZON_POPULAR_ITEMS",
    "AMAZON_REFERENCE_ITEMS",
    "TWITTER_DATASETS",
]
