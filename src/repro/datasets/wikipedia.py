"""Synthetic WikiLinkGraphs: wikilink snapshots per language edition and year.

The real WikiLinkGraphs dataset (Consonni, Laniado & Montresor, ICWSM 2019)
contains the full link graph of nine Wikipedia language editions at yearly
snapshots.  This generator produces a scaled-down synthetic stand-in with the
three structural ingredients the paper's evaluation depends on:

1. **Global hubs** — articles like "United States" that almost every other
   article links to and that rarely link back.  They dominate the global
   PageRank ranking (Table I, first column) and attract Personalized
   PageRank mass regardless of the query node.
2. **Topic neighbourhoods** — the curated seeds of
   :mod:`repro.datasets.seeds`: a reference article, a core of mutually
   linked related articles (rich in short cycles, hence high CycleRank), and
   satellites the reference points to without reciprocation (they collect
   PPR mass but no CycleRank score).
3. **Filler articles** — a background of ordinary articles linking to hubs,
   to a few random articles and occasionally into the topic neighbourhoods,
   giving the graph its heavy-tailed in-degree distribution.

Different language editions contain different "Fake news" neighbourhoods
(Table III) and different sizes; earlier snapshots are smaller, emulating
Wikipedia's growth over time.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .._validation import require_non_negative_int, require_one_of
from ..exceptions import InvalidParameterError
from ..graph.digraph import DirectedGraph
from .seeds import (
    WIKIPEDIA_GLOBAL_HUBS,
    WIKIPEDIA_LANGUAGES,
    WIKIPEDIA_SNAPSHOTS,
    TopicSeed,
    topics_for_language,
)

__all__ = ["generate_wikilink_graph", "edition_size_factor", "snapshot_size_factor"]

#: Relative sizes of the language editions (English is the largest).
_LANGUAGE_SCALE: Dict[str, float] = {
    "en": 1.0,
    "de": 0.8,
    "fr": 0.75,
    "es": 0.7,
    "it": 0.65,
    "ru": 0.65,
    "nl": 0.55,
    "pl": 0.55,
    "sv": 0.5,
}

#: Relative sizes of the yearly snapshots (Wikipedia grows over time).
_SNAPSHOT_SCALE: Dict[str, float] = {
    "2018-03-01": 1.0,
    "2013-03-01": 0.7,
    "2008-03-01": 0.45,
    "2003-03-01": 0.2,
}

#: Default number of background (filler) articles for the English 2018 edition.
DEFAULT_NUM_FILLER_ARTICLES = 400


def edition_size_factor(language: str) -> float:
    """Return the relative size of a language edition (1.0 for English)."""
    require_one_of(language, "language", WIKIPEDIA_LANGUAGES)
    return _LANGUAGE_SCALE[language]


def snapshot_size_factor(snapshot: str) -> float:
    """Return the relative size of a yearly snapshot (1.0 for 2018-03-01)."""
    require_one_of(snapshot, "snapshot", WIKIPEDIA_SNAPSHOTS)
    return _SNAPSHOT_SCALE[snapshot]


def _add_hub_layer(graph: DirectedGraph, rng: random.Random) -> None:
    """Create the hub articles and their sparse mutual links."""
    for hub in WIKIPEDIA_GLOBAL_HUBS:
        graph.add_node(hub)
    for hub in WIKIPEDIA_GLOBAL_HUBS:
        for other in WIKIPEDIA_GLOBAL_HUBS:
            if hub != other and rng.random() < 0.3:
                graph.add_edge(hub, other)


def _link_article_to_hubs(
    graph: DirectedGraph,
    article: str,
    rng: random.Random,
    *,
    out_probability: float = 0.5,
    back_probability: float = 0.02,
) -> None:
    """Link an article into the hub layer (mostly one-directional).

    The first five hubs (the PageRank top-5 of Table I) receive links with the
    full probability; the remaining hubs with roughly half of it, so the
    global PageRank ordering of the synthetic edition mirrors the paper's.
    """
    for hub_index, hub in enumerate(WIKIPEDIA_GLOBAL_HUBS):
        if article == hub:
            continue
        probability = out_probability if hub_index < 5 else out_probability * 0.45
        if rng.random() < probability:
            graph.add_edge(article, hub)
            if rng.random() < back_probability:
                graph.add_edge(hub, article)


def _add_topic_neighbourhood(
    graph: DirectedGraph,
    seed: TopicSeed,
    rng: random.Random,
    *,
    scale: float,
) -> None:
    """Create a topic neighbourhood: reference, core (reciprocal), satellites."""
    core = list(seed.core)
    satellites = list(seed.satellites)
    # Older/smaller editions keep a prefix of the neighbourhood, never fewer
    # than three core members so the tables remain meaningful.
    core_keep = max(3, int(round(len(core) * scale)))
    satellite_keep = max(2, int(round(len(satellites) * scale))) if satellites else 0
    core = core[:core_keep]
    satellites = satellites[:satellite_keep]

    reference = graph.add_node(seed.reference)
    core_ids = [graph.add_node(label) for label in core]
    satellite_ids = [graph.add_node(label) for label in satellites]

    # Reference <-> core: strong mutual relationship (short cycles).
    for core_id in core_ids:
        graph.add_edge(reference, core_id)
        graph.add_edge(core_id, reference)
    # Core <-> core: dense, mostly reciprocated.
    for first in core_ids:
        for second in core_ids:
            if first != second and rng.random() < 0.7:
                graph.add_edge(first, second)
                if rng.random() < 0.8:
                    graph.add_edge(second, first)
    # Reference -> satellites without reciprocation: related-looking pages the
    # reference links to, but which do not link back (no cycles through them).
    for satellite_id in satellite_ids:
        graph.add_edge(reference, satellite_id)
    # Core -> satellites: the rest of the neighbourhood also links to the
    # satellites, feeding them two-hop Personalized PageRank mass.
    for core_id in core_ids:
        for satellite_id in satellite_ids:
            if rng.random() < 0.6:
                graph.add_edge(core_id, satellite_id)
    # Everything in the neighbourhood links out to the global hubs, but less
    # densely than filler articles do: topical pages devote most of their
    # links to their own neighbourhood.
    for label in [seed.reference, *core, *satellites]:
        _link_article_to_hubs(graph, label, rng, out_probability=0.3)


def _add_filler_articles(
    graph: DirectedGraph,
    language: str,
    num_filler: int,
    rng: random.Random,
    topic_seeds: Dict[str, TopicSeed],
) -> None:
    """Create the background articles and their heavy-tailed linking."""
    satellite_labels = [
        label for seed in topic_seeds.values() for label in seed.satellites
        if graph.has_label(label)
    ]
    reference_labels = [
        seed.reference for seed in topic_seeds.values() if graph.has_label(seed.reference)
    ]
    filler_labels = [f"{language}:Article {index}" for index in range(num_filler)]
    for label in filler_labels:
        graph.add_node(label)
    for index, label in enumerate(filler_labels):
        _link_article_to_hubs(graph, label, rng, out_probability=0.45)
        # A few links among filler articles, occasionally reciprocated, so the
        # background is not a pure DAG.
        for _ in range(rng.randint(1, 4)):
            other = filler_labels[rng.randrange(num_filler)]
            if other != label:
                graph.add_edge(label, other)
                if rng.random() < 0.15:
                    graph.add_edge(other, label)
        # Filler articles mention popular satellite pages (e.g. HIV/AIDS,
        # Donald Trump) far more often than they mention the topical
        # reference articles, giving satellites their high global in-degree.
        if satellite_labels and rng.random() < 0.35:
            graph.add_edge(label, rng.choice(satellite_labels))
        if reference_labels and rng.random() < 0.03:
            graph.add_edge(label, rng.choice(reference_labels))


def generate_wikilink_graph(
    language: str = "en",
    snapshot: str = "2018-03-01",
    *,
    num_filler_articles: Optional[int] = None,
    seed: int = 0,
) -> DirectedGraph:
    """Generate a synthetic wikilink graph for one language edition and snapshot.

    Parameters
    ----------
    language:
        One of the nine WikiLinkGraphs language codes
        (``de en es fr it nl pl ru sv``).
    snapshot:
        One of the yearly snapshots (``2018-03-01``, ``2013-03-01``,
        ``2008-03-01``, ``2003-03-01``).
    num_filler_articles:
        Number of background articles before scaling; defaults to
        :data:`DEFAULT_NUM_FILLER_ARTICLES` scaled by the edition and snapshot
        factors.
    seed:
        Pseudo-random seed; the same arguments always produce the same graph.

    Returns
    -------
    DirectedGraph
        A graph named ``"<language>wiki <snapshot>"`` whose labels are article
        titles.
    """
    require_one_of(language, "language", WIKIPEDIA_LANGUAGES)
    require_one_of(snapshot, "snapshot", WIKIPEDIA_SNAPSHOTS)
    scale = edition_size_factor(language) * snapshot_size_factor(snapshot)
    if num_filler_articles is None:
        num_filler = int(round(DEFAULT_NUM_FILLER_ARTICLES * scale))
    else:
        num_filler = require_non_negative_int(num_filler_articles, "num_filler_articles")
    if num_filler < 0:
        raise InvalidParameterError("num_filler_articles must be non-negative")

    # Independent seeds per (language, snapshot) so editions differ but remain
    # individually reproducible.
    rng = random.Random((seed, language, snapshot).__repr__())
    graph = DirectedGraph(name=f"{language}wiki {snapshot}")
    _add_hub_layer(graph, rng)
    topic_seeds = topics_for_language(language)
    # Topic neighbourhoods shrink with the snapshot age (articles did not yet
    # exist) but not with the edition size: every large-enough edition covers
    # the whole neighbourhood, as in the real WikiLinkGraphs data.
    topic_scale = max(snapshot_size_factor(snapshot), 0.4)
    for topic_seed in topic_seeds.values():
        _add_topic_neighbourhood(graph, topic_seed, rng, scale=topic_scale)
    _add_filler_articles(graph, language, num_filler, rng, topic_seeds)
    return graph
