"""Synthetic Twitter interaction networks (cop27 and 8m).

The paper's Twitter datasets contain one node per user who tweeted about a
topic (the COP27 climate conference; the 8th of March, International Women's
Day) and an edge whenever one user interacted with another (retweet, reply,
quote or mention).  The synthetic stand-in models:

* **thematic communities** (activists, institutions, journalists, ...) whose
  members interact with each other frequently and mostly reciprocally,
* **celebrity accounts** mentioned by everyone but rarely replying — the
  high-in-degree nodes that dominate global rankings,
* a long tail of **casual participants** who retweet a couple of popular
  accounts and interact with one or two peers.
"""

from __future__ import annotations

import random
from typing import Optional, Tuple

from .._validation import require_non_negative_int, require_one_of
from ..graph.digraph import DirectedGraph
from .seeds import TWITTER_COMMUNITIES

__all__ = ["generate_twitter_graph", "TWITTER_DATASETS"]

#: The Twitter crawls provided by the demo.
TWITTER_DATASETS: Tuple[str, ...] = tuple(sorted(TWITTER_COMMUNITIES))

#: Default number of casual participant accounts.
DEFAULT_NUM_CASUAL_USERS = 300


def generate_twitter_graph(
    topic: str = "cop27",
    *,
    num_casual_users: Optional[int] = None,
    seed: int = 0,
) -> DirectedGraph:
    """Generate a synthetic Twitter interaction network about ``topic``.

    Parameters
    ----------
    topic:
        ``"cop27"`` or ``"8m"`` — the two crawls shipped with the demo.
    num_casual_users:
        Number of casual participant accounts (default
        :data:`DEFAULT_NUM_CASUAL_USERS`).
    seed:
        Pseudo-random seed; the same arguments always produce the same graph.

    Returns
    -------
    DirectedGraph
        A graph named ``"twitter <topic>"`` whose labels are account handles.
    """
    require_one_of(topic, "topic", TWITTER_DATASETS)
    if num_casual_users is None:
        num_casual = DEFAULT_NUM_CASUAL_USERS
    else:
        num_casual = require_non_negative_int(num_casual_users, "num_casual_users")
    rng = random.Random(("twitter", topic, seed).__repr__())
    communities = TWITTER_COMMUNITIES[topic]
    graph = DirectedGraph(name=f"twitter {topic}")

    celebrity_handles = communities.get("celebrities", ())
    # Communities: frequent, mostly reciprocated interactions.
    for community_name, handles in communities.items():
        for handle in handles:
            graph.add_node(handle)
        for first in handles:
            for second in handles:
                if first == second:
                    continue
                if rng.random() < 0.65:
                    graph.add_edge(first, second)
                    if rng.random() < (0.2 if community_name == "celebrities" else 0.75):
                        graph.add_edge(second, first)
    # Cross-community interactions: activists mention institutions and
    # celebrities; celebrities almost never answer.
    all_handles = [handle for handles in communities.values() for handle in handles]
    for handle in all_handles:
        for celebrity in celebrity_handles:
            if handle != celebrity and rng.random() < 0.5:
                graph.add_edge(handle, celebrity)
        for other in all_handles:
            if handle != other and rng.random() < 0.1:
                graph.add_edge(handle, other)

    # Casual participants: retweet celebrities and a couple of peers.
    casual_handles = [f"@{topic}_user{index}" for index in range(num_casual)]
    for handle in casual_handles:
        graph.add_node(handle)
    for handle in casual_handles:
        for celebrity in celebrity_handles:
            if rng.random() < 0.4:
                graph.add_edge(handle, celebrity)
        core_target = all_handles[rng.randrange(len(all_handles))]
        graph.add_edge(handle, core_target)
        if rng.random() < 0.2:
            graph.add_edge(core_target, handle)
        for _ in range(rng.randint(0, 2)):
            peer = casual_handles[rng.randrange(num_casual)]
            if peer != handle:
                graph.add_edge(handle, peer)
                if rng.random() < 0.25:
                    graph.add_edge(peer, handle)
    return graph
