"""Synthetic Amazon co-purchase graph.

The real dataset (Leskovec, Adamic & Huberman 2007) records, for each product,
the products most frequently co-purchased with it ("Customers who bought X
also bought Y"), yielding a directed graph over ~548k books, music CDs and
DVDs.  The synthetic stand-in keeps the three structural features Table II of
the paper exploits:

* **genre communities** whose members recommend each other in both
  directions (Tolkien volumes, dystopian classics, business books, ...),
* **runaway bestsellers** (the Harry Potter series, The Da Vinci Code) that
  receive co-purchase links from *every* genre but only link back within
  their own series — the asymmetry that makes Personalized PageRank suggest
  Harry Potter for "The Fellowship of the Ring" while CycleRank does not,
* a long tail of **catalogue filler** items with a couple of co-purchase
  links each.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from .._validation import require_non_negative_int
from ..graph.digraph import DirectedGraph
from .seeds import AMAZON_COMMUNITIES, AMAZON_POPULAR_ITEMS

__all__ = ["generate_amazon_graph", "AMAZON_REFERENCE_ITEMS"]

#: The two reference items of Table II and the community each belongs to.
AMAZON_REFERENCE_ITEMS: Dict[str, str] = {
    "1984": "dystopian-classics",
    "The Fellowship of the Ring": "tolkien",
}

#: Default number of catalogue filler items.
DEFAULT_NUM_FILLER_ITEMS = 600


def _add_genre_communities(graph: DirectedGraph, rng: random.Random) -> None:
    """Create each genre community with mostly reciprocated co-purchases."""
    for members in AMAZON_COMMUNITIES.values():
        for member in members:
            graph.add_node(member)
        for first in members:
            for second in members:
                if first == second:
                    continue
                if rng.random() < 0.75:
                    graph.add_edge(first, second)
                    if rng.random() < 0.85:
                        graph.add_edge(second, first)


def _add_bestseller_links(graph: DirectedGraph, rng: random.Random) -> None:
    """Link every community item towards the bestsellers, without reciprocation."""
    for popular in AMAZON_POPULAR_ITEMS:
        graph.add_node(popular)
    for members in AMAZON_COMMUNITIES.values():
        for member in members:
            for popular in AMAZON_POPULAR_ITEMS:
                if member == popular or popular in members:
                    # Items do not need an extra edge to a bestseller of their
                    # own genre; the community step already connected them.
                    continue
                if rng.random() < 0.45:
                    graph.add_edge(member, popular)


def _add_filler_items(graph: DirectedGraph, num_filler: int, rng: random.Random) -> None:
    """Create the catalogue long tail: each item co-purchased with a few others."""
    filler_labels = [f"Catalogue item {index}" for index in range(num_filler)]
    for label in filler_labels:
        graph.add_node(label)
    community_members: Tuple[str, ...] = tuple(
        member for members in AMAZON_COMMUNITIES.values() for member in members
    )
    for label in filler_labels:
        # Every catalogue item points at a handful of bestsellers...
        for popular in AMAZON_POPULAR_ITEMS:
            if rng.random() < 0.3:
                graph.add_edge(label, popular)
        # ...and at a couple of other items, rarely reciprocated.
        for _ in range(rng.randint(1, 3)):
            other = filler_labels[rng.randrange(num_filler)]
            if other != label:
                graph.add_edge(label, other)
                if rng.random() < 0.1:
                    graph.add_edge(other, label)
        if rng.random() < 0.15:
            graph.add_edge(label, rng.choice(community_members))


def generate_amazon_graph(
    *,
    num_filler_items: Optional[int] = None,
    seed: int = 0,
) -> DirectedGraph:
    """Generate the synthetic Amazon co-purchase graph.

    Parameters
    ----------
    num_filler_items:
        Number of catalogue long-tail items (default
        :data:`DEFAULT_NUM_FILLER_ITEMS`).
    seed:
        Pseudo-random seed; the same arguments always produce the same graph.

    Returns
    -------
    DirectedGraph
        A graph named ``"amazon co-purchase"`` whose labels are product titles.
    """
    if num_filler_items is None:
        num_filler = DEFAULT_NUM_FILLER_ITEMS
    else:
        num_filler = require_non_negative_int(num_filler_items, "num_filler_items")
    rng = random.Random(("amazon", seed).__repr__())
    graph = DirectedGraph(name="amazon co-purchase")
    _add_genre_communities(graph, rng)
    _add_bestseller_links(graph, rng)
    _add_filler_items(graph, num_filler, rng)
    return graph
