"""Curated seed topic models for the synthetic datasets.

A :class:`TopicSeed` describes one semantic neighbourhood of a graph: a
reference node (the query node used in the paper's tables), the set of
*core* nodes that are mutually related to it (these become reciprocally
linked and therefore lie on short cycles), and a set of *satellite* nodes
that the reference links to — or is linked from — without a strong mutual
relationship (these receive probability mass from Personalized PageRank but
little or no CycleRank score).

The concrete article, product and account names reproduce the entities that
appear in Tables I, II and III of the paper, so the regenerated tables are
directly comparable with the published ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "TopicSeed",
    "WIKIPEDIA_GLOBAL_HUBS",
    "WIKIPEDIA_TOPICS",
    "WIKIPEDIA_LANGUAGES",
    "WIKIPEDIA_SNAPSHOTS",
    "FAKE_NEWS_TOPICS",
    "AMAZON_COMMUNITIES",
    "AMAZON_POPULAR_ITEMS",
    "TWITTER_COMMUNITIES",
]


@dataclass(frozen=True)
class TopicSeed:
    """One semantic neighbourhood used to grow a synthetic graph.

    Attributes
    ----------
    reference:
        The query node the paper builds its tables around.
    core:
        Nodes mutually related to the reference: they link to each other and
        to the reference in both directions with high probability.
    satellites:
        Nodes the reference links *to* (or that link to the reference) without
        a reciprocated relationship; they typically also receive links from
        elsewhere in the graph, which is what makes Personalized PageRank
        promote them.
    """

    reference: str
    core: Tuple[str, ...]
    satellites: Tuple[str, ...] = field(default_factory=tuple)

    def all_nodes(self) -> List[str]:
        """Return reference, core and satellite labels in a stable order."""
        return [self.reference, *self.core, *self.satellites]


# --------------------------------------------------------------------------- #
# Wikipedia (wikilink) seeds
# --------------------------------------------------------------------------- #

#: Globally central articles: these are the pages with the highest in-degree
#: in the English Wikipedia and they form the PageRank top-5 of Table I.  In
#: the synthetic editions every other article links to them with high
#: probability and they link back only rarely.
WIKIPEDIA_GLOBAL_HUBS: Tuple[str, ...] = (
    "United States",
    "Animal",
    "Arthropod",
    "Association football",
    "Insect",
    "France",
    "Germany",
    "World War II",
    "English language",
    "The New York Times",
    "London",
    "India",
)

#: Topic neighbourhoods of the English edition used by Table I.
WIKIPEDIA_TOPICS: Dict[str, TopicSeed] = {
    "Freddie Mercury": TopicSeed(
        reference="Freddie Mercury",
        core=(
            "Queen (band)",
            "Brian May",
            "Roger Taylor",
            "John Deacon",
            "Bohemian Rhapsody",
            "A Night at the Opera",
        ),
        satellites=(
            "The Freddie Mercury Tribute Concert",
            "HIV/AIDS",
            "Queen II",
            "Zanzibar",
            "Mary Austin",
            "Rock music",
        ),
    ),
    "Pasta": TopicSeed(
        reference="Pasta",
        core=(
            "Italian cuisine",
            "Spaghetti",
            "Flour",
            "Durum",
            "Macaroni",
            "Lasagne",
        ),
        satellites=(
            "Italy",
            "Bolognese sauce",
            "Carbonara",
            "Tomato sauce",
            "Wheat",
            "Semolina",
        ),
    ),
    "Fake news": TopicSeed(
        reference="Fake news",
        core=(
            "CNN",
            "Facebook",
            "United States presidential election, 2016",
            "Propaganda",
            "Social media",
            "Post-truth politics",
        ),
        satellites=(
            "Donald Trump",
            "Journalism",
            "Misinformation",
            "Twitter",
            "BuzzFeed",
        ),
    ),
}

#: Language editions provided by WikiLinkGraphs and used in Table III.
WIKIPEDIA_LANGUAGES: Tuple[str, ...] = ("de", "en", "es", "fr", "it", "nl", "pl", "ru", "sv")

#: Yearly snapshots provided for each language edition.
WIKIPEDIA_SNAPSHOTS: Tuple[str, ...] = ("2018-03-01", "2013-03-01", "2008-03-01", "2003-03-01")

#: Per-language "Fake news" neighbourhoods reproducing the entities of
#: Table III.  The reference article title differs per language, and the
#: related concepts differ as well — that cross-cultural difference is the
#: point of the dataset-comparison use case.
FAKE_NEWS_TOPICS: Dict[str, TopicSeed] = {
    "de": TopicSeed(
        reference="Fake News",
        core=(
            "Barack Obama",
            "Tagesschau.de",
            "Desinformation",
            "Fake",
            "Donald Trump",
            "Lügenpresse",
        ),
        satellites=("Facebook", "Twitter", "Postfaktische Politik"),
    ),
    "en": TopicSeed(
        reference="Fake news",
        core=(
            "CNN",
            "Facebook",
            "United States presidential election, 2016",
            "Propaganda",
            "Social media",
            "Post-truth politics",
        ),
        satellites=("Donald Trump", "Journalism", "Misinformation"),
    ),
    "fr": TopicSeed(
        reference="Fake news",
        core=(
            "Ère post-vérité",
            "Donald Trump",
            "Facebook",
            "Hoax",
            "Alex Jones (complotiste)",
            "Désinformation",
        ),
        satellites=("Twitter", "Théorie du complot", "CNN"),
    ),
    "it": TopicSeed(
        reference="Fake news",
        core=(
            "Disinformazione",
            "Post-verità",
            "Bufala",
            "Debunker",
            "Clickbait",
            "Complottismo",
        ),
        satellites=("Facebook", "Donald Trump", "Giornalismo"),
    ),
    "nl": TopicSeed(
        reference="Nepnieuws",
        core=(
            "Facebook",
            "Journalistiek",
            "Hoax",
            "Desinformatie",
            "Sociale media",
        ),
        satellites=("Donald Trump", "Twitter"),
    ),
    "pl": TopicSeed(
        reference="Fake news",
        core=(
            "Dezinformacja",
            "Propaganda",
            "Media społecznościowe",
            "Postprawda",
            "Plotka",
        ),
        satellites=("Facebook", "Donald Trump", "Dziennikarstwo"),
    ),
    "es": TopicSeed(
        reference="Fake news",
        core=(
            "Desinformación",
            "Posverdad",
            "Bulo",
            "Propaganda",
            "Redes sociales",
        ),
        satellites=("Facebook", "Donald Trump", "Periodismo"),
    ),
    "ru": TopicSeed(
        reference="Фейковые новости",
        core=(
            "Дезинформация",
            "Пропаганда",
            "Социальные сети",
            "Постправда",
            "Жёлтая пресса",
        ),
        satellites=("Facebook", "Дональд Трамп"),
    ),
    "sv": TopicSeed(
        reference="Falska nyheter",
        core=(
            "Desinformation",
            "Propaganda",
            "Sociala medier",
            "Faktoid",
            "Källkritik",
        ),
        satellites=("Facebook", "Donald Trump"),
    ),
}

#: Per-language localisation of the music and food topics so that every
#: language edition contains analogous neighbourhoods (needed for snapshots
#: and for exercising the dataset-comparison use case beyond fake news).
_LOCALIZED_EXTRA_TOPICS: Dict[str, Dict[str, TopicSeed]] = {
    "en": {
        "Freddie Mercury": WIKIPEDIA_TOPICS["Freddie Mercury"],
        "Pasta": WIKIPEDIA_TOPICS["Pasta"],
    },
}


def topics_for_language(language: str) -> Dict[str, TopicSeed]:
    """Return every topic seed available for ``language``.

    Every language gets its "Fake news" neighbourhood (Table III); the English
    edition additionally gets the "Freddie Mercury" and "Pasta" neighbourhoods
    used by Table I.  Other languages reuse the English music/food topics with
    the same titles, mirroring the fact that most entities of Table I exist in
    every large Wikipedia edition.
    """
    topics: Dict[str, TopicSeed] = {}
    fake_news = FAKE_NEWS_TOPICS.get(language)
    if fake_news is not None:
        topics[fake_news.reference] = fake_news
    extra = _LOCALIZED_EXTRA_TOPICS.get(language, _LOCALIZED_EXTRA_TOPICS["en"])
    for name, seed in extra.items():
        topics.setdefault(name, seed)
    return topics


# --------------------------------------------------------------------------- #
# Amazon co-purchase seeds
# --------------------------------------------------------------------------- #

#: Genre communities of the co-purchase graph.  Within a community items are
#: co-purchased in both directions; the first entry of each tuple is the
#: representative reference item used in Table II when applicable.
AMAZON_COMMUNITIES: Dict[str, Tuple[str, ...]] = {
    "dystopian-classics": (
        "1984",
        "Animal Farm",
        "Fahrenheit 451",
        "The Catcher in the Rye",
        "Brave New World",
        "Lord of the Flies",
        "To Kill a Mockingbird",
        "The Great Gatsby",
    ),
    "tolkien": (
        "The Fellowship of the Ring",
        "The Hobbit",
        "The Return of the King",
        "The Silmarillion",
        "The Two Towers",
        "Unfinished Tales",
    ),
    "business": (
        "Good to Great",
        "Built to Last",
        "Who Moved My Cheese?",
        "The 7 Habits of Highly Effective People",
        "First, Break All the Rules",
    ),
    "psychology-reference": (
        "DSM-IV",
        "Diagnostic Interview",
        "Abnormal Psychology",
        "Clinical Handbook of Psychological Disorders",
    ),
    "harry-potter": (
        "Harry Potter (Book 1)",
        "Harry Potter (Book 2)",
        "Harry Potter (Book 3)",
        "Harry Potter (Book 4)",
        "Harry Potter (Book 5)",
    ),
}

#: Items that attract co-purchase links from every genre ("Customers who
#: bought X also bought Y" with Y a runaway bestseller) without linking back.
#: This asymmetry is what makes Personalized PageRank surface the Harry
#: Potter series for a Tolkien query in Table II while CycleRank does not.
AMAZON_POPULAR_ITEMS: Tuple[str, ...] = (
    "Harry Potter (Book 1)",
    "Harry Potter (Book 2)",
    "Harry Potter (Book 3)",
    "The Da Vinci Code",
    "Good to Great",
    "The Catcher in the Rye",
    "DSM-IV",
    "The Great Gatsby",
    "Lord of the Flies",
)


# --------------------------------------------------------------------------- #
# Twitter interaction seeds
# --------------------------------------------------------------------------- #

#: Communities of the two Twitter crawls (cop27 and 8m).  Each community is a
#: group of accounts that retweet/reply/quote/mention each other heavily; the
#: first member doubles as the usual query account in the examples.
TWITTER_COMMUNITIES: Dict[str, Dict[str, Tuple[str, ...]]] = {
    "cop27": {
        "climate-activists": (
            "@climate_voice",
            "@fridays_future",
            "@green_marta",
            "@carbon_watch",
            "@youth4climate",
            "@ecojustice_now",
        ),
        "delegations": (
            "@un_climate",
            "@cop27_official",
            "@eu_delegation",
            "@egypt_presidency",
            "@island_states",
        ),
        "journalists": (
            "@climate_desk",
            "@env_reporter",
            "@energy_news",
            "@cop_tracker",
        ),
        "celebrities": (
            "@global_celebrity",
            "@famous_activist",
            "@world_leader",
        ),
    },
    "8m": {
        "feminist-collectives": (
            "@8m_assembly",
            "@ni_una_menos",
            "@huelga_feminista",
            "@mujeres_en_lucha",
            "@feminist_strike",
        ),
        "unions": (
            "@union_general",
            "@trabajadoras",
            "@care_workers",
        ),
        "institutions": (
            "@equality_ministry",
            "@city_council",
            "@un_women",
        ),
        "celebrities": (
            "@global_celebrity",
            "@famous_artist",
            "@tv_presenter",
        ),
    },
}
