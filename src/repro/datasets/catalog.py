"""The catalog of pre-loaded datasets.

The demo ships 50 pre-loaded datasets; :func:`default_catalog` reproduces
that inventory with the synthetic generators of this package:

* 36 WikiLinkGraphs snapshots — 9 language editions × 4 yearly snapshots;
* 1 Amazon co-purchase graph plus 3 per-category variants (books, music,
  DVD) generated at different sizes;
* 2 Twitter interaction networks (cop27 and 8m) plus 2 smaller re-crawls;
* 6 synthetic reference graphs (preferential attachment, hubs-and-spokes,
  planted communities at two sizes each) used by the ablation benchmarks.

Graphs are generated lazily on first access and cached, so listing the
catalog is instantaneous while loading a dataset takes the generation cost
exactly once.  Users can also register their own datasets — either an
already-built :class:`DirectedGraph` or a file in one of the supported
formats — which is the catalog-side half of the demo's "upload your own
dataset" feature.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from ..exceptions import DatasetError, DatasetNotFoundError
from ..graph.digraph import DirectedGraph
from ..graph.generators import (
    hub_and_spoke_graph,
    preferential_attachment_graph,
    reciprocal_communities_graph,
)
from ..io.registry import read_graph
from .amazon import generate_amazon_graph
from .seeds import WIKIPEDIA_LANGUAGES, WIKIPEDIA_SNAPSHOTS
from .twitter import generate_twitter_graph
from .wikipedia import generate_wikilink_graph

__all__ = ["DatasetDescriptor", "DatasetCatalog", "default_catalog"]


@dataclass(frozen=True)
class DatasetDescriptor:
    """Metadata and loader for one catalog dataset.

    Attributes
    ----------
    dataset_id:
        Unique identifier used in task parameters (e.g. ``"enwiki-2018"``).
    family:
        Dataset family: ``"wikipedia"``, ``"amazon"``, ``"twitter"``,
        ``"synthetic"`` or ``"uploaded"``.
    description:
        One-line human-readable description shown in the dataset picker.
    loader:
        Zero-argument callable producing the :class:`DirectedGraph`.
    tags:
        Free-form tags (language code, snapshot, topic) used for filtering.
    """

    dataset_id: str
    family: str
    description: str
    loader: Callable[[], DirectedGraph] = field(compare=False, repr=False)
    tags: Dict[str, str] = field(default_factory=dict)

    def load(self) -> DirectedGraph:
        """Build (or rebuild) the dataset's graph."""
        graph = self.loader()
        if not isinstance(graph, DirectedGraph):
            raise DatasetError(
                f"loader for {self.dataset_id!r} returned {type(graph).__name__}, "
                "expected DirectedGraph"
            )
        return graph


class DatasetCatalog:
    """A registry of datasets addressable by identifier, with lazy loading."""

    def __init__(self) -> None:
        self._descriptors: Dict[str, DatasetDescriptor] = {}
        self._cache: Dict[str, DirectedGraph] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def register(self, descriptor: DatasetDescriptor, *, replace: bool = False) -> None:
        """Register a dataset descriptor.

        Raises
        ------
        DatasetError
            If the identifier is already taken and ``replace`` is ``False``.
        """
        if descriptor.dataset_id in self._descriptors and not replace:
            raise DatasetError(
                f"dataset {descriptor.dataset_id!r} is already registered; "
                "pass replace=True to overwrite"
            )
        self._descriptors[descriptor.dataset_id] = descriptor
        self._cache.pop(descriptor.dataset_id, None)

    def register_graph(
        self,
        dataset_id: str,
        graph: DirectedGraph,
        *,
        description: str = "",
        family: str = "uploaded",
        replace: bool = False,
    ) -> DatasetDescriptor:
        """Register an already-built graph (the "upload" path for in-memory data)."""
        descriptor = DatasetDescriptor(
            dataset_id=dataset_id,
            family=family,
            description=description or f"uploaded dataset {dataset_id}",
            loader=lambda: graph,
        )
        self.register(descriptor, replace=replace)
        self._cache[dataset_id] = graph
        return descriptor

    def register_file(
        self,
        dataset_id: str,
        path: Union[str, Path],
        *,
        format: Optional[str] = None,
        description: str = "",
        replace: bool = False,
    ) -> DatasetDescriptor:
        """Register a dataset backed by a file in a supported format."""
        path = Path(path)
        descriptor = DatasetDescriptor(
            dataset_id=dataset_id,
            family="uploaded",
            description=description or f"uploaded file {path.name}",
            loader=lambda: read_graph(path, format=format, name=dataset_id),
            tags={"path": str(path)},
        )
        self.register(descriptor, replace=replace)
        return descriptor

    def unregister(self, dataset_id: str) -> None:
        """Remove a dataset from the catalog (no error if absent)."""
        self._descriptors.pop(dataset_id, None)
        self._cache.pop(dataset_id, None)

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def describe(self, dataset_id: str) -> DatasetDescriptor:
        """Return the descriptor of ``dataset_id`` (raises if unknown)."""
        descriptor = self._descriptors.get(dataset_id)
        if descriptor is None:
            raise DatasetNotFoundError(dataset_id)
        return descriptor

    def load(self, dataset_id: str) -> DirectedGraph:
        """Return the dataset's graph, building and caching it on first access."""
        if dataset_id not in self._cache:
            self._cache[dataset_id] = self.describe(dataset_id).load()
        return self._cache[dataset_id]

    def __contains__(self, dataset_id: object) -> bool:
        return dataset_id in self._descriptors

    def __len__(self) -> int:
        return len(self._descriptors)

    def __iter__(self) -> Iterator[DatasetDescriptor]:
        return iter(self.list())

    def list(self, *, family: Optional[str] = None) -> List[DatasetDescriptor]:
        """Return all descriptors (optionally filtered by family), sorted by id."""
        descriptors = sorted(self._descriptors.values(), key=lambda d: d.dataset_id)
        if family is not None:
            descriptors = [d for d in descriptors if d.family == family]
        return descriptors

    def identifiers(self, *, family: Optional[str] = None) -> List[str]:
        """Return all dataset identifiers (optionally filtered by family)."""
        return [descriptor.dataset_id for descriptor in self.list(family=family)]

    def families(self) -> List[str]:
        """Return the distinct dataset families present in the catalog."""
        return sorted({descriptor.family for descriptor in self._descriptors.values()})


def _wikipedia_descriptors() -> List[DatasetDescriptor]:
    descriptors = []
    for language in WIKIPEDIA_LANGUAGES:
        for snapshot in WIKIPEDIA_SNAPSHOTS:
            year = snapshot.split("-")[0]
            dataset_id = f"{language}wiki-{year}"
            descriptors.append(
                DatasetDescriptor(
                    dataset_id=dataset_id,
                    family="wikipedia",
                    description=(
                        f"Synthetic wikilink graph, {language} edition, snapshot {snapshot}"
                    ),
                    loader=(
                        lambda language=language, snapshot=snapshot: generate_wikilink_graph(
                            language, snapshot
                        )
                    ),
                    tags={"language": language, "snapshot": snapshot},
                )
            )
    return descriptors


def _amazon_descriptors() -> List[DatasetDescriptor]:
    sizes = {
        "amazon-copurchase": 600,
        "amazon-books": 450,
        "amazon-music": 300,
        "amazon-dvd": 200,
    }
    descriptors = []
    for index, (dataset_id, num_filler) in enumerate(sizes.items()):
        category = dataset_id.split("-", 1)[1]
        descriptors.append(
            DatasetDescriptor(
                dataset_id=dataset_id,
                family="amazon",
                description=f"Synthetic Amazon co-purchase graph ({category})",
                loader=(
                    lambda num_filler=num_filler, index=index: generate_amazon_graph(
                        num_filler_items=num_filler, seed=index
                    )
                ),
                tags={"category": category},
            )
        )
    return descriptors


def _twitter_descriptors() -> List[DatasetDescriptor]:
    crawls = {
        "twitter-cop27": ("cop27", 300, 0),
        "twitter-8m": ("8m", 300, 0),
        "twitter-cop27-recrawl": ("cop27", 150, 1),
        "twitter-8m-recrawl": ("8m", 150, 1),
    }
    descriptors = []
    for dataset_id, (topic, num_casual, seed) in crawls.items():
        descriptors.append(
            DatasetDescriptor(
                dataset_id=dataset_id,
                family="twitter",
                description=f"Synthetic Twitter interaction network about {topic}",
                loader=(
                    lambda topic=topic, num_casual=num_casual, seed=seed: generate_twitter_graph(
                        topic, num_casual_users=num_casual, seed=seed
                    )
                ),
                tags={"topic": topic},
            )
        )
    return descriptors


def _synthetic_descriptors() -> List[DatasetDescriptor]:
    descriptors = [
        DatasetDescriptor(
            dataset_id="synthetic-pa-small",
            family="synthetic",
            description="Preferential-attachment graph, 300 nodes",
            loader=lambda: preferential_attachment_graph(300, 3, seed=1, name="pa-small"),
        ),
        DatasetDescriptor(
            dataset_id="synthetic-pa-large",
            family="synthetic",
            description="Preferential-attachment graph, 1500 nodes",
            loader=lambda: preferential_attachment_graph(1500, 3, seed=2, name="pa-large"),
        ),
        DatasetDescriptor(
            dataset_id="synthetic-hubs-small",
            family="synthetic",
            description="Hub-and-spoke graph, 10 hubs x 20 spokes",
            loader=lambda: hub_and_spoke_graph(10, 20, hub_back_probability=0.1, seed=3,
                                               name="hubs-small"),
        ),
        DatasetDescriptor(
            dataset_id="synthetic-hubs-large",
            family="synthetic",
            description="Hub-and-spoke graph, 20 hubs x 50 spokes",
            loader=lambda: hub_and_spoke_graph(20, 50, hub_back_probability=0.1, seed=4,
                                               name="hubs-large"),
        ),
        DatasetDescriptor(
            dataset_id="synthetic-communities-small",
            family="synthetic",
            description="Planted reciprocal communities, 6 x 15 nodes",
            loader=lambda: reciprocal_communities_graph(6, 15, seed=5, name="communities-small"),
        ),
        DatasetDescriptor(
            dataset_id="synthetic-communities-large",
            family="synthetic",
            description="Planted reciprocal communities, 10 x 30 nodes",
            loader=lambda: reciprocal_communities_graph(10, 30, seed=6, name="communities-large"),
        ),
    ]
    return descriptors


def default_catalog() -> DatasetCatalog:
    """Build the catalog of the 50 pre-loaded datasets."""
    catalog = DatasetCatalog()
    for descriptor in (
        _wikipedia_descriptors()
        + _amazon_descriptors()
        + _twitter_descriptors()
        + _synthetic_descriptors()
    ):
        catalog.register(descriptor)
    return catalog
