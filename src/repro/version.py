"""Package version, exposed separately so the CLI can print it cheaply."""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.0.0"
