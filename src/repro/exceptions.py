"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError``, ``ValueError`` raised by argument
validation) propagate normally where appropriate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "NodeNotFoundError",
    "EdgeNotFoundError",
    "GraphFormatError",
    "DatasetError",
    "DatasetNotFoundError",
    "AlgorithmError",
    "AlgorithmNotFoundError",
    "InvalidParameterError",
    "ConvergenceError",
    "PlatformError",
    "TaskError",
    "TaskNotFoundError",
    "JobCancelledError",
    "DeadlineExceededError",
    "GatewayOverloadedError",
    "ExecutorError",
    "StorageError",
]


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors related to graph construction or manipulation."""


class NodeNotFoundError(GraphError, KeyError):
    """Raised when a node (by id or label) is not present in a graph.

    Inherits from :class:`KeyError` so that mapping-style call sites keep
    working, while still being catchable as a :class:`GraphError`.
    """

    def __init__(self, node: object) -> None:
        super().__init__(node)
        self.node = node

    def __str__(self) -> str:  # KeyError.__str__ uses repr of args; be friendlier.
        return f"node not found in graph: {self.node!r}"


class EdgeNotFoundError(GraphError, KeyError):
    """Raised when an edge is not present in a graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__((source, target))
        self.source = source
        self.target = target

    def __str__(self) -> str:
        return f"edge not found in graph: {self.source!r} -> {self.target!r}"


class GraphFormatError(ReproError):
    """Raised when a graph file cannot be parsed or written.

    Attributes
    ----------
    line_number:
        1-based line number where parsing failed, when known.
    """

    def __init__(self, message: str, *, line_number: int | None = None) -> None:
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class DatasetError(ReproError):
    """Base class for dataset-catalog errors."""


class DatasetNotFoundError(DatasetError, KeyError):
    """Raised when a dataset identifier is not present in the catalog."""

    def __init__(self, dataset_id: str) -> None:
        super().__init__(dataset_id)
        self.dataset_id = dataset_id

    def __str__(self) -> str:
        return f"dataset not found in catalog: {self.dataset_id!r}"


class AlgorithmError(ReproError):
    """Base class for algorithm execution errors."""


class AlgorithmNotFoundError(AlgorithmError, KeyError):
    """Raised when an algorithm name is not present in the registry."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"algorithm not registered: {self.name!r}"


class InvalidParameterError(AlgorithmError, ValueError):
    """Raised when an algorithm or platform parameter is invalid."""


class ConvergenceError(AlgorithmError):
    """Raised when an iterative algorithm fails to converge.

    Attributes
    ----------
    iterations:
        Number of iterations performed before giving up.
    residual:
        Last observed residual (L1 change between iterations), when known.
    """

    def __init__(self, message: str, *, iterations: int, residual: float | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual


class PlatformError(ReproError):
    """Base class for platform (gateway / scheduler / executor) errors."""


class TaskError(PlatformError):
    """Raised when a task cannot be built, scheduled, or executed."""


class TaskNotFoundError(TaskError, KeyError):
    """Raised when a task or query-set identifier is unknown."""

    def __init__(self, task_id: str) -> None:
        super().__init__(task_id)
        self.task_id = task_id

    def __str__(self) -> str:
        return f"task not found: {self.task_id!r}"


class JobCancelledError(TaskError):
    """Raised to settle work abandoned because its job was cancelled.

    Queries whose single-flight future is exclusively owned by a cancelled
    job are settled with this error; queries shared with other live jobs
    keep computing and never see it.
    """

    def __init__(self, job_id: str) -> None:
        super().__init__(f"job {job_id!r} was cancelled")
        self.job_id = job_id


class DeadlineExceededError(TaskError):
    """Raised when a submission's deadline expires before its work could run.

    Deadline-expired jobs settle through the event log with a typed
    ``deadline_exceeded`` event (mirroring cancellation) instead of
    occupying a worker; storage reads abandoned mid-failover because the
    deadline ran out raise this directly.

    Attributes
    ----------
    deadline_ms:
        The submission's deadline in milliseconds, when known.
    """

    def __init__(self, message: str, *, deadline_ms: int | None = None) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms


class GatewayOverloadedError(PlatformError):
    """Raised when admission control sheds a submission (the 429 path).

    Shedding happens *before* the job is enqueued, so nothing was accepted
    and nothing needs cancelling — the caller should back off and retry.

    Attributes
    ----------
    retry_after:
        Suggested backoff in seconds (the REST layer turns it into a
        ``Retry-After`` header, the CLI into a client-side sleep).
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class ExecutorError(PlatformError):
    """Raised when an executor node fails while running a task."""


class StorageError(PlatformError):
    """Raised when the datastore cannot read or write an object."""
