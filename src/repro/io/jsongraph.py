"""Reader and writer for a JSON graph format (node-link style).

The paper's conclusions note that the demo supports three dataset formats
"and we plan to add new ones in the future".  This module adds the most
commonly requested one: a JSON document in the node-link style used by
d3.js and by networkx's ``node_link_data``::

    {
      "directed": true,
      "name": "my graph",
      "nodes": [{"id": "Pasta"}, {"id": "Italian cuisine"}],
      "links": [{"source": "Pasta", "target": "Italian cuisine"}]
    }

``nodes`` entries may be plain strings instead of objects; ``links`` may use
``"edges"`` as the key and integer indexes into ``nodes`` as endpoints.  The
writer always emits the canonical form shown above.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, TextIO, Tuple, Union

from ..exceptions import GraphFormatError
from ..graph.builder import GraphBuilder
from ..graph.digraph import DirectedGraph

__all__ = ["read_json_graph", "write_json_graph", "parse_json_graph", "format_json_graph"]

PathOrText = Union[str, Path, TextIO]


def _node_identifier(entry: Any, position: int) -> str:
    """Extract the identifier of one ``nodes`` entry."""
    if isinstance(entry, str):
        return entry
    if isinstance(entry, (int, float)) and not isinstance(entry, bool):
        return str(entry)
    if isinstance(entry, Mapping):
        for key in ("id", "label", "name"):
            if key in entry:
                return str(entry[key])
        raise GraphFormatError(
            f"node entry {position} has none of the keys 'id', 'label', 'name'"
        )
    raise GraphFormatError(f"cannot interpret node entry {position}: {entry!r}")


def parse_json_graph(
    payload: Union[str, Mapping[str, Any]],
    *,
    name: str = "",
    allow_self_loops: bool = False,
) -> Tuple[DirectedGraph, GraphBuilder]:
    """Parse a node-link JSON document; return ``(graph, builder)``."""
    if isinstance(payload, str):
        try:
            document = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise GraphFormatError(f"invalid JSON: {exc}") from exc
    else:
        document = payload
    if not isinstance(document, Mapping):
        raise GraphFormatError("the JSON document must be an object")
    if document.get("directed") is False:
        raise GraphFormatError(
            "the document declares an undirected graph; only directed graphs are supported"
        )

    builder = GraphBuilder(
        name=name or str(document.get("name", "")), allow_self_loops=allow_self_loops
    )
    raw_nodes = document.get("nodes", [])
    if not isinstance(raw_nodes, list):
        raise GraphFormatError("'nodes' must be a list")
    identifiers = []
    for position, entry in enumerate(raw_nodes):
        identifier = _node_identifier(entry, position)
        identifiers.append(identifier)
        builder.add_node(identifier)

    raw_links = document.get("links", document.get("edges", []))
    if not isinstance(raw_links, list):
        raise GraphFormatError("'links' (or 'edges') must be a list")

    def resolve_endpoint(value: Any, line: int) -> str:
        if isinstance(value, bool):
            raise GraphFormatError(f"link {line}: boolean endpoint {value!r}")
        if isinstance(value, int):
            if not 0 <= value < len(identifiers):
                raise GraphFormatError(
                    f"link {line}: index {value} outside the nodes list"
                )
            return identifiers[value]
        if isinstance(value, str):
            return value
        raise GraphFormatError(f"link {line}: cannot interpret endpoint {value!r}")

    for position, entry in enumerate(raw_links):
        if not isinstance(entry, Mapping):
            raise GraphFormatError(f"link {position} must be an object")
        if "source" not in entry or "target" not in entry:
            raise GraphFormatError(f"link {position} must have 'source' and 'target'")
        source = resolve_endpoint(entry["source"], position)
        target = resolve_endpoint(entry["target"], position)
        builder.add_edge(source, target)
    return builder.build(), builder


def read_json_graph(
    source: PathOrText,
    *,
    name: str | None = None,
    allow_self_loops: bool = False,
) -> DirectedGraph:
    """Read a node-link JSON graph from a path or file-like object."""
    if isinstance(source, (str, Path)):
        graph_name = name if name is not None else Path(str(source)).stem
        text = Path(source).read_text(encoding="utf-8")
    else:
        graph_name = name or ""
        text = source.read()
    graph, _ = parse_json_graph(text, name=graph_name, allow_self_loops=allow_self_loops)
    return graph


def format_json_graph(graph: DirectedGraph, *, indent: int = 2) -> str:
    """Render ``graph`` as a canonical node-link JSON document."""
    document: Dict[str, Any] = {
        "directed": True,
        "name": graph.name,
        "nodes": [{"id": graph.label_of(node)} for node in graph.nodes()],
        "links": [
            {"source": graph.label_of(edge.source), "target": graph.label_of(edge.target)}
            for edge in graph.edges()
        ],
    }
    return json.dumps(document, indent=indent, ensure_ascii=False)


def write_json_graph(graph: DirectedGraph, target: PathOrText, *, indent: int = 2) -> None:
    """Write ``graph`` as node-link JSON to a path or file-like object."""
    text = format_json_graph(graph, indent=indent)
    if isinstance(target, (str, Path)):
        Path(target).write_text(text + "\n", encoding="utf-8")
    else:
        target.write(text + "\n")
