"""Reader and writer for the Pajek ``.net`` format.

The subset implemented here is the one used for plain directed graphs (and
the one the demo's instructions page documents):

* ``*Vertices <n>`` followed by ``<id> "<label>"`` lines (label optional);
* ``*Arcs`` followed by ``<source> <target>`` lines (directed edges);
* ``*Edges`` followed by ``<u> <v>`` lines (undirected edges, translated to
  a pair of directed edges).

Vertex ids in the file are 1-based, as per the Pajek convention.
"""

from __future__ import annotations

import io
import shlex
from pathlib import Path
from typing import Iterable, Optional, TextIO, Tuple, Union

from ..exceptions import GraphFormatError
from ..graph.builder import GraphBuilder
from ..graph.digraph import DirectedGraph

__all__ = ["read_pajek", "write_pajek", "parse_pajek", "format_pajek"]

PathOrText = Union[str, Path, TextIO]


def parse_pajek(
    lines: Iterable[str],
    *,
    name: str = "",
    allow_self_loops: bool = False,
) -> Tuple[DirectedGraph, GraphBuilder]:
    """Parse Pajek lines; return ``(graph, builder)``."""
    builder = GraphBuilder(name=name, allow_self_loops=allow_self_loops)
    section = None
    declared_vertices: Optional[int] = None
    id_to_node = {}

    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line or line.startswith("%"):
            builder.skip_line()
            continue
        lowered = line.lower()
        if lowered.startswith("*vertices"):
            section = "vertices"
            parts = line.split()
            if len(parts) >= 2:
                try:
                    declared_vertices = int(parts[1])
                except ValueError as exc:
                    raise GraphFormatError(
                        f"invalid vertex count {parts[1]!r}", line_number=line_number
                    ) from exc
            continue
        if lowered.startswith("*arcs"):
            section = "arcs"
            continue
        if lowered.startswith("*edges"):
            section = "edges"
            continue
        if lowered.startswith("*"):
            raise GraphFormatError(f"unknown section {line!r}", line_number=line_number)

        if section == "vertices":
            try:
                tokens = shlex.split(line)
            except ValueError as exc:
                raise GraphFormatError(str(exc), line_number=line_number) from exc
            if not tokens:
                builder.skip_line()
                continue
            try:
                vertex_id = int(tokens[0])
            except ValueError as exc:
                raise GraphFormatError(
                    f"invalid vertex id {tokens[0]!r}", line_number=line_number
                ) from exc
            label = tokens[1] if len(tokens) > 1 else f"v{vertex_id}"
            id_to_node[vertex_id] = builder.add_node(label)
        elif section in ("arcs", "edges"):
            tokens = line.split()
            if len(tokens) < 2:
                raise GraphFormatError(
                    f"expected 'source target', got {line!r}", line_number=line_number
                )
            try:
                source_id, target_id = int(tokens[0]), int(tokens[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"non-integer endpoint in {line!r}", line_number=line_number
                ) from exc
            for vertex_id in (source_id, target_id):
                if vertex_id not in id_to_node:
                    # Vertices may be implicit when no label section is given.
                    id_to_node[vertex_id] = builder.add_node(f"v{vertex_id}")
            builder.add_edge(id_to_node[source_id], id_to_node[target_id])
            if section == "edges":
                builder.add_edge(id_to_node[target_id], id_to_node[source_id])
        else:
            raise GraphFormatError(
                f"data line before any *Vertices/*Arcs section: {line!r}",
                line_number=line_number,
            )

    graph = builder.build()
    if declared_vertices is not None and graph.number_of_nodes() < declared_vertices:
        # Pad isolated vertices that were declared but never listed.
        for missing in range(graph.number_of_nodes(), declared_vertices):
            graph.add_node(f"v{missing + 1}")
    return graph, builder


def read_pajek(
    source: PathOrText,
    *,
    name: Optional[str] = None,
    allow_self_loops: bool = False,
) -> DirectedGraph:
    """Read a Pajek ``.net`` file from a path or file-like object."""
    if isinstance(source, (str, Path)):
        graph_name = name if name is not None else Path(str(source)).stem
        with open(source, "r", encoding="utf-8") as handle:
            graph, _ = parse_pajek(handle, name=graph_name, allow_self_loops=allow_self_loops)
        return graph
    graph, _ = parse_pajek(source, name=name or "", allow_self_loops=allow_self_loops)
    return graph


def format_pajek(graph: DirectedGraph) -> str:
    """Render ``graph`` in Pajek format (1-based vertex ids, quoted labels)."""
    buffer = io.StringIO()
    buffer.write(f"*Vertices {graph.number_of_nodes()}\n")
    for node in graph.nodes():
        label = graph.label_of(node).replace('"', "'")
        buffer.write(f'{node + 1} "{label}"\n')
    buffer.write("*Arcs\n")
    for edge in graph.edges():
        buffer.write(f"{edge.source + 1} {edge.target + 1}\n")
    return buffer.getvalue()


def write_pajek(graph: DirectedGraph, target: PathOrText) -> None:
    """Write ``graph`` in Pajek format to a path or file-like object."""
    text = format_pajek(graph)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
