"""Format detection and dispatch for graph files.

:func:`read_graph` and :func:`write_graph` pick the right reader/writer from
the file extension (``.csv`` / ``.tsv`` / ``.edgelist``, ``.net`` / ``.pajek``,
``.asd``) or from an explicit ``format`` argument, mirroring how the demo's
upload endpoint decides how to parse a user-provided dataset.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from ..exceptions import GraphFormatError
from ..graph.digraph import DirectedGraph
from .asd import read_asd, write_asd
from .edgelist import read_edgelist, write_edgelist
from .jsongraph import read_json_graph, write_json_graph
from .pajek import read_pajek, write_pajek

__all__ = ["SUPPORTED_FORMATS", "detect_format", "read_graph", "write_graph"]

#: Formats the platform accepts: the three of the paper's Instructions page
#: plus node-link JSON (the "new formats in the future" the conclusions
#: announce).
SUPPORTED_FORMATS: Tuple[str, ...] = ("edgelist", "pajek", "asd", "json")

_EXTENSION_TO_FORMAT: Dict[str, str] = {
    ".csv": "edgelist",
    ".tsv": "edgelist",
    ".edgelist": "edgelist",
    ".edges": "edgelist",
    ".net": "pajek",
    ".pajek": "pajek",
    ".asd": "asd",
    ".json": "json",
}

_READERS: Dict[str, Callable[..., DirectedGraph]] = {
    "edgelist": read_edgelist,
    "pajek": read_pajek,
    "asd": read_asd,
    "json": read_json_graph,
}

_WRITERS: Dict[str, Callable[..., None]] = {
    "edgelist": write_edgelist,
    "pajek": write_pajek,
    "asd": write_asd,
    "json": write_json_graph,
}


def detect_format(path: Union[str, Path]) -> str:
    """Infer the graph format from a file extension.

    Raises
    ------
    GraphFormatError
        If the extension is not associated with any supported format.
    """
    suffix = Path(str(path)).suffix.lower()
    fmt = _EXTENSION_TO_FORMAT.get(suffix)
    if fmt is None:
        raise GraphFormatError(
            f"cannot infer graph format from extension {suffix!r}; "
            f"supported formats: {', '.join(SUPPORTED_FORMATS)}"
        )
    return fmt


def _resolve_format(path: Union[str, Path], fmt: Optional[str]) -> str:
    if fmt is not None:
        if fmt not in SUPPORTED_FORMATS:
            raise GraphFormatError(
                f"unsupported format {fmt!r}; supported formats: "
                f"{', '.join(SUPPORTED_FORMATS)}"
            )
        return fmt
    return detect_format(path)


def read_graph(
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    name: Optional[str] = None,
    **reader_options,
) -> DirectedGraph:
    """Read a graph file, dispatching on extension or explicit ``format``.

    Extra keyword arguments (e.g. ``delimiter`` for edge lists) are passed to
    the underlying reader.
    """
    fmt = _resolve_format(path, format)
    reader = _READERS[fmt]
    if fmt == "edgelist" and "delimiter" not in reader_options:
        if Path(str(path)).suffix.lower() == ".tsv":
            reader_options["delimiter"] = "\t"
    return reader(path, name=name, **reader_options)


def write_graph(
    graph: DirectedGraph,
    path: Union[str, Path],
    *,
    format: Optional[str] = None,
    **writer_options,
) -> None:
    """Write ``graph`` to ``path``, dispatching on extension or explicit ``format``."""
    fmt = _resolve_format(path, format)
    writer = _WRITERS[fmt]
    if fmt == "edgelist" and "delimiter" not in writer_options:
        if Path(str(path)).suffix.lower() == ".tsv":
            writer_options["delimiter"] = "\t"
    writer(graph, path, **writer_options)
