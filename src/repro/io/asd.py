"""Reader and writer for the demo's own ASD format.

ASD is the compact format the CycleRank tooling uses internally:

* an optional comment header (lines starting with ``#``); the special
  comment ``#index-base: 0`` or ``#index-base: 1`` declares whether node ids
  start at 0 or 1 (default 0);
* a mandatory first non-comment line ``<num_nodes> <num_edges>``;
* one ``<source> <target>`` pair per subsequent line;
* an optional trailing ``#labels`` section with ``<id> <label>`` lines.

The declared node and edge counts are validated against the body, which
catches the truncated-upload errors the web demo guards against.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Optional, TextIO, Tuple, Union

from ..exceptions import GraphFormatError
from ..graph.builder import GraphBuilder
from ..graph.digraph import DirectedGraph

__all__ = ["read_asd", "write_asd", "parse_asd", "format_asd"]

PathOrText = Union[str, Path, TextIO]


def parse_asd(
    lines: Iterable[str],
    *,
    name: str = "",
    allow_self_loops: bool = False,
) -> Tuple[DirectedGraph, GraphBuilder]:
    """Parse ASD lines; return ``(graph, builder)``."""
    builder = GraphBuilder(name=name, allow_self_loops=allow_self_loops)
    index_base = 0
    declared: Optional[Tuple[int, int]] = None
    edge_lines = 0
    in_labels_section = False
    pending_labels = {}

    for line_number, raw_line in enumerate(lines, start=1):
        line = raw_line.strip()
        if not line:
            builder.skip_line()
            continue
        if line.startswith("#"):
            body = line[1:].strip().lower()
            if body.startswith("index-base:"):
                base_token = body.split(":", 1)[1].strip()
                if base_token not in ("0", "1"):
                    raise GraphFormatError(
                        f"index-base must be 0 or 1, got {base_token!r}",
                        line_number=line_number,
                    )
                index_base = int(base_token)
            elif body == "labels":
                in_labels_section = True
            else:
                builder.skip_line()
            continue
        if in_labels_section:
            tokens = line.split(maxsplit=1)
            if len(tokens) != 2:
                raise GraphFormatError(
                    f"expected '<id> <label>' in labels section, got {line!r}",
                    line_number=line_number,
                )
            try:
                node_id = int(tokens[0]) - index_base
            except ValueError as exc:
                raise GraphFormatError(
                    f"invalid node id {tokens[0]!r} in labels section",
                    line_number=line_number,
                ) from exc
            pending_labels[node_id] = tokens[1]
            continue
        tokens = line.split()
        if declared is None:
            if len(tokens) != 2:
                raise GraphFormatError(
                    f"header must be '<num_nodes> <num_edges>', got {line!r}",
                    line_number=line_number,
                )
            try:
                declared = (int(tokens[0]), int(tokens[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"non-integer header fields in {line!r}", line_number=line_number
                ) from exc
            if declared[0] < 0 or declared[1] < 0:
                raise GraphFormatError(
                    "node and edge counts must be non-negative", line_number=line_number
                )
            continue
        if len(tokens) != 2:
            raise GraphFormatError(
                f"expected '<source> <target>', got {line!r}", line_number=line_number
            )
        try:
            source = int(tokens[0]) - index_base
            target = int(tokens[1]) - index_base
        except ValueError as exc:
            raise GraphFormatError(
                f"non-integer endpoint in {line!r}", line_number=line_number
            ) from exc
        if source < 0 or target < 0:
            raise GraphFormatError(
                f"node id below index base in {line!r}", line_number=line_number
            )
        if source >= declared[0] or target >= declared[0]:
            raise GraphFormatError(
                f"node id {max(source, target) + index_base} exceeds the declared "
                f"node count {declared[0]}",
                line_number=line_number,
            )
        edge_lines += 1
        builder.add_edge(source, target)

    if declared is None:
        raise GraphFormatError("missing '<num_nodes> <num_edges>' header")
    graph = builder.build()
    while graph.number_of_nodes() < declared[0]:
        graph.add_node()
    if edge_lines != declared[1]:
        raise GraphFormatError(
            f"header declares {declared[1]} edges but the body lists {edge_lines}"
        )
    for node_id, label in pending_labels.items():
        if 0 <= node_id < graph.number_of_nodes():
            graph.set_label(node_id, label)
        else:
            raise GraphFormatError(
                f"label refers to unknown node id {node_id + index_base}"
            )
    return graph, builder


def read_asd(
    source: PathOrText,
    *,
    name: Optional[str] = None,
    allow_self_loops: bool = False,
) -> DirectedGraph:
    """Read an ASD file from a path or file-like object."""
    if isinstance(source, (str, Path)):
        graph_name = name if name is not None else Path(str(source)).stem
        with open(source, "r", encoding="utf-8") as handle:
            graph, _ = parse_asd(handle, name=graph_name, allow_self_loops=allow_self_loops)
        return graph
    graph, _ = parse_asd(source, name=name or "", allow_self_loops=allow_self_loops)
    return graph


def format_asd(graph: DirectedGraph, *, include_labels: bool = True) -> str:
    """Render ``graph`` in ASD format (0-based, labels appended when present)."""
    buffer = io.StringIO()
    buffer.write("#index-base: 0\n")
    buffer.write(f"{graph.number_of_nodes()} {graph.number_of_edges()}\n")
    for edge in graph.edges():
        buffer.write(f"{edge.source} {edge.target}\n")
    if include_labels:
        labelled = [
            (node, graph.raw_label_of(node))
            for node in graph.nodes()
            if graph.raw_label_of(node) is not None
        ]
        if labelled:
            buffer.write("#labels\n")
            for node, label in labelled:
                buffer.write(f"{node} {label}\n")
    return buffer.getvalue()


def write_asd(graph: DirectedGraph, target: PathOrText, *, include_labels: bool = True) -> None:
    """Write ``graph`` in ASD format to a path or file-like object."""
    text = format_asd(graph, include_labels=include_labels)
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(text)
    else:
        target.write(text)
