"""Graph file formats supported by the demo platform.

The paper's demo accepts user-uploaded datasets in three formats:

* **edgelist (CSV)** — one edge per line, ``source,target`` (optionally with
  a header), endpoints are either integer ids or quoted labels;
* **Pajek NET** — ``*Vertices`` section listing nodes then ``*Arcs`` /
  ``*Edges`` sections listing edges;
* **ASD** — the demo's own compact format: a header line
  ``<num_nodes> <num_edges>`` followed by one ``source target`` pair per
  line (0- or 1-based, auto-detected from a ``#index-base`` comment).

Every format has a reader and a writer, all of which round-trip losslessly,
and :func:`read_graph` / :func:`write_graph` dispatch on file extension or an
explicit format name.
"""

from __future__ import annotations

from .asd import read_asd, write_asd
from .edgelist import read_edgelist, write_edgelist
from .jsongraph import read_json_graph, write_json_graph
from .pajek import read_pajek, write_pajek
from .registry import (
    SUPPORTED_FORMATS,
    detect_format,
    read_graph,
    write_graph,
)

__all__ = [
    "read_edgelist",
    "write_edgelist",
    "read_pajek",
    "write_pajek",
    "read_asd",
    "write_asd",
    "read_json_graph",
    "write_json_graph",
    "read_graph",
    "write_graph",
    "detect_format",
    "SUPPORTED_FORMATS",
]
