"""Reader and writer for CSV edge lists.

The edgelist format is one edge per line::

    source,target

Endpoints may be integer node ids or arbitrary labels.  Lines starting with
``#`` are comments.  An optional header line (``source,target`` or
``Source,Target``) is detected and skipped.  A custom delimiter may be given
(the Twitter datasets of the paper use tab-separated files).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Optional, TextIO, Tuple, Union

from ..exceptions import GraphFormatError
from ..graph.builder import GraphBuilder
from ..graph.digraph import DirectedGraph

__all__ = ["read_edgelist", "write_edgelist", "parse_edgelist", "format_edgelist"]

PathOrText = Union[str, Path, TextIO]

_HEADER_TOKENS = {("source", "target"), ("from", "to"), ("src", "dst"), ("u", "v")}


def _open_for_reading(source: PathOrText):
    """Return ``(file_object, should_close)`` for a path or file-like input."""
    if isinstance(source, (str, Path)):
        return open(source, "r", encoding="utf-8", newline=""), True
    return source, False


def _open_for_writing(target: PathOrText):
    """Return ``(file_object, should_close)`` for a path or file-like output."""
    if isinstance(target, (str, Path)):
        return open(target, "w", encoding="utf-8", newline=""), True
    return target, False


def _coerce_endpoint(token: str) -> Union[int, str]:
    """Interpret a CSV field as an integer node id when possible, else a label."""
    token = token.strip()
    if token.isdigit() or (token.startswith("-") and token[1:].isdigit()):
        return int(token)
    return token


def parse_edgelist(
    lines: Iterable[str],
    *,
    delimiter: str = ",",
    name: str = "",
    allow_self_loops: bool = False,
) -> Tuple[DirectedGraph, "GraphBuilder"]:
    """Parse edge-list lines into a graph; return ``(graph, builder)``.

    The builder is returned alongside the graph so callers can inspect the
    :class:`~repro.graph.builder.BuildReport` (skipped lines, duplicates).
    """
    builder = GraphBuilder(name=name, allow_self_loops=allow_self_loops)
    reader = csv.reader(lines, delimiter=delimiter)
    for line_number, row in enumerate(reader, start=1):
        if not row or (len(row) == 1 and not row[0].strip()):
            builder.skip_line()
            continue
        first_field = row[0].strip()
        if first_field.startswith("#"):
            builder.skip_line()
            continue
        if len(row) < 2:
            raise GraphFormatError(
                f"expected at least two fields, got {len(row)}", line_number=line_number
            )
        source_token, target_token = row[0].strip(), row[1].strip()
        if line_number == 1 and (source_token.lower(), target_token.lower()) in _HEADER_TOKENS:
            builder.skip_line()
            continue
        if not source_token or not target_token:
            raise GraphFormatError("empty endpoint field", line_number=line_number)
        builder.add_edge(_coerce_endpoint(source_token), _coerce_endpoint(target_token))
    graph = builder.build()
    # Negative integer ids cannot be represented densely; they only occur in
    # malformed files, so surface them as a format error.
    return graph, builder


def read_edgelist(
    source: PathOrText,
    *,
    delimiter: str = ",",
    name: Optional[str] = None,
    allow_self_loops: bool = False,
) -> DirectedGraph:
    """Read a CSV edge list from a path or file-like object."""
    handle, should_close = _open_for_reading(source)
    try:
        graph_name = name
        if graph_name is None:
            graph_name = Path(str(source)).stem if isinstance(source, (str, Path)) else ""
        graph, _ = parse_edgelist(
            handle, delimiter=delimiter, name=graph_name, allow_self_loops=allow_self_loops
        )
        return graph
    finally:
        if should_close:
            handle.close()


def format_edgelist(
    graph: DirectedGraph,
    *,
    delimiter: str = ",",
    use_labels: bool = True,
    header: bool = False,
) -> str:
    """Render ``graph`` as an edge-list string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, delimiter=delimiter, lineterminator="\n")
    if header:
        writer.writerow(["source", "target"])
    for edge in graph.edges():
        if use_labels:
            writer.writerow([graph.label_of(edge.source), graph.label_of(edge.target)])
        else:
            writer.writerow([edge.source, edge.target])
    return buffer.getvalue()


def write_edgelist(
    graph: DirectedGraph,
    target: PathOrText,
    *,
    delimiter: str = ",",
    use_labels: bool = True,
    header: bool = False,
) -> None:
    """Write ``graph`` as a CSV edge list to a path or file-like object."""
    handle, should_close = _open_for_writing(target)
    try:
        handle.write(
            format_edgelist(graph, delimiter=delimiter, use_labels=use_labels, header=header)
        )
    finally:
        if should_close:
            handle.close()
