#!/usr/bin/env python3
"""Algorithm comparison on the Amazon co-purchase graph (Table II of the paper).

On the synthetic co-purchase graph, compare PageRank (alpha=0.85), CycleRank
(K=5, sigma=e^-n) and Personalized PageRank (alpha=0.85) for the reference
items "1984" and "The Fellowship of the Ring".  The point of the table: PPR
recommends runaway bestsellers (the Harry Potter series) for a Tolkien query,
CycleRank does not.

Run with::

    python examples/amazon_copurchase.py
"""

from __future__ import annotations

from repro import algorithm_comparison, cyclerank, pagerank, personalized_pagerank
from repro.datasets import generate_amazon_graph
from repro.ranking.metrics import jaccard_at_k, rank_biased_overlap


def main() -> None:
    print("Generating the synthetic Amazon co-purchase graph ...")
    graph = generate_amazon_graph()
    print(f"  {graph}\n")

    print("Global PageRank top-5 (bestsellers dominate):")
    for entry in pagerank(graph, alpha=0.85).top(5):
        print(f"  {entry.rank}. {entry.label}")
    print()

    for reference in ["1984", "The Fellowship of the Ring"]:
        cycle_ranking = cyclerank(graph, reference, max_cycle_length=5, scoring="exp")
        ppr_ranking = personalized_pagerank(graph, reference, alpha=0.85)
        table = algorithm_comparison(
            {"Cyclerank": cycle_ranking, "Personalized PageRank": ppr_ranking},
            k=5,
            title=f"Top-5 items for reference {reference!r}",
        )
        print(table.to_text())
        agreement = jaccard_at_k(cycle_ranking, ppr_ranking, 5)
        rbo = rank_biased_overlap(cycle_ranking, ppr_ranking, depth=20)
        print(f"  top-5 Jaccard agreement: {agreement:.2f}   rank-biased overlap: {rbo:.2f}")
        harry_potter_in_ppr = [
            label for label in ppr_ranking.top_labels(8) if "Harry Potter" in label
        ]
        if harry_potter_in_ppr:
            print(
                f"  Personalized PageRank also surfaces {harry_potter_in_ppr[0]!r} — "
                "a cross-genre bestseller CycleRank ignores."
            )
        print()


if __name__ == "__main__":
    main()
