#!/usr/bin/env python3
"""How much do the personalized relevance algorithms agree with each other?

Runs every personalized algorithm in the registry — the paper's (CycleRank,
Personalized PageRank, Personalized CheiRank, Personalized 2DRank) plus the
extension algorithms added through the same plug-in interface (push and
Monte-Carlo approximate PPR, rooted HITS, personalized Katz) — for one query
on the synthetic English Wikipedia snapshot, and prints:

* the side-by-side top-5 columns (the demo's algorithm-comparison view),
* the pairwise overlap@10 agreement matrix,
* the popularity-bias score of each algorithm's head.

Run with::

    python examples/algorithm_agreement.py [--reference "Freddie Mercury"]
"""

from __future__ import annotations

import argparse

from repro.algorithms.registry import available_algorithms, get_algorithm
from repro.analysis import agreement_matrix, popularity_bias_report
from repro.datasets import generate_wikilink_graph
from repro.ranking.comparison import algorithm_comparison


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--reference", default="Freddie Mercury", help="query article")
    parser.add_argument("--top", type=int, default=5, help="rows in the comparison table")
    arguments = parser.parse_args()

    print("Generating the synthetic enwiki 2018-03-01 snapshot ...")
    graph = generate_wikilink_graph("en", "2018-03-01")
    print(f"  {graph}\n")

    rankings = {}
    for name in available_algorithms(personalized=True):
        algorithm = get_algorithm(name)
        rankings[algorithm.display_name] = algorithm.run(graph, source=arguments.reference)

    table = algorithm_comparison(
        rankings, k=arguments.top,
        title=f"Top-{arguments.top} results of every personalized algorithm "
              f"for {arguments.reference!r}",
    )
    print(table.to_text())
    print()

    matrix = agreement_matrix(rankings, measure="overlap", k=10)
    print(matrix.to_text())
    best = matrix.most_similar_pair()
    worst = matrix.least_similar_pair()
    print(f"\nMost similar pair:  {best[0]} / {best[1]} (overlap@10 = {best[2]:.2f})")
    print(f"Least similar pair: {worst[0]} / {worst[1]} (overlap@10 = {worst[2]:.2f})")
    print()

    report = popularity_bias_report(rankings, graph, k=10)
    print(report.to_text())
    print()
    print(
        "The matrix shows the walk-based family clustering together while "
        "CycleRank stands apart; the bias scores show why — its head avoids the "
        "globally popular articles the other algorithms promote."
    )


if __name__ == "__main__":
    main()
