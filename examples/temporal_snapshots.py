#!/usr/bin/env python3
"""Temporal dataset comparison: the same query across yearly Wikipedia snapshots.

Besides comparing language editions (Table III), the demo supports comparing
snapshots of the same graph at different points in time.  This example runs
CycleRank for "Freddie Mercury" on the 2003, 2008, 2013 and 2018 snapshots of
the synthetic English edition and shows how the ranking's head evolves as the
graph grows, plus a popularity-bias comparison of the personalized
algorithms on the newest snapshot.

Run with::

    python examples/temporal_snapshots.py
"""

from __future__ import annotations

from repro.algorithms.registry import get_algorithm
from repro.analysis import popularity_bias_report, snapshot_comparison
from repro.datasets import generate_wikilink_graph
from repro.datasets.seeds import WIKIPEDIA_SNAPSHOTS

REFERENCE = "Freddie Mercury"


def main() -> None:
    snapshots = {}
    for snapshot in reversed(WIKIPEDIA_SNAPSHOTS):  # oldest first
        print(f"Generating the synthetic enwiki {snapshot} snapshot ...")
        snapshots[snapshot] = generate_wikilink_graph("en", snapshot)
    print()

    comparison = snapshot_comparison(
        snapshots, "cyclerank", source=REFERENCE, parameters={"k": 3, "sigma": "exp"}
    )
    print(comparison.to_text(5))
    print()

    newcomers = comparison.newcomers(5)
    for snapshot, labels in newcomers.items():
        if labels:
            print(f"New in the top-5 of {snapshot}: {', '.join(labels)}")
    print()

    newest = snapshots[comparison.snapshots[-1]]
    rankings = {}
    for name in ("cyclerank", "personalized-pagerank", "personalized-cheirank"):
        algorithm = get_algorithm(name)
        rankings[algorithm.display_name] = algorithm.run(newest, source=REFERENCE)
    report = popularity_bias_report(rankings, newest, k=10)
    print(report.to_text())
    print()
    print(
        "The bias numbers quantify the paper's claim: Personalized PageRank's "
        "head sits much higher in the global-popularity distribution than "
        "CycleRank's."
    )


if __name__ == "__main__":
    main()
