#!/usr/bin/env python3
"""Upload a user-provided dataset and run the algorithms on it.

The demo supports user-uploaded graphs in three formats (edgelist CSV, Pajek
NET, and the ASD format).  This example writes a small Twitter-like
interaction network to disk in all three formats, uploads one of them through
the gateway, and runs an algorithm comparison against the uploaded graph —
the "users can upload new datasets" feature of the paper.

Run with::

    python examples/upload_custom_dataset.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import DirectedGraph, write_graph
from repro.platform import ApiGateway


def build_interaction_network() -> DirectedGraph:
    """A small interaction network: a research group and a couple of celebrities."""
    graph = DirectedGraph(name="my lab on social media")
    group = ["@alice", "@bob", "@carol", "@dave"]
    for first in group:
        for second in group:
            if first != second:
                graph.add_edge(first, second)
    for account in group + ["@random1", "@random2", "@random3"]:
        graph.add_edge(account, "@big_celebrity")
        graph.add_edge(account, "@news_outlet")
    graph.add_edge("@news_outlet", "@alice")  # one interview reply
    return graph


def main() -> None:
    graph = build_interaction_network()
    workdir = Path(tempfile.mkdtemp(prefix="repro-upload-"))

    # Write the dataset in all three supported formats.
    paths = {
        "edgelist": workdir / "lab.csv",
        "pajek": workdir / "lab.net",
        "asd": workdir / "lab.asd",
    }
    for fmt, path in paths.items():
        write_graph(graph, path, format=fmt)
        print(f"wrote {fmt:9s} -> {path}")
    print()

    with ApiGateway(num_workers=1) as gateway:
        summary = gateway.upload_dataset("my-lab", paths["asd"], description="uploaded example")
        print("Uploaded dataset summary:")
        for key, value in summary.items():
            print(f"  {key}: {value}")
        print()

        comparison_id = gateway.run_queries(
            [
                {"dataset_id": "my-lab", "algorithm": "cyclerank",
                 "source": "@alice", "parameters": {"k": 3}},
                {"dataset_id": "my-lab", "algorithm": "personalized-pagerank",
                 "source": "@alice", "parameters": {"alpha": 0.85}},
            ]
        )
        table = gateway.get_comparison_table(
            comparison_id, k=5, title="Top-5 accounts related to @alice"
        )
        print(table.to_text(show_scores=True))
        print()
        print(
            "CycleRank keeps the research group (reciprocal interactions); "
            "Personalized PageRank also rewards the celebrity accounts everyone "
            "mentions but who never reply."
        )


if __name__ == "__main__":
    main()
