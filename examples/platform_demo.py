#!/usr/bin/env python3
"""End-to-end platform walk-through (Figure 1 and Figure 2 of the paper).

Drives the full system the way the web demo does:

1. list the pre-loaded datasets and algorithms through the API gateway;
2. build a query set in the Task Builder (Figure 2) and print its view;
3. submit the comparison to the scheduler / executor pool;
4. poll the Status component while the workers run;
5. fetch the results and the execution log from the datastore and render the
   comparison table — the same flow as steps 1-5 of Section III.

Run with::

    python examples/platform_demo.py
"""

from __future__ import annotations

import time

from repro.platform import ApiGateway, WebUI


def main() -> None:
    with ApiGateway(num_workers=2) as gateway:
        ui = WebUI(gateway)

        print("Datasets available in the catalog (first 10 of 50):")
        for entry in gateway.list_datasets()[:10]:
            print(f"  - {entry['dataset_id']:24s} {entry['description']}")
        print(f"  ... and {len(gateway.list_datasets()) - 10} more\n")

        print("Algorithms available:")
        for entry in gateway.list_algorithms():
            kind = "personalized" if entry["personalized"] else "global"
            print(f"  - {entry['display_name']:22s} ({kind})")
        print()

        # Step 1: the Task Builder assembles the query set (Figure 2).
        query_set = gateway.new_query_set()
        gateway.add_query(query_set, "enwiki-2018", "cyclerank",
                          source="Fake news", parameters={"k": 3, "sigma": "exp"})
        gateway.add_query(query_set, "enwiki-2018", "pagerank",
                          parameters={"alpha": 0.3})
        gateway.add_query(query_set, "enwiki-2018", "personalized-pagerank",
                          source="Fake news", parameters={"alpha": 0.3})
        print(ui.render_task_builder(query_set))
        print()

        # Step 2-3: submit; the scheduler fetches the dataset and offloads the
        # computation to the executor pool.
        comparison_id = gateway.submit_comparison(query_set)
        print(f"Submitted comparison {comparison_id}; polling status ...")
        while True:
            progress = gateway.get_status(comparison_id)
            print(f"  {progress.describe()}")
            if progress.state.is_terminal():
                break
            time.sleep(0.1)
        print()

        # Step 4-5: results and logs come back from the datastore and are
        # rendered by the (text) Web UI.
        print(ui.render_results(comparison_id, k=5, show_scores=False))
        print()
        print("Execution log:")
        for line in gateway.get_logs(comparison_id):
            print(f"  {line}")


if __name__ == "__main__":
    main()
