#!/usr/bin/env python3
"""End-to-end platform walk-through (Figure 1 and Figure 2 of the paper).

Drives the full system the way the web demo does:

1. list the pre-loaded datasets and algorithms through the API gateway;
2. build a query set in the Task Builder (Figure 2) and print its view;
3. submit the comparison to the scheduler / executor pool;
4. poll the Status component while the workers run;
5. fetch the results and the execution log from the datastore and render the
   comparison table — the same flow as steps 1-5 of Section III;
6. kill a storage shard under a replicated gateway and watch the platform
   heal itself: the failure detector auto-marks the shard down, failover
   reads keep serving and enqueue read-repairs, and the recovered shard is
   marked back up — no manual intervention at any step;
7. follow one comparison through the observability layer: submit it,
   reconstruct its span waterfall from the recorded trace, and scrape the
   Prometheus ``/metrics`` exposition the gateway serves;
8. run the same comparison on the cross-process compute tier
   (``executor_mode="process"``): batch kernels execute in worker
   processes sharing one zero-copy CSR through shared memory, so heavy
   pure-Python mixes scale with cores instead of queueing on the GIL.

Run with::

    python examples/platform_demo.py
"""

from __future__ import annotations

import time

from repro.platform import ApiGateway, WebUI


class _KillableStore:
    """Minimal fault wrapper for the walkthrough: a killed shard raises.

    (The test suite's ``tests/faults.py`` library is the full-featured
    version of this; the example keeps its own five-liner so it runs
    standalone.)
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self.killed = False

    def __getattr__(self, name):
        attribute = getattr(self._inner, name)
        if not callable(attribute):
            return attribute

        def call(*args, **kwargs):
            if self.killed:
                raise RuntimeError("shard process is dead")
            return attribute(*args, **kwargs)

        return call


def _wait_for(predicate, *, timeout: float = 15.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.05)
    return predicate()


def self_healing_walkthrough() -> None:
    """Step 6: kill a replicated shard and watch the platform heal itself."""
    from repro.datasets.catalog import DatasetCatalog
    from repro.graph.generators import reciprocal_communities_graph
    from repro.platform.datastore import DataStore
    from repro.platform.replication import ReplicatedShardedDataStore

    print("=" * 72)
    print("Self-healing storage: kill a shard, watch the platform recover")
    print("=" * 72)

    backends = [_KillableStore(DataStore()) for _ in range(4)]
    store = ReplicatedShardedDataStore(
        shards=backends,
        replicas=2,
        probe_failure_threshold=2,
        probe_transition_interval_seconds=0.05,
    )
    catalog = DatasetCatalog()
    catalog.register_graph(
        "communities",
        reciprocal_communities_graph(4, 8, seed=3),
        description="planted communities",
    )
    with ApiGateway(
        catalog=catalog, datastore=store, probe_interval_seconds=0.05
    ) as gateway:
        gateway.run_queries(
            [{"dataset_id": "communities", "algorithm": "pagerank"}],
            synchronous=True,
        )
        holders = store.replica_shards_for("communities")
        print(f"dataset replicated to {holders} (R=2, quorum acked)\n")

        victim_id = holders[0]
        victim = store.shard_stores()[victim_id]
        victim.killed = True
        print(f"-- killed {victim_id}, the dataset's primary --")

        graph = store.fetch_dataset("communities")
        print(f"failover read still serves all {graph.number_of_nodes()} nodes")

        _wait_for(lambda: victim_id in store.marked_down())
        print(f"failure detector auto-marked {victim_id} down "
              "(no mark_down call anywhere)")
        _wait_for(lambda: store.replication_stats()["underreplicated"] == 0)
        print("read-repair restored R copies among the survivors; "
              "underreplicated = 0")

        victim.killed = False
        print(f"-- restarted {victim_id} --")
        _wait_for(lambda: victim_id not in store.marked_down())
        print("probe marked the shard back up; health event log:")
        for event in gateway.health_events():
            print(f"  seq {event['seq']:3d}  {event['type']:10s}  "
                  f"{event['shard']} (streak {event['failures']})")


def observability_walkthrough() -> None:
    """Step 7: submit → follow the trace → scrape ``/metrics``."""
    print("=" * 72)
    print("Observability: trace one comparison, then scrape /metrics")
    print("=" * 72)

    with ApiGateway(num_workers=2) as gateway:
        # Submit: the gateway mints a trace id and stamps every job event
        # with it, so stream consumers can join events against the trace.
        comparison_id = gateway.run_queries(
            [
                {"dataset_id": "enwiki-2018", "algorithm": "pagerank",
                 "parameters": {"alpha": 0.85}},
                {"dataset_id": "enwiki-2018", "algorithm": "cheirank"},
            ],
            synchronous=True,
        )
        envelope = gateway.get_trace(comparison_id)
        print(f"comparison {comparison_id} finished; "
              f"trace {envelope['trace_id']} recorded "
              f"{envelope['trace']['span_count']} spans\n")

        # Follow the trace: the same tree GET /api/comparisons/<id>/trace
        # returns, rendered as the CLI --trace waterfall.
        print(WebUI(gateway).render_trace_waterfall(comparison_id))
        print()

        # Scrape: GET /metrics serves this text to a Prometheus collector.
        print("a /metrics scrape (histogram buckets elided):")
        for line in gateway.render_metrics().splitlines():
            if "_bucket{" in line:
                continue
            print(f"  {line}")


def multicore_walkthrough() -> None:
    """Step 8: the same comparison on the cross-process compute tier."""
    print("=" * 72)
    print("Multi-core serving: batch kernels in worker processes")
    print("=" * 72)

    # executor_mode="process" swaps the thread pool for worker processes
    # that map each dataset's compiled CSR zero-copy from shared memory —
    # a CycleRank-heavy mix scales with cores instead of queueing on the
    # GIL.  Everything else (submission, events, caching, tracing) is
    # identical.
    with ApiGateway(executor_mode="process", num_workers=2) as gateway:
        comparison_id = gateway.run_queries(
            [
                {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                 "source": "Fake news", "parameters": {"k": 3}},
                {"dataset_id": "enwiki-2018", "algorithm": "pagerank"},
            ],
            synchronous=True,
        )
        rankings = gateway.get_rankings(comparison_id)
        print(f"comparison {comparison_id} finished: "
              f"{len(rankings)} rankings, bit-identical to the thread tier\n")

        executors = gateway.get_platform_stats()["executors"]
        print(f"executor tier: mode={executors['mode']} "
              f"workers={executors['num_workers']} "
              f"executed={executors['executed_queries']}")
        print(f"shared segments: {executors['segments']} "
              f"({executors['shared_bytes']} bytes of CSR shared by all workers, "
              f"zero copies)")


def main() -> None:
    with ApiGateway(num_workers=2) as gateway:
        ui = WebUI(gateway)

        print("Datasets available in the catalog (first 10 of 50):")
        for entry in gateway.list_datasets()[:10]:
            print(f"  - {entry['dataset_id']:24s} {entry['description']}")
        print(f"  ... and {len(gateway.list_datasets()) - 10} more\n")

        print("Algorithms available:")
        for entry in gateway.list_algorithms():
            kind = "personalized" if entry["personalized"] else "global"
            print(f"  - {entry['display_name']:22s} ({kind})")
        print()

        # Step 1: the Task Builder assembles the query set (Figure 2).
        query_set = gateway.new_query_set()
        gateway.add_query(query_set, "enwiki-2018", "cyclerank",
                          source="Fake news", parameters={"k": 3, "sigma": "exp"})
        gateway.add_query(query_set, "enwiki-2018", "pagerank",
                          parameters={"alpha": 0.3})
        gateway.add_query(query_set, "enwiki-2018", "personalized-pagerank",
                          source="Fake news", parameters={"alpha": 0.3})
        print(ui.render_task_builder(query_set))
        print()

        # Step 2-3: submit; the scheduler fetches the dataset and offloads the
        # computation to the executor pool.
        comparison_id = gateway.submit_comparison(query_set)
        print(f"Submitted comparison {comparison_id}; polling status ...")
        while True:
            progress = gateway.get_status(comparison_id)
            print(f"  {progress.describe()}")
            if progress.state.is_terminal():
                break
            time.sleep(0.1)
        print()

        # Step 4-5: results and logs come back from the datastore and are
        # rendered by the (text) Web UI.
        print(ui.render_results(comparison_id, k=5, show_scores=False))
        print()
        print("Execution log:")
        for line in gateway.get_logs(comparison_id):
            print(f"  {line}")
        print()

    # Step 6: the storage tier heals itself around a killed shard.
    self_healing_walkthrough()

    # Step 7: the observability layer explains where the time went.
    observability_walkthrough()

    # Step 8: the same serving path, one kernel per core.
    multicore_walkthrough()


if __name__ == "__main__":
    main()
