#!/usr/bin/env python3
"""Quickstart: compute personalized relevance scores on a small directed graph.

This example builds a tiny co-citation-style graph by hand, runs the three
algorithms of the paper's Table I (PageRank, CycleRank, Personalized
PageRank) and prints a side-by-side comparison — the smallest possible tour
of the public API.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DirectedGraph,
    algorithm_comparison,
    cyclerank,
    pagerank,
    personalized_pagerank,
)


def build_toy_graph() -> DirectedGraph:
    """A toy 'wikilink' graph: a topical cluster, a popular hub, background pages."""
    graph = DirectedGraph(name="toy wikilinks")

    # A tightly-knit topical cluster (every pair linked in both directions).
    cluster = ["Queen (band)", "Freddie Mercury", "Brian May", "Roger Taylor"]
    for first in cluster:
        for second in cluster:
            if first != second:
                graph.add_edge(first, second)

    # A globally popular page that everything links to, but which links back
    # to nothing — the "United States" pathology from the paper.
    for page in cluster + ["Background article %d" % i for i in range(10)]:
        graph.add_edge(page, "United States")

    # Background pages link to the cluster occasionally (one-directional).
    graph.add_edge("Background article 0", "Queen (band)")
    graph.add_edge("Background article 1", "Freddie Mercury")
    return graph


def main() -> None:
    graph = build_toy_graph()
    print(f"Graph: {graph}\n")

    reference = "Freddie Mercury"
    rankings = {
        "PageRank": pagerank(graph, alpha=0.85),
        "Cyclerank": cyclerank(graph, reference, max_cycle_length=3),
        "Pers. PageRank": personalized_pagerank(graph, reference, alpha=0.85),
    }

    for name, ranking in rankings.items():
        print(f"{name}: {ranking.describe()}")
        for entry in ranking.top(5):
            print(f"  {entry.rank}. {entry.label}  ({entry.score:.4f})")
        print()

    table = algorithm_comparison(rankings, k=5, title=f"Top-5 results for {reference!r}")
    print(table.to_text())
    print()
    print(
        "Note how 'United States' collects Personalized PageRank mass despite "
        "never linking back, while CycleRank only rewards the mutually linked "
        "cluster around the reference node."
    )


if __name__ == "__main__":
    main()
