#!/usr/bin/env python3
"""Algorithm comparison on the Wikipedia wikilink graph (Table I of the paper).

Reproduces the paper's first use case: on the (synthetic) English Wikipedia
snapshot of 2018-03-01, compare PageRank (alpha=0.85), CycleRank (K=3,
sigma=e^-n) and Personalized PageRank (alpha=0.3) for the reference articles
"Freddie Mercury" and "Pasta", and print the Table-I-style top-5 columns.

Run with::

    python examples/wikipedia_comparison.py [--top 5]
"""

from __future__ import annotations

import argparse

from repro import algorithm_comparison, cyclerank, pagerank, personalized_pagerank
from repro.datasets import generate_wikilink_graph


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--top", type=int, default=5, help="rows per table")
    parser.add_argument(
        "--references", nargs="+", default=["Freddie Mercury", "Pasta"],
        help="reference articles (must exist in the synthetic snapshot)",
    )
    arguments = parser.parse_args()

    print("Generating the synthetic enwiki 2018-03-01 snapshot ...")
    graph = generate_wikilink_graph("en", "2018-03-01")
    print(f"  {graph}\n")

    global_ranking = pagerank(graph, alpha=0.85)
    print("Global PageRank top-5 (the paper's first column):")
    for entry in global_ranking.top(arguments.top):
        print(f"  {entry.rank}. {entry.label}")
    print()

    for reference in arguments.references:
        rankings = {
            "Cyclerank": cyclerank(graph, reference, max_cycle_length=3, scoring="exp"),
            "Pers. PageRank": personalized_pagerank(graph, reference, alpha=0.3),
        }
        table = algorithm_comparison(
            rankings, k=arguments.top,
            title=f"Top-{arguments.top} articles for reference {reference!r}",
        )
        print(table.to_text(show_scores=False))
        print()

    print(
        "CycleRank's column stays inside the topical neighbourhood of the "
        "reference, while Personalized PageRank lets globally central articles "
        "creep in — the limitation the paper demonstrates in Table I."
    )


if __name__ == "__main__":
    main()
