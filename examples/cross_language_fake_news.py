#!/usr/bin/env python3
"""Dataset comparison across Wikipedia language editions (Table III of the paper).

Runs CycleRank (K=3, sigma=e^-n) from the "Fake news" article of six
synthetic Wikipedia language editions (de, en, fr, it, nl, pl) and prints
the cross-cultural comparison table: the same concept is framed through
different related concepts in different language communities.

Run with::

    python examples/cross_language_fake_news.py [--languages de en fr it nl pl]
"""

from __future__ import annotations

import argparse

from repro import cyclerank, dataset_comparison
from repro.datasets import generate_wikilink_graph
from repro.datasets.seeds import FAKE_NEWS_TOPICS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--languages", nargs="+", default=["de", "en", "fr", "it", "nl", "pl"],
        help="language editions to compare (Table III uses de en fr it nl pl)",
    )
    parser.add_argument("--k", type=int, default=3, help="CycleRank maximum cycle length")
    parser.add_argument("--top", type=int, default=5, help="rows in the comparison table")
    arguments = parser.parse_args()

    rankings = {}
    for language in arguments.languages:
        seed = FAKE_NEWS_TOPICS.get(language)
        if seed is None:
            print(f"skipping unknown language {language!r}")
            continue
        print(f"Generating the synthetic {language}wiki 2018-03-01 snapshot ...")
        graph = generate_wikilink_graph(language, "2018-03-01")
        rankings[f"{seed.reference} ({language})"] = cyclerank(
            graph, seed.reference, max_cycle_length=arguments.k, scoring="exp"
        )

    print()
    table = dataset_comparison(
        rankings,
        k=arguments.top,
        title=(
            f"Top-{arguments.top} articles by CycleRank (K={arguments.k}, sigma=e^-n) "
            "for the 'Fake news' article across language editions"
        ),
    )
    print(table.to_text())
    print()
    print(
        "Each column reflects how that language community frames the topic: "
        "the German edition leans on disinformation and named politicians, the "
        "Italian one on 'bufala' and debunking, the Dutch one on journalism."
    )


if __name__ == "__main__":
    main()
