#!/usr/bin/env python3
"""Drive the platform over HTTP, the way the browser-based Web UI does.

Starts the REST front-end (:class:`repro.platform.RestApiServer`) on a random
local port, then acts as an HTTP client: discovers the datasets and
algorithms, submits a comparison as JSON, polls its status, and fetches the
comparison table and the execution log — all through the same endpoints a web
front-end (or ``curl``) would use.

Run with::

    python examples/rest_api_demo.py
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.platform import ApiGateway, RestApiServer
from repro.datasets.catalog import DatasetCatalog
from repro.datasets.wikipedia import generate_wikilink_graph


def get_json(base_url: str, path: str):
    with urllib.request.urlopen(base_url + path, timeout=30) as response:
        return json.loads(response.read().decode("utf-8"))


def post_json(base_url: str, path: str, payload: dict):
    request = urllib.request.Request(
        base_url + path,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return json.loads(response.read().decode("utf-8"))


def main() -> None:
    # A small catalog keeps the example fast; drop the `catalog=` argument to
    # serve all 50 pre-loaded datasets instead.
    catalog = DatasetCatalog()
    catalog.register_graph(
        "enwiki-2018",
        generate_wikilink_graph("en", "2018-03-01"),
        family="wikipedia",
        description="synthetic English wikilink snapshot",
    )
    gateway = ApiGateway(catalog=catalog, num_workers=2)

    with RestApiServer(gateway) as server:
        base_url = server.url
        print(f"REST API listening on {base_url}\n")

        datasets = get_json(base_url, "/api/datasets")
        print("GET /api/datasets ->", ", ".join(entry["dataset_id"] for entry in datasets))
        algorithms = get_json(base_url, "/api/algorithms")
        print("GET /api/algorithms ->", ", ".join(entry["name"] for entry in algorithms))
        print()

        created = post_json(
            base_url,
            "/api/comparisons",
            {
                "queries": [
                    {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
                     "source": "Pasta", "parameters": {"k": 3, "sigma": "exp"}},
                    {"dataset_id": "enwiki-2018", "algorithm": "personalized-pagerank",
                     "source": "Pasta", "parameters": {"alpha": 0.3}},
                    {"dataset_id": "enwiki-2018", "algorithm": "pagerank",
                     "parameters": {"alpha": 0.85}},
                ]
            },
        )
        comparison_id = created["comparison_id"]
        print(f"POST /api/comparisons -> comparison_id = {comparison_id}")

        while True:
            progress = get_json(base_url, f"/api/comparisons/{comparison_id}/status")
            print(f"  status: {progress['state']} "
                  f"({progress['completed_queries']}/{progress['total_queries']})")
            if progress["state"] in ("completed", "failed"):
                break
            time.sleep(0.1)
        print()

        table = get_json(base_url, f"/api/comparisons/{comparison_id}/results?k=5")
        header = ["#"] + table["columns"]
        print("  ".join(header))
        for position, row in enumerate(table["rows"], start=1):
            print("  ".join([str(position)] + row))
        print()

        logs = get_json(base_url, f"/api/comparisons/{comparison_id}/logs")
        print("Execution log (last 5 lines):")
        for line in logs["lines"][-5:]:
            print(f"  {line}")

    gateway.shutdown()


if __name__ == "__main__":
    main()
