"""Ablation — runtime scaling of every algorithm with graph size.

The demo's interactivity rests on the algorithms answering quickly on graphs
of growing size.  This ablation times all seven paper algorithms on
preferential-attachment graphs of increasing size (the same heavy-tailed
in-degree shape as the wikilink and co-purchase graphs) and records the
runtimes, exposing the expected ordering: CycleRank with small K and the
push-based PPR are local and fast, the power-iteration family scales with
the edge count, and 2DRank costs roughly two power iterations.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.registry import PAPER_ALGORITHMS, get_algorithm
from repro.graph.generators import preferential_attachment_graph

from _harness import write_report

GRAPH_SIZES = (300, 1000, 3000)
#: Reference node: the first node of the seed clique is present in every size.
REFERENCE_NODE = "0"


@pytest.fixture(scope="module")
def scaling_graphs():
    """Preferential-attachment graphs of growing size, labelled by node id."""
    graphs = {}
    for size in GRAPH_SIZES:
        graph = preferential_attachment_graph(size, 3, seed=7, name=f"pa-{size}")
        for node in graph.nodes():
            graph.set_label(node, str(node))
        graphs[size] = graph
    return graphs


@pytest.mark.benchmark(group="ablation-scaling")
@pytest.mark.parametrize("size", GRAPH_SIZES)
@pytest.mark.parametrize("algorithm_name", list(PAPER_ALGORITHMS))
def test_bench_algorithm_scaling(benchmark, scaling_graphs, algorithm_name, size):
    """Time one (algorithm, graph size) cell of the scaling matrix."""
    graph = scaling_graphs[size]
    algorithm = get_algorithm(algorithm_name)
    source = REFERENCE_NODE if algorithm.is_personalized else None
    ranking = benchmark.pedantic(
        algorithm.run, args=(graph,), kwargs={"source": source}, rounds=2, iterations=1
    )
    assert len(ranking) == graph.number_of_nodes()


@pytest.mark.benchmark(group="ablation-scaling-report")
def test_regenerate_scaling_report(benchmark, scaling_graphs):
    """Write the full runtime matrix to benchmarks/output/ (single-shot timings)."""

    def build_report() -> str:
        header = f"{'algorithm':>24} " + " ".join(f"{f'n={size}':>12}" for size in GRAPH_SIZES)
        lines = [
            "Runtime (seconds, single run) of each algorithm vs graph size",
            "(preferential-attachment graphs, out-degree 3)",
            "=" * len(header),
            header,
        ]
        for algorithm_name in PAPER_ALGORITHMS:
            algorithm = get_algorithm(algorithm_name)
            cells = []
            for size in GRAPH_SIZES:
                graph = scaling_graphs[size]
                source = REFERENCE_NODE if algorithm.is_personalized else None
                started = time.perf_counter()
                algorithm.run(graph, source=source)
                cells.append(f"{time.perf_counter() - started:>12.4f}")
            lines.append(f"{algorithm.display_name:>24} " + " ".join(cells))
        return "\n".join(lines)

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    report = write_report("ablation_scaling.txt", content)
    assert report.exists()
