"""Closed-loop overload: accepted latency with vs without load shedding.

Eight closed-loop clients push single-query comparisons through a gateway
with two workers — a sustained 4x-capacity overload.  The same workload
runs twice:

* ``no_shedding``  — admission control disabled: every submission is
  accepted and queues behind the backlog;
* ``shedding``     — admission control bounds the in-flight estimated
  cost; over-budget submissions are shed with a retry-after hint and the
  clients re-submit after the hinted delay (the CLI/HTTP 429 discipline).

The structural claims the suite asserts (robust on shared CI runners):

* zero accepted requests are dropped or cancelled in either mode — a shed
  happens *before* enqueueing, so acceptance is a promise;
* with shedding the admitted in-flight cost never exceeded the budget
  (``peak_cost <= max_cost``), which is what bounds accepted latency;
* the shed ratio and the retry amplification are recorded, not asserted
  against absolute time.

The measured trajectories (accepted p50/p99 per mode, shed ratio, retry
amplification) are written to ``benchmarks/output/BENCH_overload.json`` so
future serving-layer PRs can diff the overload envelope.  Set
``REPRO_BENCH_NODES`` to shrink the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import threading
import time

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.exceptions import GatewayOverloadedError
from repro.graph.generators import preferential_attachment_graph
from repro.platform.gateway import ApiGateway
from repro.platform.tasks import TaskState
from repro.version import __version__

from _harness import write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "3000"))
NUM_WORKERS = 2
NUM_CLIENTS = 4 * NUM_WORKERS  # 4x-capacity closed loop
REQUESTS_PER_CLIENT = 4
#: Admitted in-flight estimated-cost budget for the shedding run.
ADMISSION_BUDGET = 2 * NUM_WORKERS
RETRY_AFTER_BASE = 0.05
#: Cap on one client-side shed-retry sleep, mirroring the CLI's cap.
RETRY_SLEEP_CAP = 0.2


@pytest.fixture(scope="module")
def bench_graph():
    graph = preferential_attachment_graph(
        NUM_NODES, out_degree=6, reciprocation_probability=0.3, seed=11,
        name=f"overload-bench-{NUM_NODES}",
    )
    for node in range(graph.number_of_nodes()):
        graph.set_label(node, f"n{node}")
    return graph


def _fresh_gateway(graph, *, shedding):
    catalog = DatasetCatalog()
    catalog.register_graph("bench", graph, description="overload bench")
    options = {}
    if shedding:
        options = {
            "admission_max_cost": ADMISSION_BUDGET,
            "admission_retry_after_seconds": RETRY_AFTER_BASE,
        }
    return ApiGateway(catalog=catalog, num_workers=NUM_WORKERS, **options)


class _ClientStats:
    """Per-run counters shared by the closed-loop client threads."""

    def __init__(self):
        self.lock = threading.Lock()
        self.accepted_latencies = []
        self.accepted_ids = []
        self.sheds = 0
        self.submit_attempts = 0
        self.errors = []


def _client_loop(gateway, graph, stats, client_index):
    """One closed-loop client: submit, retry sheds, await completion."""
    in_degrees = np.asarray(graph.in_degrees())
    hubs = [int(node) for node in np.argsort(in_degrees)[::-1]]
    for request in range(REQUESTS_PER_CLIENT):
        # Every request targets a distinct cold source so the result cache
        # cannot absorb the overload.
        source = hubs[(client_index * REQUESTS_PER_CLIENT + request) % len(hubs)]
        queries = [
            {
                "dataset_id": "bench",
                "algorithm": "personalized-pagerank",
                "source": graph.label_of(source),
                "parameters": {"alpha": 0.8 + 0.001 * client_index},
            }
        ]
        try:
            while True:
                with stats.lock:
                    stats.submit_attempts += 1
                accepted_at = time.perf_counter()
                try:
                    comparison_id = gateway.run_queries(queries, synchronous=False)
                    break
                except GatewayOverloadedError as error:
                    with stats.lock:
                        stats.sheds += 1
                    time.sleep(min(max(error.retry_after, 0.0), RETRY_SLEEP_CAP))
            gateway.wait_for(comparison_id, timeout_seconds=600.0)
            latency = time.perf_counter() - accepted_at
            with stats.lock:
                stats.accepted_latencies.append(latency)
                stats.accepted_ids.append(comparison_id)
        except Exception as error:  # pragma: no cover - surfaced by the assert
            with stats.lock:
                stats.errors.append(repr(error))
            return


def _run_mode(graph, *, shedding):
    stats = _ClientStats()
    with _fresh_gateway(graph, shedding=shedding) as gateway:
        # Warm the dataset artifact so the overload measures serving.
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        threads = [
            threading.Thread(
                target=_client_loop, args=(gateway, graph, stats, index),
                name=f"overload-client-{index}",
            )
            for index in range(NUM_CLIENTS)
        ]
        began = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - began
        assert stats.errors == [], f"client errors: {stats.errors}"
        # Zero accepted requests dropped or cancelled — acceptance is a
        # promise in both modes.
        final_states = [
            gateway.get_status(comparison_id).state
            for comparison_id in stats.accepted_ids
        ]
        assert all(state is TaskState.COMPLETED for state in final_states)
        overload = gateway.get_platform_stats()["overload"]
    return stats, wall, overload


def _percentiles(latencies):
    ordered = sorted(latencies)
    return {
        "p50": float(np.percentile(ordered, 50)),
        "p99": float(np.percentile(ordered, 99)),
        "mean": float(np.mean(ordered)),
        "max": float(ordered[-1]),
    }


@pytest.mark.benchmark(group="overload")
def test_bench_overload_trajectory(bench_graph):
    """Measure the overload envelope and write BENCH_overload.json."""
    expected = NUM_CLIENTS * REQUESTS_PER_CLIENT

    baseline_stats, baseline_wall, baseline_overload = _run_mode(
        bench_graph, shedding=False
    )
    shed_stats, shed_wall, shed_overload = _run_mode(bench_graph, shedding=True)

    # Every request eventually completed in both modes.
    assert len(baseline_stats.accepted_latencies) == expected
    assert len(shed_stats.accepted_latencies) == expected
    # Without admission control nothing is shed.
    assert baseline_stats.sheds == 0
    assert baseline_overload["admission"]["enabled"] is False
    # With it, the gateway's own counters agree with the clients' view and
    # the admitted in-flight cost never exceeded the budget — the invariant
    # that bounds accepted latency under overload.
    admission = shed_overload["admission"]
    assert admission["shed"] == shed_stats.sheds
    assert admission["admitted"] >= expected
    assert admission["peak_cost"] <= ADMISSION_BUDGET
    assert admission["inflight_cost"] == 0

    shed_ratio = shed_stats.sheds / max(1, shed_stats.submit_attempts)
    retry_amplification = shed_stats.submit_attempts / expected
    payload = {
        "benchmark": "overload",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": bench_graph.number_of_nodes(),
            "edges": bench_graph.number_of_edges(),
        },
        "workload": {
            "clients": NUM_CLIENTS,
            "requests_per_client": REQUESTS_PER_CLIENT,
            "workers": NUM_WORKERS,
            "overload_factor": NUM_CLIENTS / NUM_WORKERS,
            "admission_budget": ADMISSION_BUDGET,
            "retry_after_base_seconds": RETRY_AFTER_BASE,
        },
        "no_shedding": {
            "accepted_latency_seconds": _percentiles(
                baseline_stats.accepted_latencies
            ),
            "wall_seconds": baseline_wall,
            "sheds": 0,
            "submit_attempts": baseline_stats.submit_attempts,
        },
        "shedding": {
            "accepted_latency_seconds": _percentiles(shed_stats.accepted_latencies),
            "wall_seconds": shed_wall,
            "sheds": shed_stats.sheds,
            "submit_attempts": shed_stats.submit_attempts,
            "shed_ratio": shed_ratio,
            "retry_amplification": retry_amplification,
            "peak_admitted_cost": admission["peak_cost"],
        },
    }
    path = write_report("BENCH_overload.json", json.dumps(payload, indent=2))
    assert path.exists()
