"""Replicated storage tier: the cost of R copies and of failover reads.

The storage-tier trajectory for the replication PR: the same dataset/result
workload is pushed through the sharded store at ``R=1`` (the PR-3 placement)
and ``R=2`` (quorum-acked writes), then one shard is marked down and every
dataset is read back through the failover path, and finally the datasets are
spilled to the file tier and read through it.  A gateway-level check asserts
the replicated topology serves rankings **bit-identical** to a single-store
gateway on a mixed comparison workload.  A ``quorum_reads`` section prices
the digest-first quorum read against the one-replica default and proves the
acceptance bar: zero below-floor serves during a scripted outage that leaves
every primary stale.

The measured write/read latencies are written to
``benchmarks/output/BENCH_replication.json`` so future storage PRs can diff
the replication overhead and the failover penalty.  Set ``REPRO_BENCH_NODES``
to shrink the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import preferential_attachment_graph
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.replication import ReplicatedShardedDataStore
from repro.version import __version__

from _harness import write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "4000"))
NUM_DATASETS = 12
NUM_RESULTS = 48
NUM_SHARDS = 4
NUM_WORKERS = 4


@pytest.fixture(scope="module")
def bench_graph():
    graph = preferential_attachment_graph(
        NUM_NODES, out_degree=6, reciprocation_probability=0.3, seed=11,
        name=f"replication-bench-{NUM_NODES}",
    )
    for node in range(graph.number_of_nodes()):
        graph.set_label(node, f"n{node}")
    return graph


def _summary(seconds):
    ordered = sorted(seconds)
    return {
        "mean": float(np.mean(ordered)),
        "p50": float(ordered[len(ordered) // 2]),
        "max": float(ordered[-1]),
        "total": float(np.sum(ordered)),
    }


def _timed(operation, items):
    seconds = []
    for item in items:
        started = time.perf_counter()
        operation(item)
        seconds.append(time.perf_counter() - started)
    return seconds


def _store_trajectory(graph, replicas, tmp_dir):
    store = ReplicatedShardedDataStore(
        num_shards=NUM_SHARDS, replicas=replicas,
        spill_dir=str(tmp_dir / f"spill-r{replicas}"),
    )
    dataset_ids = [f"bench-{index}" for index in range(NUM_DATASETS)]
    result_ids = [f"result-{index}" for index in range(NUM_RESULTS)]
    payload = {"rows": list(range(64)), "state": "completed"}

    dataset_writes = _timed(lambda did: store.store_dataset(did, graph), dataset_ids)
    result_writes = _timed(lambda rid: store.put_result(rid, payload), result_ids)
    primary_reads = _timed(store.fetch_dataset, dataset_ids)

    # Failover: mark one data-holding shard down and read everything back.
    victim = next(
        shard_id
        for shard_id, backend in store.shard_stores().items()
        if backend.occupancy()["datasets"] > 0
    )
    store.mark_down(victim)
    failover_reads = _timed(store.fetch_dataset, dataset_ids)
    for dataset_id in dataset_ids:
        assert store.fetch_dataset(dataset_id).number_of_edges() == (
            graph.number_of_edges()
        )
    for result_id in result_ids:
        assert store.get_result(result_id) == payload
    store.mark_up(victim)

    # Spill everything to the file tier and read through it.
    spill_started = time.perf_counter()
    spilled = store.spill(max_resident=0)
    spill_seconds = time.perf_counter() - spill_started
    spill_reads = _timed(store.fetch_dataset, dataset_ids)

    return {
        "replicas": replicas,
        "quorum": store.quorum,
        "dataset_write_seconds": _summary(dataset_writes),
        "result_write_seconds": _summary(result_writes),
        "primary_read_seconds": _summary(primary_reads),
        "failover_read_seconds": _summary(failover_reads),
        "spilled_datasets": len(spilled),
        "spill_wall_seconds": spill_seconds,
        "spill_read_seconds": _summary(spill_reads),
        "failover_reads_counted": store.replication_stats()["failover_reads"],
    }


def _read_repair_convergence(graph):
    """Time single-key read-repair convergence against a full replicate scan.

    A handful of keys lose one replica copy; reading them back fails over
    and enqueues exactly those keys, and one drain restores R copies —
    ``underreplicated`` reaches 0 without scanning the other datasets.  The
    full-scan wall time over the (already converged) ring is recorded
    alongside as the cost the targeted drain avoided.
    """
    store = ReplicatedShardedDataStore(num_shards=NUM_SHARDS, replicas=2)
    dataset_ids = [f"bench-{index}" for index in range(NUM_DATASETS)]
    for dataset_id in dataset_ids:
        store.store_dataset(dataset_id, graph)

    victims = dataset_ids[: max(2, NUM_DATASETS // 4)]
    for dataset_id in victims:
        primary = store.replica_shards_for(dataset_id)[0]
        store.shard_stores()[primary].drop_dataset(dataset_id)
    failover_reads = _timed(store.fetch_dataset, victims)
    assert store.pending_read_repairs() == len(victims)

    drain_started = time.perf_counter()
    outcome = store.drain_read_repairs()
    drain_seconds = time.perf_counter() - drain_started
    assert outcome["drained"] == len(victims)
    assert store.replication_stats()["underreplicated"] == 0

    scan_started = time.perf_counter()
    scan = store.replicate()
    scan_seconds = time.perf_counter() - scan_started
    assert scan["datasets_repaired"] == 0  # the drain already converged

    return {
        "datasets": NUM_DATASETS,
        "repaired_keys": outcome["drained"],
        "repaired_copies": outcome["repaired"],
        "failover_read_seconds": _summary(failover_reads),
        "drain_wall_seconds": drain_seconds,
        "full_scan_wall_seconds": scan_seconds,
        "read_repairs_counted": store.replication_stats()["read_repairs"],
    }


def _quorum_read_trajectory(graph):
    """Price the digest-first quorum read against the one-replica default.

    The same workload runs twice — ``read_consistency="one"`` and
    ``"quorum"`` — first over a healthy ring (the steady-state latency the
    digest round adds), then over a scripted staleness topology: every
    dataset's primary sleeps through a re-upload and wakes holding the
    below-floor copy.  One-mode serves that stale copy (the pre-PR gap);
    quorum mode must serve **zero** below-floor reads.
    """
    dataset_ids = [f"bench-{index}" for index in range(NUM_DATASETS)]
    sections = {}
    for consistency in ("one", "quorum"):
        store = ReplicatedShardedDataStore(
            num_shards=NUM_SHARDS, replicas=2, read_consistency=consistency
        )
        for dataset_id in dataset_ids:
            store.store_dataset(dataset_id, graph)
        healthy_reads = _timed(store.fetch_dataset, dataset_ids)

        # Scripted staleness: the primary misses the re-upload (hinted
        # handoff lands v2 on the survivors) and comes back holding v1.
        for dataset_id in dataset_ids:
            primary = store.replica_shards_for(dataset_id)[0]
            store.mark_down(primary)
            store.store_dataset(dataset_id, graph)
            store.mark_up(primary)

        stale_serves = 0
        stale_topology_reads = []
        for dataset_id in dataset_ids:
            started = time.perf_counter()
            _, version = store.fetch_dataset_with_version(dataset_id)
            stale_topology_reads.append(time.perf_counter() - started)
            if version < 2:
                stale_serves += 1
        stats = store.replication_stats()
        sections[consistency] = {
            "healthy_read_seconds": _summary(healthy_reads),
            "stale_topology_read_seconds": _summary(stale_topology_reads),
            "stale_serves": stale_serves,
            "digest_reads": stats["digest_reads"],
            "stale_reads_prevented": stats["stale_reads_prevented"],
            "version_conflicts_resolved": stats["version_conflicts_resolved"],
        }

    # The acceptance bar: one-mode demonstrates the gap (the recovered
    # primary answers first with the pre-outage copy); quorum mode closes
    # it completely — zero below-floor serves during the scripted outage.
    assert sections["one"]["stale_serves"] > 0
    assert sections["quorum"]["stale_serves"] == 0
    assert sections["quorum"]["digest_reads"] >= NUM_DATASETS
    sections["quorum_vs_one_read_overhead"] = (
        sections["quorum"]["healthy_read_seconds"]["total"]
        / max(sections["one"]["healthy_read_seconds"]["total"], 1e-9)
    )
    return sections


def _gateway_rankings(graph, *, replicas):
    catalog = DatasetCatalog()
    catalog.register_graph("bench", graph, description="replication bench")
    sources = [f"n{node}" for node in range(4)]
    queries = [
        {"dataset_id": "bench", "algorithm": "personalized-pagerank", "source": s}
        for s in sources
    ] + [{"dataset_id": "bench", "algorithm": "pagerank"}]
    kwargs = {"shards": NUM_SHARDS, "replicas": replicas} if replicas else {}
    with ApiGateway(catalog=catalog, num_workers=NUM_WORKERS, **kwargs) as gateway:
        comparison = gateway.run_queries(queries, synchronous=True)
        return [ranking.scores for ranking in gateway.get_rankings(comparison)]


@pytest.mark.benchmark(group="replication")
def test_bench_replication_trajectory(bench_graph, tmp_path):
    """Measure R=1 vs R=2 storage cost and write BENCH_replication.json."""
    single = _store_trajectory(bench_graph, 1, tmp_path)
    replicated = _store_trajectory(bench_graph, 2, tmp_path)
    read_repair = _read_repair_convergence(bench_graph)
    quorum_reads = _quorum_read_trajectory(bench_graph)

    # Correctness before timing claims: the replicated gateway serves
    # rankings bit-identical to the single-store gateway.
    baseline = _gateway_rankings(bench_graph, replicas=None)
    with_replicas = _gateway_rankings(bench_graph, replicas=2)
    assert len(baseline) == len(with_replicas)
    for expected, actual in zip(baseline, with_replicas):
        assert np.array_equal(expected, actual)

    # Failover reads answered correct data for every key (asserted inside
    # the trajectory) and were actually counted as failovers.
    assert replicated["failover_reads_counted"] > 0

    # R=2 writes do ~2x the work; the dataset-write overhead must stay in
    # the same order of magnitude (generous bound for shared CI runners).
    overhead = (
        replicated["dataset_write_seconds"]["total"]
        / max(single["dataset_write_seconds"]["total"], 1e-9)
    )
    assert overhead < 10.0, f"replication write overhead blew up: {overhead:.1f}x"

    payload = {
        "benchmark": "replication",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": bench_graph.number_of_nodes(),
            "edges": bench_graph.number_of_edges(),
        },
        "workload": {
            "datasets": NUM_DATASETS,
            "results": NUM_RESULTS,
            "shards": NUM_SHARDS,
        },
        "single": single,
        "replicated": replicated,
        "read_repair": read_repair,
        "quorum_reads": quorum_reads,
        "write_overhead_r2_vs_r1": overhead,
    }
    write_report("BENCH_replication.json", json.dumps(payload, indent=2))
