"""Table III — CycleRank for "Fake news" across six Wikipedia language editions.

Paper parameters: CycleRank with K=3 and sigma=e^-n, reference article "Fake
news" (localised title per edition) on the de, en, fr, it, nl and pl
wikilink graphs of 2018-03-01.

Shape preserved from the paper: the reference article ranks first in every
edition, the rest of each top-5 is made of concepts specific to that language
community, and the columns differ across editions (the cross-cultural
comparison the dataset-comparison use case is about).
"""

from __future__ import annotations

import pytest

from repro.algorithms.cyclerank import cyclerank
from repro.datasets.seeds import FAKE_NEWS_TOPICS
from repro.ranking.comparison import dataset_comparison

from _harness import write_report

LANGUAGES = ("de", "en", "fr", "it", "nl", "pl")
CYCLERANK_K = 3


@pytest.mark.benchmark(group="table3-cross-language")
@pytest.mark.parametrize("language", LANGUAGES)
def test_bench_cyclerank_per_language(benchmark, language_editions, language):
    """Time the CycleRank run behind each column of Table III."""
    graph = language_editions[language]
    seed = FAKE_NEWS_TOPICS[language]
    ranking = benchmark(
        cyclerank, graph, seed.reference, max_cycle_length=CYCLERANK_K, scoring="exp"
    )
    assert ranking.top_labels(1) == [seed.reference]


@pytest.mark.benchmark(group="table3-cross-language")
def test_regenerate_table3(benchmark, language_editions):
    """Regenerate Table III end-to-end and write it to benchmarks/output/."""
    per_language_top = {}

    def build_table():
        columns = {}
        per_language_top.clear()
        for language in LANGUAGES:
            graph = language_editions[language]
            seed = FAKE_NEWS_TOPICS[language]
            ranking = cyclerank(
                graph, seed.reference, max_cycle_length=CYCLERANK_K, scoring="exp"
            )
            columns[f"{seed.reference} ({language})"] = ranking
            per_language_top[language] = (
                seed,
                ranking.top_labels(5, exclude=(seed.reference,)),
            )
        return dataset_comparison(
            columns,
            k=5,
            title=(
                "Table III (reproduced): top-5 articles by CycleRank (K=3, exp) for the "
                "'Fake news' article across six synthetic language editions"
            ),
        )

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report = write_report("table3_cross_language.txt", table.to_text())
    assert report.exists()

    # Shape assertions mirroring the paper's discussion of Table III.
    for language, (seed, top) in per_language_top.items():
        seed_nodes = set(seed.all_nodes())
        matches = sum(1 for label in top if label in seed_nodes)
        assert matches >= 4, f"{language}: {top}"
    tops = [frozenset(top) for _, top in per_language_top.values()]
    assert len(set(tops)) == len(tops), "every edition should frame the topic differently"
