"""Gateway serving throughput: blocking vs non-blocking submission.

The serving-layer trajectory for the event-driven job refactor: a mixed
hot/cold comparison workload (repeat sources hit the platform result cache,
fresh sources force batched executions) is pushed through the gateway twice —

* ``blocking``      — the seed request path: every comparison submitted with
  ``synchronous=True``, the caller pinned for the full run;
* ``non_blocking``  — the job path: every comparison submitted with
  ``synchronous=False`` (the id returns immediately), then awaited through
  the event cursor (``wait_for``).

The point of the non-blocking path is *latency decoupling*, not raw
throughput: submission cost must not scale with comparison cost.  The
measured trajectories (per-submission latency percentiles, end-to-end wall
clock, comparisons/second) are written to
``benchmarks/output/BENCH_gateway_throughput.json`` so future serving-layer
PRs have a baseline to diff against.  Set ``REPRO_BENCH_NODES`` to shrink
the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import preferential_attachment_graph
from repro.platform.gateway import ApiGateway
from repro.version import __version__

from _harness import output_directory, write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "5000"))
NUM_COMPARISONS = 12
QUERIES_PER_COMPARISON = 4
NUM_WORKERS = 4
#: Fraction of comparisons whose sources repeat an earlier comparison's
#: (served from the result cache — the "hot" half of the mixed workload).
HOT_EVERY = 2

#: Saturation curve: worker counts swept for each executor mode.  The point
#: of the process tier is to saturate *cores*, so the sweep includes the
#: machine's core count when it exceeds the fixed rungs.
SATURATION_WORKER_COUNTS = sorted({1, 2, 4, os.cpu_count() or 1})
#: Independent single-query comparisons per saturation run.  Each one forms
#: its own batch group, so they spread across the pool's workers.
SATURATION_COMPARISONS = 8


def _labelled_bench_graph():
    graph = preferential_attachment_graph(
        NUM_NODES, out_degree=6, reciprocation_probability=0.3, seed=7,
        name=f"gateway-bench-{NUM_NODES}",
    )
    # Generated nodes are unlabelled; personalized queries address their
    # sources by label, so give every node a resolvable one.
    for node in range(graph.number_of_nodes()):
        graph.set_label(node, f"n{node}")
    return graph


@pytest.fixture(scope="module")
def bench_graph():
    return _labelled_bench_graph()


def _workload(graph):
    """Build the mixed hot/cold comparison payloads (deterministic)."""
    in_degrees = np.asarray(graph.in_degrees())
    hubs = [int(node) for node in np.argsort(in_degrees)[::-1]]
    comparisons = []
    for index in range(NUM_COMPARISONS):
        if index % HOT_EVERY == 1:
            # Hot: repeat the previous comparison's sources verbatim.
            comparisons.append(list(comparisons[-1]))
            continue
        base = (index // HOT_EVERY) * QUERIES_PER_COMPARISON
        sources = hubs[base : base + QUERIES_PER_COMPARISON]
        comparisons.append(
            [
                {
                    "dataset_id": "bench",
                    "algorithm": "personalized-pagerank",
                    "source": graph.label_of(source),
                }
                for source in sources
            ]
        )
    return comparisons


def _fresh_gateway(graph):
    catalog = DatasetCatalog()
    catalog.register_graph("bench", graph, description="gateway throughput bench")
    return ApiGateway(catalog=catalog, num_workers=NUM_WORKERS)


def _run_blocking(graph, comparisons):
    with _fresh_gateway(graph) as gateway:
        # Warm the dataset/artifact so both paths measure serving, not the
        # first-use materialisation.
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        submit_seconds = []
        began = time.perf_counter()
        ids = []
        for queries in comparisons:
            started = time.perf_counter()
            ids.append(gateway.run_queries(queries, synchronous=True))
            submit_seconds.append(time.perf_counter() - started)
        wall = time.perf_counter() - began
        rankings = [gateway.get_rankings(comparison_id) for comparison_id in ids]
    return submit_seconds, wall, rankings


def _run_non_blocking(graph, comparisons):
    with _fresh_gateway(graph) as gateway:
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        # Warm the asynchronous machinery too (pool threads, job registry),
        # so the timed submissions measure steady-state dispatch.
        warmup = gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "cheirank"}], synchronous=False
        )
        gateway.wait_for(warmup, timeout_seconds=600.0)
        submit_seconds = []
        began = time.perf_counter()
        ids = []
        for queries in comparisons:
            started = time.perf_counter()
            ids.append(gateway.run_queries(queries, synchronous=False))
            submit_seconds.append(time.perf_counter() - started)
        for comparison_id in ids:
            gateway.wait_for(comparison_id, timeout_seconds=600.0)
        wall = time.perf_counter() - began
        rankings = [gateway.get_rankings(comparison_id) for comparison_id in ids]
    return submit_seconds, wall, rankings


def _summary(seconds):
    ordered = sorted(seconds)
    return {
        "mean": float(np.mean(ordered)),
        "p50": float(ordered[len(ordered) // 2]),
        "max": float(ordered[-1]),
        "total": float(np.sum(ordered)),
    }


@pytest.mark.benchmark(group="gateway-throughput")
def test_bench_gateway_throughput_trajectory(bench_graph):
    """Measure both request paths and write BENCH_gateway_throughput.json."""
    comparisons = _workload(bench_graph)
    blocking_submits, blocking_wall, blocking_rankings = _run_blocking(
        bench_graph, comparisons
    )
    nonblocking_submits, nonblocking_wall, nonblocking_rankings = _run_non_blocking(
        bench_graph, comparisons
    )

    # Correctness before timing claims: the two request paths must produce
    # bit-identical rankings for every comparison of the workload.
    assert len(blocking_rankings) == len(nonblocking_rankings) == NUM_COMPARISONS
    for blocking, nonblocking in zip(blocking_rankings, nonblocking_rankings):
        assert len(blocking) == len(nonblocking) == QUERIES_PER_COMPARISON
        for blocking_ranking, nonblocking_ranking in zip(blocking, nonblocking):
            assert np.array_equal(blocking_ranking.scores, nonblocking_ranking.scores)

    # The structural guarantee of the job path (robust even on shared CI
    # runners and on the shrunken smoke graph): submission latency is
    # decoupled from comparison cost — the *median* non-blocking submission
    # returns faster than the *average* blocking one, which pays for its
    # comparison inline.  The worst case is recorded in the trajectory.
    nonblocking_p50 = sorted(nonblocking_submits)[len(nonblocking_submits) // 2]
    assert nonblocking_p50 < float(np.mean(blocking_submits)), (
        f"non-blocking submission is not decoupled from comparison cost "
        f"(p50 submit {nonblocking_p50:.4f}s vs blocking mean "
        f"{float(np.mean(blocking_submits)):.4f}s)"
    )

    payload = {
        "benchmark": "gateway-throughput",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": bench_graph.number_of_nodes(),
            "edges": bench_graph.number_of_edges(),
        },
        "workload": {
            "comparisons": NUM_COMPARISONS,
            "queries_per_comparison": QUERIES_PER_COMPARISON,
            "hot_fraction": 1.0 / HOT_EVERY,
            "algorithm": "personalized-pagerank",
            "workers": NUM_WORKERS,
        },
        "blocking": {
            "submit_seconds": _summary(blocking_submits),
            "wall_seconds": blocking_wall,
            "comparisons_per_second": NUM_COMPARISONS / blocking_wall,
        },
        "non_blocking": {
            "submit_seconds": _summary(nonblocking_submits),
            "wall_seconds": nonblocking_wall,
            "comparisons_per_second": NUM_COMPARISONS / nonblocking_wall,
        },
        "submit_latency_decoupling": {
            "blocking_mean_over_nonblocking_max": (
                float(np.mean(blocking_submits)) / max(nonblocking_submits)
                if max(nonblocking_submits)
                else None
            ),
        },
    }
    path = _merge_into_report(payload)
    assert path.exists()


def _merge_into_report(payload):
    """Merge ``payload`` into BENCH_gateway_throughput.json, keeping other keys.

    The trajectory test and the saturation test each own a slice of the same
    report file; whichever runs second must not clobber the first's numbers.
    """
    path = output_directory() / "BENCH_gateway_throughput.json"
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            existing = {}
    existing.update(payload)
    return write_report(
        "BENCH_gateway_throughput.json", json.dumps(existing, indent=2)
    )


# --------------------------------------------------------------------------- #
# saturation: thread vs process executor tier across worker counts
# --------------------------------------------------------------------------- #

def _saturation_workload(graph):
    """CycleRank-heavy mix: independent single-query comparisons, cold sources.

    CycleRank's bounded-depth cycle enumeration is a pure-Python kernel, so a
    thread pool serialises on the GIL while the process tier runs one kernel
    per core over the shared-memory CSR.  Each comparison carries one query
    with a distinct hub source: distinct groups spread across the pool and
    nothing repeats, so the result cache never hides executor time.
    """
    in_degrees = np.asarray(graph.in_degrees())
    hubs = [int(node) for node in np.argsort(in_degrees)[::-1]]
    return [
        [
            {
                "dataset_id": "bench",
                "algorithm": "cyclerank",
                "source": graph.label_of(hubs[index]),
                "parameters": {"k": 3},
            }
        ]
        for index in range(SATURATION_COMPARISONS)
    ]


def _segment_private_dirty_kb(pid):
    """KiB of *private dirty* memory a worker holds in repro shm mappings.

    Zero-copy means attaching the CSR adds shared (page-cache backed) pages,
    not private ones — a worker that copied the arrays into its heap would
    show up here.  Returns ``None`` when smaps is unavailable (non-Linux,
    restricted /proc).
    """
    try:
        text = open(f"/proc/{pid}/smaps", "r", encoding="utf-8").read()
    except OSError:
        return None
    total_kb = 0
    in_segment = False
    for line in text.splitlines():
        if "-" in line.split(" ", 1)[0] and ":" not in line.split(" ", 1)[0]:
            # Mapping header line: /dev/shm segments show as "/repro-…".
            in_segment = "/repro-" in line
        elif in_segment and line.startswith("Private_Dirty:"):
            total_kb += int(line.split()[1])
    return total_kb


def _run_saturation(graph, mode, workers, comparisons):
    catalog = DatasetCatalog()
    catalog.register_graph("bench", graph, description="gateway saturation bench")
    with ApiGateway(
        catalog=catalog, executor_mode=mode, num_workers=workers
    ) as gateway:
        # Warm the artifact (and, in process mode, fork the workers and
        # export the shared segment) so the timed run measures kernels.
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        began = time.perf_counter()
        ids = [
            gateway.run_queries(queries, synchronous=False)
            for queries in comparisons
        ]
        for comparison_id in ids:
            gateway.wait_for(comparison_id, timeout_seconds=600.0)
        wall = time.perf_counter() - began
        for comparison_id in ids:
            assert gateway.get_status(comparison_id).state.value == "completed"
        rankings = [gateway.get_rankings(comparison_id)[0] for comparison_id in ids]

        memory = None
        if mode == "process":
            handles = gateway.executor_pool.artifacts.active_handles()
            csr_bytes = sum(handle.csr_bytes for handle in handles)
            worker_pids = list(gateway.executor_pool._process_pool._processes)
            private_kb = [
                kb
                for kb in (_segment_private_dirty_kb(pid) for pid in worker_pids)
                if kb is not None
            ]
            memory = {
                "csr_bytes": csr_bytes,
                "shared_bytes": sum(handle.total_bytes for handle in handles),
                "workers_sampled": len(private_kb),
                "segment_private_dirty_kb": private_kb,
            }
            # Zero-copy check: workers must not have copied the CSR into
            # private pages — their private-dirty footprint *inside the
            # segment mappings* stays a rounding error next to the CSR.
            if private_kb and csr_bytes > 0:
                assert max(private_kb) * 1024 < max(csr_bytes // 8, 64 * 1024), (
                    f"worker private-dirty {max(private_kb)} KiB inside shared "
                    f"segments rivals the {csr_bytes}-byte CSR — not zero-copy"
                )
    return wall, rankings, memory


@pytest.mark.benchmark(group="gateway-throughput")
def test_bench_gateway_saturation_curve(bench_graph):
    """Sweep worker counts across both executor tiers; extend the report.

    Writes the ``saturation`` section of BENCH_gateway_throughput.json: wall
    clock and comparisons/second for every (mode, workers) cell, the
    process-over-thread speedup at each rung, and the zero-copy memory
    numbers for the process tier.  The ≥2.5x speedup acceptance gate only
    arms on machines with at least 4 cores — on smaller runners the curve is
    still recorded, there is just no parallelism to claim.
    """
    comparisons = _saturation_workload(bench_graph)
    cells = {}
    baseline_rankings = None
    for mode in ("thread", "process"):
        for workers in SATURATION_WORKER_COUNTS:
            wall, rankings, memory = _run_saturation(
                bench_graph, mode, workers, comparisons
            )
            cell = {
                "wall_seconds": wall,
                "comparisons_per_second": SATURATION_COMPARISONS / wall,
            }
            if memory is not None:
                cell["memory"] = memory
            cells[f"{mode}-{workers}"] = cell
            # Every cell must agree bit-for-bit with the first one measured.
            if baseline_rankings is None:
                baseline_rankings = rankings
            else:
                for ours, reference in zip(rankings, baseline_rankings):
                    assert np.array_equal(ours.scores, reference.scores), (
                        f"{mode} x{workers} diverged from the baseline rankings"
                    )

    speedups = {
        workers: cells[f"thread-{workers}"]["wall_seconds"]
        / cells[f"process-{workers}"]["wall_seconds"]
        for workers in SATURATION_WORKER_COUNTS
    }
    cores = os.cpu_count() or 1
    payload = {
        "saturation": {
            "workload": {
                "comparisons": SATURATION_COMPARISONS,
                "algorithm": "cyclerank",
                "parameters": {"k": 3},
                "worker_counts": SATURATION_WORKER_COUNTS,
            },
            "cores": cores,
            "cells": cells,
            "process_over_thread_speedup": {
                str(workers): value for workers, value in speedups.items()
            },
        }
    }
    path = _merge_into_report(payload)
    assert path.exists()

    if cores >= 4 and 4 in speedups:
        # The acceptance gate: with four real cores, four process workers
        # must beat four GIL-bound threads by a wide margin on this
        # pure-Python kernel mix.
        assert speedups[4] >= 2.5, (
            f"process tier speedup at 4 workers is {speedups[4]:.2f}x "
            f"(< 2.5x) on a {cores}-core machine"
        )
