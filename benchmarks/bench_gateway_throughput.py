"""Gateway serving throughput: blocking vs non-blocking submission.

The serving-layer trajectory for the event-driven job refactor: a mixed
hot/cold comparison workload (repeat sources hit the platform result cache,
fresh sources force batched executions) is pushed through the gateway twice —

* ``blocking``      — the seed request path: every comparison submitted with
  ``synchronous=True``, the caller pinned for the full run;
* ``non_blocking``  — the job path: every comparison submitted with
  ``synchronous=False`` (the id returns immediately), then awaited through
  the event cursor (``wait_for``).

The point of the non-blocking path is *latency decoupling*, not raw
throughput: submission cost must not scale with comparison cost.  The
measured trajectories (per-submission latency percentiles, end-to-end wall
clock, comparisons/second) are written to
``benchmarks/output/BENCH_gateway_throughput.json`` so future serving-layer
PRs have a baseline to diff against.  Set ``REPRO_BENCH_NODES`` to shrink
the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import preferential_attachment_graph
from repro.platform.gateway import ApiGateway
from repro.version import __version__

from _harness import write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "5000"))
NUM_COMPARISONS = 12
QUERIES_PER_COMPARISON = 4
NUM_WORKERS = 4
#: Fraction of comparisons whose sources repeat an earlier comparison's
#: (served from the result cache — the "hot" half of the mixed workload).
HOT_EVERY = 2


def _labelled_bench_graph():
    graph = preferential_attachment_graph(
        NUM_NODES, out_degree=6, reciprocation_probability=0.3, seed=7,
        name=f"gateway-bench-{NUM_NODES}",
    )
    # Generated nodes are unlabelled; personalized queries address their
    # sources by label, so give every node a resolvable one.
    for node in range(graph.number_of_nodes()):
        graph.set_label(node, f"n{node}")
    return graph


@pytest.fixture(scope="module")
def bench_graph():
    return _labelled_bench_graph()


def _workload(graph):
    """Build the mixed hot/cold comparison payloads (deterministic)."""
    in_degrees = np.asarray(graph.in_degrees())
    hubs = [int(node) for node in np.argsort(in_degrees)[::-1]]
    comparisons = []
    for index in range(NUM_COMPARISONS):
        if index % HOT_EVERY == 1:
            # Hot: repeat the previous comparison's sources verbatim.
            comparisons.append(list(comparisons[-1]))
            continue
        base = (index // HOT_EVERY) * QUERIES_PER_COMPARISON
        sources = hubs[base : base + QUERIES_PER_COMPARISON]
        comparisons.append(
            [
                {
                    "dataset_id": "bench",
                    "algorithm": "personalized-pagerank",
                    "source": graph.label_of(source),
                }
                for source in sources
            ]
        )
    return comparisons


def _fresh_gateway(graph):
    catalog = DatasetCatalog()
    catalog.register_graph("bench", graph, description="gateway throughput bench")
    return ApiGateway(catalog=catalog, num_workers=NUM_WORKERS)


def _run_blocking(graph, comparisons):
    with _fresh_gateway(graph) as gateway:
        # Warm the dataset/artifact so both paths measure serving, not the
        # first-use materialisation.
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        submit_seconds = []
        began = time.perf_counter()
        ids = []
        for queries in comparisons:
            started = time.perf_counter()
            ids.append(gateway.run_queries(queries, synchronous=True))
            submit_seconds.append(time.perf_counter() - started)
        wall = time.perf_counter() - began
        rankings = [gateway.get_rankings(comparison_id) for comparison_id in ids]
    return submit_seconds, wall, rankings


def _run_non_blocking(graph, comparisons):
    with _fresh_gateway(graph) as gateway:
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        # Warm the asynchronous machinery too (pool threads, job registry),
        # so the timed submissions measure steady-state dispatch.
        warmup = gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "cheirank"}], synchronous=False
        )
        gateway.wait_for(warmup, timeout_seconds=600.0)
        submit_seconds = []
        began = time.perf_counter()
        ids = []
        for queries in comparisons:
            started = time.perf_counter()
            ids.append(gateway.run_queries(queries, synchronous=False))
            submit_seconds.append(time.perf_counter() - started)
        for comparison_id in ids:
            gateway.wait_for(comparison_id, timeout_seconds=600.0)
        wall = time.perf_counter() - began
        rankings = [gateway.get_rankings(comparison_id) for comparison_id in ids]
    return submit_seconds, wall, rankings


def _summary(seconds):
    ordered = sorted(seconds)
    return {
        "mean": float(np.mean(ordered)),
        "p50": float(ordered[len(ordered) // 2]),
        "max": float(ordered[-1]),
        "total": float(np.sum(ordered)),
    }


@pytest.mark.benchmark(group="gateway-throughput")
def test_bench_gateway_throughput_trajectory(bench_graph):
    """Measure both request paths and write BENCH_gateway_throughput.json."""
    comparisons = _workload(bench_graph)
    blocking_submits, blocking_wall, blocking_rankings = _run_blocking(
        bench_graph, comparisons
    )
    nonblocking_submits, nonblocking_wall, nonblocking_rankings = _run_non_blocking(
        bench_graph, comparisons
    )

    # Correctness before timing claims: the two request paths must produce
    # bit-identical rankings for every comparison of the workload.
    assert len(blocking_rankings) == len(nonblocking_rankings) == NUM_COMPARISONS
    for blocking, nonblocking in zip(blocking_rankings, nonblocking_rankings):
        assert len(blocking) == len(nonblocking) == QUERIES_PER_COMPARISON
        for blocking_ranking, nonblocking_ranking in zip(blocking, nonblocking):
            assert np.array_equal(blocking_ranking.scores, nonblocking_ranking.scores)

    # The structural guarantee of the job path (robust even on shared CI
    # runners and on the shrunken smoke graph): submission latency is
    # decoupled from comparison cost — the *median* non-blocking submission
    # returns faster than the *average* blocking one, which pays for its
    # comparison inline.  The worst case is recorded in the trajectory.
    nonblocking_p50 = sorted(nonblocking_submits)[len(nonblocking_submits) // 2]
    assert nonblocking_p50 < float(np.mean(blocking_submits)), (
        f"non-blocking submission is not decoupled from comparison cost "
        f"(p50 submit {nonblocking_p50:.4f}s vs blocking mean "
        f"{float(np.mean(blocking_submits)):.4f}s)"
    )

    payload = {
        "benchmark": "gateway-throughput",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": bench_graph.number_of_nodes(),
            "edges": bench_graph.number_of_edges(),
        },
        "workload": {
            "comparisons": NUM_COMPARISONS,
            "queries_per_comparison": QUERIES_PER_COMPARISON,
            "hot_fraction": 1.0 / HOT_EVERY,
            "algorithm": "personalized-pagerank",
            "workers": NUM_WORKERS,
        },
        "blocking": {
            "submit_seconds": _summary(blocking_submits),
            "wall_seconds": blocking_wall,
            "comparisons_per_second": NUM_COMPARISONS / blocking_wall,
        },
        "non_blocking": {
            "submit_seconds": _summary(nonblocking_submits),
            "wall_seconds": nonblocking_wall,
            "comparisons_per_second": NUM_COMPARISONS / nonblocking_wall,
        },
        "submit_latency_decoupling": {
            "blocking_mean_over_nonblocking_max": (
                float(np.mean(blocking_submits)) / max(nonblocking_submits)
                if max(nonblocking_submits)
                else None
            ),
        },
    }
    path = write_report("BENCH_gateway_throughput.json", json.dumps(payload, indent=2))
    assert path.exists()
