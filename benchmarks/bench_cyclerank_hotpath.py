"""CycleRank hot path: seed vs CSR-native, single vs batched.

Times the three ways of answering the same 16-reference CycleRank workload
(K=3) on a heavy-tailed generated graph:

* ``seed``   — the dict-based enumeration looped per reference (the
  pre-CSR implementation, kept as
  :func:`~repro.algorithms.cycle_enumeration.enumerate_cycles_through_dict`);
* ``single`` — the CSR-native :func:`~repro.algorithms.cyclerank.cyclerank`
  looped per reference;
* ``batch``  — one :func:`~repro.algorithms.cyclerank.cyclerank_batch` call
  sharing the compiled structures across the whole batch.

A second section measures the ``K >= 4`` regime, where the closed-form
counting kernel does not apply and the engine's bounded-BFS prunings carry
the cost: seed walk vs engine, and the engine with the NumPy frontier-gather
BFS against the per-node walk (isolating the gather's delta).

The measured trajectories are written to
``benchmarks/output/BENCH_cyclerank.json`` and ``BENCH_cyclerank_k4.json``
so future PRs have a perf baseline to diff against.  Set
``REPRO_BENCH_NODES`` to shrink the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.algorithms.cyclerank import cyclerank, cyclerank_batch, cyclerank_reference
from repro.graph.generators import preferential_attachment_graph
from repro.version import __version__

from _harness import write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "5000"))
NUM_REFERENCES = 16
K = 3
ROUNDS = 3
#: The deep-K section runs fewer references: the seed baseline's cost grows
#: steeply with K and the point is the engine-vs-seed (and frontier-gather
#: on/off) delta, not a long wait.
K_DEEP = 5
NUM_REFERENCES_DEEP = 8


@pytest.fixture(scope="module")
def hotpath_graph():
    return preferential_attachment_graph(
        NUM_NODES, out_degree=10, reciprocation_probability=0.5, seed=11,
        name=f"cyclerank-hotpath-{NUM_NODES}",
    )


@pytest.fixture(scope="module")
def hub_references(hotpath_graph):
    in_degrees = np.asarray(hotpath_graph.in_degrees())
    return [int(node) for node in np.argsort(in_degrees)[::-1][:NUM_REFERENCES]]


@pytest.fixture(scope="module")
def deep_k_graph():
    """The pruning-bound graph of the deep-K section: sparse reciprocation.

    With reciprocation at 2% the K-hop neighbourhood of a node is large but
    short round trips are rare, so the bounded-BFS prunings — not the DFS
    enumeration — carry the cost, which is the regime the frontier gather
    accelerates.
    """
    return preferential_attachment_graph(
        2 * NUM_NODES, out_degree=10, reciprocation_probability=0.02, seed=11,
        name=f"cyclerank-deep-k-{2 * NUM_NODES}",
    )


@pytest.fixture(scope="module")
def median_references(deep_k_graph):
    """Mid-degree references (hub-rooted searches are enumeration-bound)."""
    in_degrees = np.asarray(deep_k_graph.in_degrees())
    order = np.argsort(in_degrees)[::-1]
    middle = len(order) // 2
    return [int(node) for node in order[middle : middle + NUM_REFERENCES_DEEP]]


def _best_of(rounds, body):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = body()
        times.append(time.perf_counter() - started)
    return min(times), times, result


@pytest.mark.benchmark(group="cyclerank-hotpath")
def test_bench_cyclerank_hotpath_trajectory(hotpath_graph, hub_references):
    """Measure the three configurations and write BENCH_cyclerank.json."""
    graph, references = hotpath_graph, hub_references
    cyclerank_batch(graph, references[:1])  # warm-up

    seed_best, seed_rounds, seed_rankings = _best_of(
        ROUNDS,
        lambda: [cyclerank_reference(graph, r, max_cycle_length=K) for r in references],
    )
    single_best, single_rounds, single_rankings = _best_of(
        ROUNDS, lambda: [cyclerank(graph, r, max_cycle_length=K) for r in references]
    )
    batch_best, batch_rounds, batch_rankings = _best_of(
        ROUNDS, lambda: cyclerank_batch(graph, references, max_cycle_length=K)
    )

    # Correctness before timing claims: batched == single bit for bit, and
    # both agree with the seed scores to rounding.
    for single_ranking, batch_ranking in zip(single_rankings, batch_rankings):
        assert np.array_equal(single_ranking.scores, batch_ranking.scores)
    for seed_ranking, batch_ranking in zip(seed_rankings, batch_rankings):
        assert np.allclose(seed_ranking.scores, batch_ranking.scores, rtol=1e-12, atol=0)

    payload = {
        "benchmark": "cyclerank-hotpath",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        },
        "workload": {
            "references": NUM_REFERENCES,
            "reference_selection": "top in-degree (hubs)",
            "k": K,
            "sigma": "exp",
            "rounds": ROUNDS,
        },
        "seconds": {
            "seed_per_reference_loop": seed_best,
            "csr_single_loop": single_best,
            "csr_batch": batch_best,
        },
        "rounds_seconds": {
            "seed_per_reference_loop": seed_rounds,
            "csr_single_loop": single_rounds,
            "csr_batch": batch_rounds,
        },
        "speedups_vs_seed": {
            "csr_single_loop": seed_best / single_best if single_best else None,
            "csr_batch": seed_best / batch_best if batch_best else None,
        },
    }
    path = write_report("BENCH_cyclerank.json", json.dumps(payload, indent=2))
    assert path.exists()
    # The trajectory is informational only: this module also runs as a CI
    # smoke step on shared runners, where wall-clock ratios are meaningless.
    # The hard ratio gates live in tests/test_cyclerank_batch.py, which
    # skips them when CI=true.


@pytest.mark.benchmark(group="cyclerank-hotpath")
def test_bench_cyclerank_deep_k_frontier_gather(deep_k_graph, median_references):
    """Measure the K>=4 engine path and the NumPy frontier-gather delta.

    ``K <= 3`` is answered by the closed-form counting kernel, so the
    bounded-BFS prunings only matter from ``K = 4`` up.  This section times
    the seed dict walk against the engine, and the engine against itself
    with the frontier gather disabled (``FRONTIER_GATHER_MIN`` pushed above
    any frontier size), isolating what the concatenate-and-mask level
    expansion buys on the pruning-bound deep-K workload (mid-degree
    references; hub-rooted searches are enumeration-bound instead and gain
    from the engine itself, not the BFS).  Written to
    ``BENCH_cyclerank_k4.json`` next to the K=3 trajectory.
    """
    import repro.algorithms.cycle_enumeration as cycle_enumeration

    graph = deep_k_graph
    references = median_references
    cyclerank_batch(graph, references[:1], max_cycle_length=K_DEEP)  # warm-up

    seed_best, _, seed_rankings = _best_of(
        ROUNDS,
        lambda: [
            cyclerank_reference(graph, r, max_cycle_length=K_DEEP) for r in references
        ],
    )
    gather_best, _, gather_rankings = _best_of(
        ROUNDS, lambda: cyclerank_batch(graph, references, max_cycle_length=K_DEEP)
    )
    threshold = cycle_enumeration.FRONTIER_GATHER_MIN
    cycle_enumeration.FRONTIER_GATHER_MIN = 1 << 60  # per-node walk on every level
    try:
        walk_best, _, walk_rankings = _best_of(
            ROUNDS, lambda: cyclerank_batch(graph, references, max_cycle_length=K_DEEP)
        )
    finally:
        cycle_enumeration.FRONTIER_GATHER_MIN = threshold

    # The gather must change timings only: identical scores either way, and
    # both agree with the seed walk to rounding.
    for gather_ranking, walk_ranking in zip(gather_rankings, walk_rankings):
        assert np.array_equal(gather_ranking.scores, walk_ranking.scores)
    for seed_ranking, gather_ranking in zip(seed_rankings, gather_rankings):
        assert np.allclose(seed_ranking.scores, gather_ranking.scores, rtol=1e-12, atol=0)

    payload = {
        "benchmark": "cyclerank-hotpath-deep-k",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        },
        "workload": {
            "references": NUM_REFERENCES_DEEP,
            "reference_selection": "median in-degree (pruning-bound)",
            "k": K_DEEP,
            "sigma": "exp",
            "rounds": ROUNDS,
            "frontier_gather_min": threshold,
        },
        "seconds": {
            "seed_per_reference_loop": seed_best,
            "csr_batch_frontier_gather": gather_best,
            "csr_batch_per_node_walk": walk_best,
        },
        "speedups": {
            "engine_vs_seed": seed_best / gather_best if gather_best else None,
            "frontier_gather_vs_walk": walk_best / gather_best if gather_best else None,
        },
    }
    path = write_report("BENCH_cyclerank_k4.json", json.dumps(payload, indent=2))
    assert path.exists()
