"""CycleRank hot path: seed vs CSR-native, single vs batched.

Times the three ways of answering the same 16-reference CycleRank workload
(K=3) on a heavy-tailed generated graph:

* ``seed``   — the dict-based enumeration looped per reference (the
  pre-CSR implementation, kept as
  :func:`~repro.algorithms.cycle_enumeration.enumerate_cycles_through_dict`);
* ``single`` — the CSR-native :func:`~repro.algorithms.cyclerank.cyclerank`
  looped per reference;
* ``batch``  — one :func:`~repro.algorithms.cyclerank.cyclerank_batch` call
  sharing the compiled structures across the whole batch.

The measured trajectory is written to ``benchmarks/output/BENCH_cyclerank.json``
so future PRs have a perf baseline to diff against.  Set
``REPRO_BENCH_NODES`` to shrink the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.algorithms.cyclerank import cyclerank, cyclerank_batch, cyclerank_reference
from repro.graph.generators import preferential_attachment_graph
from repro.version import __version__

from _harness import write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "5000"))
NUM_REFERENCES = 16
K = 3
ROUNDS = 3


@pytest.fixture(scope="module")
def hotpath_graph():
    return preferential_attachment_graph(
        NUM_NODES, out_degree=10, reciprocation_probability=0.5, seed=11,
        name=f"cyclerank-hotpath-{NUM_NODES}",
    )


@pytest.fixture(scope="module")
def hub_references(hotpath_graph):
    in_degrees = np.asarray(hotpath_graph.in_degrees())
    return [int(node) for node in np.argsort(in_degrees)[::-1][:NUM_REFERENCES]]


def _best_of(rounds, body):
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        result = body()
        times.append(time.perf_counter() - started)
    return min(times), times, result


@pytest.mark.benchmark(group="cyclerank-hotpath")
def test_bench_cyclerank_hotpath_trajectory(hotpath_graph, hub_references):
    """Measure the three configurations and write BENCH_cyclerank.json."""
    graph, references = hotpath_graph, hub_references
    cyclerank_batch(graph, references[:1])  # warm-up

    seed_best, seed_rounds, seed_rankings = _best_of(
        ROUNDS,
        lambda: [cyclerank_reference(graph, r, max_cycle_length=K) for r in references],
    )
    single_best, single_rounds, single_rankings = _best_of(
        ROUNDS, lambda: [cyclerank(graph, r, max_cycle_length=K) for r in references]
    )
    batch_best, batch_rounds, batch_rankings = _best_of(
        ROUNDS, lambda: cyclerank_batch(graph, references, max_cycle_length=K)
    )

    # Correctness before timing claims: batched == single bit for bit, and
    # both agree with the seed scores to rounding.
    for single_ranking, batch_ranking in zip(single_rankings, batch_rankings):
        assert np.array_equal(single_ranking.scores, batch_ranking.scores)
    for seed_ranking, batch_ranking in zip(seed_rankings, batch_rankings):
        assert np.allclose(seed_ranking.scores, batch_ranking.scores, rtol=1e-12, atol=0)

    payload = {
        "benchmark": "cyclerank-hotpath",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": graph.number_of_nodes(),
            "edges": graph.number_of_edges(),
        },
        "workload": {
            "references": NUM_REFERENCES,
            "reference_selection": "top in-degree (hubs)",
            "k": K,
            "sigma": "exp",
            "rounds": ROUNDS,
        },
        "seconds": {
            "seed_per_reference_loop": seed_best,
            "csr_single_loop": single_best,
            "csr_batch": batch_best,
        },
        "rounds_seconds": {
            "seed_per_reference_loop": seed_rounds,
            "csr_single_loop": single_rounds,
            "csr_batch": batch_rounds,
        },
        "speedups_vs_seed": {
            "csr_single_loop": seed_best / single_best if single_best else None,
            "csr_batch": seed_best / batch_best if batch_best else None,
        },
    }
    path = write_report("BENCH_cyclerank.json", json.dumps(payload, indent=2))
    assert path.exists()
    # The trajectory is informational only: this module also runs as a CI
    # smoke step on shared runners, where wall-clock ratios are meaningless.
    # The hard ratio gates live in tests/test_cyclerank_batch.py, which
    # skips them when CI=true.
