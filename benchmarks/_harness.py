"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one table or figure of the paper: it times
the underlying algorithm runs with ``pytest-benchmark`` and writes the
regenerated table (the same rows/columns the paper reports) to
``benchmarks/output/`` so the reproduction can be inspected and diffed
against the published version.  Absolute numbers differ (the datasets are
synthetic stand-ins, see DESIGN.md §2); the assertions in each module check
that the *shape* of the published result holds.
"""

from __future__ import annotations

from pathlib import Path

__all__ = ["output_directory", "write_report"]

#: Directory the regenerated tables are written to.
OUTPUT_DIRECTORY = Path(__file__).resolve().parent / "output"


def output_directory() -> Path:
    """Return (and create) the directory for regenerated tables."""
    OUTPUT_DIRECTORY.mkdir(parents=True, exist_ok=True)
    return OUTPUT_DIRECTORY


def write_report(name: str, content: str) -> Path:
    """Write one regenerated table/figure report and return its path."""
    path = output_directory() / name
    path.write_text(content + "\n", encoding="utf-8")
    return path
