"""Figure 2 — the task-builder interface (query sets and their permalinks).

Figure 2 shows the task builder with a comparison id, one numbered row per
query (dataset, algorithm, source, parameters), per-row removal and a
clear-all control.  The benchmarks time query validation and query-set
construction (the interactive operations behind the form) and write a
rendered task-builder view — reproducing the figure's content — to
``benchmarks/output/fig2_task_builder.txt``.
"""

from __future__ import annotations

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.platform.gateway import ApiGateway
from repro.platform.tasks import TaskBuilder
from repro.platform.webui import WebUI

from _harness import write_report


@pytest.fixture(scope="module")
def bench_catalog(enwiki_2018):
    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-2018", enwiki_2018, family="wikipedia",
                           description="synthetic enwiki 2018-03-01")
    return catalog


#: The three rows shown in Figure 2 of the paper.
FIGURE2_ROWS = [
    ("enwiki-2018", "cyclerank", "Fake news", {"k": 3, "sigma": "exp"}),
    ("enwiki-2018", "pagerank", None, {"alpha": 0.3}),
    ("enwiki-2018", "personalized-pagerank", "Fake news", {"alpha": 0.3}),
]


@pytest.mark.benchmark(group="fig2-taskbuilder")
def test_bench_query_validation(benchmark, bench_catalog):
    """Time validating one query against the catalog and the algorithm spec."""
    builder = TaskBuilder(bench_catalog)
    query = benchmark(
        builder.build_query,
        "enwiki-2018",
        "cyclerank",
        source="Fake news",
        parameters={"k": "3", "sigma": "exp"},
    )
    assert query.parameters["k"] == 3


@pytest.mark.benchmark(group="fig2-taskbuilder")
def test_bench_query_set_assembly(benchmark, bench_catalog):
    """Time assembling the full Figure-2 query set (three rows)."""
    builder = TaskBuilder(bench_catalog)

    def assemble():
        query_set = builder.new_query_set()
        for dataset_id, algorithm, source, parameters in FIGURE2_ROWS:
            query_set.add(
                builder.build_query(dataset_id, algorithm, source=source, parameters=parameters)
            )
        return query_set

    query_set = benchmark(assemble)
    assert len(query_set) == len(FIGURE2_ROWS)


@pytest.mark.benchmark(group="fig2-taskbuilder")
def test_bench_query_set_mutation(benchmark, bench_catalog):
    """Time the interactive mutations: add rows, remove one, clear all."""
    builder = TaskBuilder(bench_catalog)
    prototype = [
        builder.build_query(dataset_id, algorithm, source=source, parameters=parameters)
        for dataset_id, algorithm, source, parameters in FIGURE2_ROWS
    ]

    def mutate():
        query_set = builder.new_query_set()
        for query in prototype:
            query_set.add(query)
        query_set.remove(1)
        removed_state = len(query_set)
        query_set.clear()
        return removed_state, len(query_set)

    removed_state, cleared_state = benchmark(mutate)
    assert removed_state == len(FIGURE2_ROWS) - 1
    assert cleared_state == 0


@pytest.mark.benchmark(group="fig2-taskbuilder")
def test_regenerate_fig2_view(benchmark, bench_catalog):
    """Render the task-builder view of Figure 2 and write it to benchmarks/output/."""
    gateway = ApiGateway(catalog=bench_catalog, num_workers=1)
    ui = WebUI(gateway)

    def build_and_render() -> str:
        query_set = gateway.new_query_set()
        for dataset_id, algorithm, source, parameters in FIGURE2_ROWS:
            gateway.add_query(query_set, dataset_id, algorithm,
                              source=source, parameters=parameters)
        return ui.render_task_builder(query_set)

    try:
        view = benchmark.pedantic(build_and_render, rounds=1, iterations=1)
        report = write_report(
            "fig2_task_builder.txt",
            "Figure 2 (reproduced): task-builder view\n" + "=" * 70 + "\n\n" + view,
        )
        assert report.exists()
        assert "Comparison id:" in view
        assert "cyclerank" in view
        assert "Fake news" in view
    finally:
        gateway.shutdown()
