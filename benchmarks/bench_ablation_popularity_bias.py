"""Ablation — quantifying the popularity bias the paper describes qualitatively.

The paper's criticism of Personalized PageRank is that it "tends to assign a
high score to nodes with high global centrality in the graph, regardless of
the query node", and Tables I and II illustrate it with examples.  This
ablation measures the effect: for every personalized algorithm, compute the
mean global-popularity percentile (by in-degree) of its top-10 on the
Wikipedia and Amazon graphs, averaged over the paper's reference nodes.

Expected shape (asserted): Personalized PageRank is the most
popularity-biased and strictly more biased than CycleRank — the paper's
qualitative claim, as a number.  Personalized CheiRank sits low because it
rewards *outgoing* connectivity, which the high-in-degree hubs lack.
Written to ``benchmarks/output/ablation_popularity_bias.txt``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.popularity import popularity_bias_report

from _harness import write_report

PERSONALIZED_ALGORITHMS = (
    "cyclerank",
    "personalized-pagerank",
    "personalized-cheirank",
    "personalized-2drank",
)

WIKIPEDIA_REFERENCES = ("Freddie Mercury", "Pasta", "Fake news")
AMAZON_REFERENCES = ("1984", "The Fellowship of the Ring")


def _rankings_for(graph, reference):
    rankings = {}
    for name in PERSONALIZED_ALGORITHMS:
        algorithm = get_algorithm(name)
        rankings[algorithm.display_name] = algorithm.run(graph, source=reference)
    return rankings


@pytest.mark.benchmark(group="ablation-popularity-bias")
@pytest.mark.parametrize("reference", WIKIPEDIA_REFERENCES)
def test_bench_popularity_bias_wikipedia(benchmark, enwiki_2018, reference):
    """Time the four personalized algorithms + bias computation for one query."""

    def run():
        return popularity_bias_report(_rankings_for(enwiki_2018, reference), enwiki_2018, k=10)

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.biases["Pers. PageRank"] >= report.biases["Cyclerank"]


@pytest.mark.benchmark(group="ablation-popularity-bias")
def test_regenerate_popularity_bias_report(benchmark, enwiki_2018, amazon_graph):
    """Write the popularity-bias comparison across datasets and references."""

    def build_report() -> str:
        lines = [
            "Popularity bias of the personalized algorithms",
            "(mean in-degree percentile of the top-10, reference excluded)",
            "=" * 70,
        ]
        aggregates = {}
        for dataset_name, graph, references in [
            ("enwiki 2018-03-01", enwiki_2018, WIKIPEDIA_REFERENCES),
            ("amazon co-purchase", amazon_graph, AMAZON_REFERENCES),
        ]:
            lines.append("")
            lines.append(f"{dataset_name}:")
            for reference in references:
                report = popularity_bias_report(
                    _rankings_for(graph, reference), graph, k=10
                )
                lines.append(f"  reference {reference!r}:")
                for name, bias in report.ordered():
                    lines.append(f"    {name:<22} {bias:.3f}")
                    aggregates.setdefault(name, []).append(bias)
        lines.append("")
        lines.append("Average across every dataset and reference:")
        averaged = {
            name: sum(values) / len(values) for name, values in aggregates.items()
        }
        for name, bias in sorted(averaged.items(), key=lambda item: -item[1]):
            lines.append(f"  {name:<22} {bias:.3f}")
        # The paper's qualitative claim, asserted quantitatively: PPR's head is
        # the most popularity-biased of all, and strictly more than CycleRank's.
        assert averaged["Pers. PageRank"] == max(averaged.values())
        assert averaged["Pers. PageRank"] > averaged["Cyclerank"]
        return "\n".join(lines)

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    report = write_report("ablation_popularity_bias.txt", content)
    assert report.exists()
