"""Telemetry overhead: instrumented vs uninstrumented gateway throughput.

PR 8 threads a tracer and a metrics registry through every layer of the
serving path (REST handling, admission, scheduler dispatch, cache lookups,
batch execution, replicated storage).  Observability that taxes the hot
path gets turned off in production, so this benchmark proves the tax is
negligible: the same mixed hot/cold comparison workload is pushed through

* ``instrumented``   — the default gateway (``telemetry_enabled=True``):
  every comparison records its full span tree and feeds the latency
  histograms;
* ``uninstrumented`` — ``telemetry_enabled=False``: the registry and
  tracer are no-ops, the seed request path with only the thread-local
  scope installs remaining.

Each arm runs ``ROUNDS`` times and keeps its best wall clock (min-of-N
absorbs scheduler noise on shared runners).  The measured trajectories and
the overhead fraction are written to
``benchmarks/output/BENCH_telemetry.json``; the assertion holds the
overhead under ``MAX_OVERHEAD_FRACTION``.  Set ``REPRO_BENCH_NODES`` to
shrink the graph (the CI smoke run uses 1000).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np
import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.graph.generators import preferential_attachment_graph
from repro.platform.gateway import ApiGateway
from repro.version import __version__

from _harness import write_report

NUM_NODES = int(os.environ.get("REPRO_BENCH_NODES", "5000"))
NUM_COMPARISONS = 16
QUERIES_PER_COMPARISON = 4
NUM_WORKERS = 4
#: Every second comparison repeats the previous one's sources (cache hits),
#: so the workload exercises the cache-lookup and single-flight spans too.
HOT_EVERY = 2
#: Timed rounds per arm; the best round is kept.
ROUNDS = 3
#: The acceptance bar: full tracing must cost less than 5% wall clock.
MAX_OVERHEAD_FRACTION = 0.05


def _labelled_bench_graph():
    graph = preferential_attachment_graph(
        NUM_NODES, out_degree=6, reciprocation_probability=0.3, seed=7,
        name=f"telemetry-bench-{NUM_NODES}",
    )
    for node in range(graph.number_of_nodes()):
        graph.set_label(node, f"n{node}")
    return graph


@pytest.fixture(scope="module")
def bench_graph():
    return _labelled_bench_graph()


def _workload(graph):
    """Build the mixed hot/cold comparison payloads (deterministic)."""
    in_degrees = np.asarray(graph.in_degrees())
    hubs = [int(node) for node in np.argsort(in_degrees)[::-1]]
    comparisons = []
    for index in range(NUM_COMPARISONS):
        if index % HOT_EVERY == 1:
            comparisons.append(list(comparisons[-1]))
            continue
        base = (index // HOT_EVERY) * QUERIES_PER_COMPARISON
        sources = hubs[base : base + QUERIES_PER_COMPARISON]
        comparisons.append(
            [
                {
                    "dataset_id": "bench",
                    "algorithm": "personalized-pagerank",
                    "source": graph.label_of(source),
                }
                for source in sources
            ]
        )
    return comparisons


def _fresh_gateway(graph, *, telemetry_enabled):
    catalog = DatasetCatalog()
    catalog.register_graph("bench", graph, description="telemetry overhead bench")
    return ApiGateway(
        catalog=catalog, num_workers=NUM_WORKERS, telemetry_enabled=telemetry_enabled
    )


def _run_arm(graph, comparisons, *, telemetry_enabled):
    """One timed round: fresh gateway, warmup, then the full workload."""
    with _fresh_gateway(graph, telemetry_enabled=telemetry_enabled) as gateway:
        gateway.run_queries(
            [{"dataset_id": "bench", "algorithm": "pagerank"}], synchronous=True
        )
        began = time.perf_counter()
        ids = [
            gateway.run_queries(queries, synchronous=True)
            for queries in comparisons
        ]
        wall = time.perf_counter() - began
        rankings = [gateway.get_rankings(comparison_id) for comparison_id in ids]
        spans_collected = gateway.tracer.stats()["spans_collected"]
    return wall, rankings, spans_collected


@pytest.mark.benchmark(group="telemetry-overhead")
def test_bench_telemetry_overhead(bench_graph):
    """Measure both arms and write BENCH_telemetry.json."""
    comparisons = _workload(bench_graph)

    # One discarded round: the first workload of a process pays one-off
    # costs (allocator growth, code paths warming) that would otherwise
    # land entirely on whichever arm runs first.
    _run_arm(bench_graph, comparisons, telemetry_enabled=False)

    instrumented_walls = []
    uninstrumented_walls = []
    instrumented_rankings = uninstrumented_rankings = None
    spans_collected = 0
    for _ in range(ROUNDS):
        # Interleave the arms so drift on a shared runner hits both equally.
        wall, instrumented_rankings, spans_collected = _run_arm(
            bench_graph, comparisons, telemetry_enabled=True
        )
        instrumented_walls.append(wall)
        wall, uninstrumented_rankings, no_spans = _run_arm(
            bench_graph, comparisons, telemetry_enabled=False
        )
        uninstrumented_walls.append(wall)
        assert no_spans == 0, "the uninstrumented arm must record nothing"

    # The instrumented arm must actually be instrumented: every comparison
    # (plus the warmup) recorded a multi-span trace.
    assert spans_collected > NUM_COMPARISONS

    # Correctness before timing claims: instrumentation must not change
    # a single ranking.
    for instrumented, uninstrumented in zip(
        instrumented_rankings, uninstrumented_rankings
    ):
        assert len(instrumented) == len(uninstrumented) == QUERIES_PER_COMPARISON
        for left, right in zip(instrumented, uninstrumented):
            assert np.array_equal(left.scores, right.scores)

    best_instrumented = min(instrumented_walls)
    best_uninstrumented = min(uninstrumented_walls)
    overhead_fraction = (
        best_instrumented - best_uninstrumented
    ) / best_uninstrumented
    assert overhead_fraction < MAX_OVERHEAD_FRACTION, (
        f"telemetry costs {overhead_fraction:.1%} wall clock "
        f"(instrumented {best_instrumented:.3f}s vs "
        f"uninstrumented {best_uninstrumented:.3f}s); the bar is "
        f"{MAX_OVERHEAD_FRACTION:.0%}"
    )

    payload = {
        "benchmark": "telemetry-overhead",
        "version": __version__,
        "graph": {
            "generator": "preferential_attachment_graph",
            "nodes": bench_graph.number_of_nodes(),
            "edges": bench_graph.number_of_edges(),
        },
        "workload": {
            "comparisons": NUM_COMPARISONS,
            "queries_per_comparison": QUERIES_PER_COMPARISON,
            "hot_fraction": 1.0 / HOT_EVERY,
            "algorithm": "personalized-pagerank",
            "workers": NUM_WORKERS,
            "rounds": ROUNDS,
        },
        "instrumented": {
            "wall_seconds": instrumented_walls,
            "best_wall_seconds": best_instrumented,
            "comparisons_per_second": NUM_COMPARISONS / best_instrumented,
            "spans_collected_last_round": spans_collected,
        },
        "uninstrumented": {
            "wall_seconds": uninstrumented_walls,
            "best_wall_seconds": best_uninstrumented,
            "comparisons_per_second": NUM_COMPARISONS / best_uninstrumented,
        },
        "overhead": {
            "fraction": overhead_fraction,
            "bar": MAX_OVERHEAD_FRACTION,
        },
    }
    path = write_report("BENCH_telemetry.json", json.dumps(payload, indent=2))
    assert path.exists()
