"""Session fixtures shared by the benchmark suite.

The full-size synthetic datasets are generated once per session (dataset
generation is deliberately *not* part of the timed benchmark bodies).
"""

from __future__ import annotations

import pytest

from repro.datasets.amazon import generate_amazon_graph
from repro.datasets.twitter import generate_twitter_graph
from repro.datasets.wikipedia import generate_wikilink_graph


@pytest.fixture(scope="session")
def enwiki_2018():
    """The synthetic English Wikipedia snapshot used by Table I."""
    return generate_wikilink_graph("en", "2018-03-01")


@pytest.fixture(scope="session")
def amazon_graph():
    """The synthetic Amazon co-purchase graph used by Table II."""
    return generate_amazon_graph()


@pytest.fixture(scope="session")
def twitter_cop27():
    """The synthetic Twitter cop27 interaction network."""
    return generate_twitter_graph("cop27")


@pytest.fixture(scope="session")
def language_editions():
    """The six language editions of Table III, keyed by language code."""
    return {
        language: generate_wikilink_graph(language, "2018-03-01")
        for language in ("de", "en", "fr", "it", "nl", "pl")
    }
