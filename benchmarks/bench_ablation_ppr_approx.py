"""Ablation — exact Personalized PageRank vs its two approximations.

The demo answers personalized queries interactively, so it matters how much
accuracy the cheaper PPR solvers give up.  This ablation compares the exact
power-iteration solver with the forward-push solver (at several epsilon) and
the Monte-Carlo estimator (at several walk counts) on the synthetic enwiki
snapshot, reporting runtime and precision@10 against the exact top-10.

Expected shape: push at epsilon<=1e-8 and Monte Carlo at >=50k walks recover
(almost) the exact top-10 while being competitive in runtime; coarser
settings trade precision for speed.
"""

from __future__ import annotations

import time

import pytest

from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.algorithms.ppr_montecarlo import ppr_montecarlo
from repro.algorithms.ppr_push import ppr_push
from repro.ranking.metrics import precision_at_k

from _harness import write_report

REFERENCE = "Pasta"
ALPHA = 0.5
EPSILONS = (1e-4, 1e-6, 1e-8)
WALK_COUNTS = (1_000, 10_000, 50_000)


@pytest.fixture(scope="module")
def exact_top10(enwiki_2018):
    return personalized_pagerank(enwiki_2018, REFERENCE, alpha=ALPHA).top_labels(10)


@pytest.mark.benchmark(group="ablation-ppr-approx")
def test_bench_exact_ppr(benchmark, enwiki_2018):
    """Time the exact power-iteration PPR (the accuracy reference)."""
    ranking = benchmark(personalized_pagerank, enwiki_2018, REFERENCE, alpha=ALPHA)
    assert ranking.top_labels(1) == [REFERENCE]


@pytest.mark.benchmark(group="ablation-ppr-approx")
@pytest.mark.parametrize("epsilon", EPSILONS)
def test_bench_push_ppr(benchmark, enwiki_2018, exact_top10, epsilon):
    """Time the forward-push solver at several accuracy settings."""
    ranking = benchmark(ppr_push, enwiki_2018, REFERENCE, alpha=ALPHA, epsilon=epsilon)
    if epsilon <= 1e-8:
        assert precision_at_k(ranking, exact_top10, 10) >= 0.8


@pytest.mark.benchmark(group="ablation-ppr-approx")
@pytest.mark.parametrize("num_walks", WALK_COUNTS)
def test_bench_montecarlo_ppr(benchmark, enwiki_2018, exact_top10, num_walks):
    """Time the Monte-Carlo estimator at several walk counts."""
    ranking = benchmark.pedantic(
        ppr_montecarlo,
        args=(enwiki_2018, REFERENCE),
        kwargs={"alpha": ALPHA, "num_walks": num_walks, "seed": 1},
        rounds=2,
        iterations=1,
    )
    if num_walks >= 50_000:
        assert precision_at_k(ranking, exact_top10, 10) >= 0.7


@pytest.mark.benchmark(group="ablation-ppr-approx-report")
def test_regenerate_ppr_approx_report(benchmark, enwiki_2018, exact_top10):
    """Write the accuracy/runtime trade-off table to benchmarks/output/."""

    def build_report() -> str:
        lines = [
            "Exact vs approximate Personalized PageRank "
            f"(reference {REFERENCE!r}, alpha={ALPHA})",
            "=" * 70,
            f"{'solver':>28}  {'runtime (s)':>12}  {'precision@10':>13}",
        ]
        started = time.perf_counter()
        personalized_pagerank(enwiki_2018, REFERENCE, alpha=ALPHA)
        lines.append(f"{'exact power iteration':>28}  {time.perf_counter() - started:>12.4f}  "
                     f"{1.0:>13.2f}")
        for epsilon in EPSILONS:
            started = time.perf_counter()
            ranking = ppr_push(enwiki_2018, REFERENCE, alpha=ALPHA, epsilon=epsilon)
            elapsed = time.perf_counter() - started
            precision = precision_at_k(ranking, exact_top10, 10)
            lines.append(
                f"{f'forward push (eps={epsilon:g})':>28}  {elapsed:>12.4f}  {precision:>13.2f}"
            )
        for num_walks in WALK_COUNTS:
            started = time.perf_counter()
            ranking = ppr_montecarlo(
                enwiki_2018, REFERENCE, alpha=ALPHA, num_walks=num_walks, seed=1
            )
            elapsed = time.perf_counter() - started
            precision = precision_at_k(ranking, exact_top10, 10)
            lines.append(
                f"{f'Monte Carlo ({num_walks} walks)':>28}  {elapsed:>12.4f}  {precision:>13.2f}"
            )
        return "\n".join(lines)

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    report = write_report("ablation_ppr_approx.txt", content)
    assert report.exists()
