"""Table II — Top-5 by PR, CycleRank and PPR on the Amazon co-purchase graph.

Paper parameters: PageRank with alpha=0.85, CycleRank with K=5 and
sigma=e^-n, Personalized PageRank with alpha=0.85; reference items "1984"
and "The Fellowship of the Ring".

Shape preserved from the paper: CycleRank's columns stay inside the
reference's genre (dystopian classics / Tolkien), while Personalized
PageRank surfaces cross-genre bestsellers — the Harry Potter series — for
the Tolkien query.
"""

from __future__ import annotations

import pytest

from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.datasets.seeds import AMAZON_COMMUNITIES, AMAZON_POPULAR_ITEMS
from repro.ranking.comparison import ComparisonTable

from _harness import write_report

REFERENCES = {
    "1984": "dystopian-classics",
    "The Fellowship of the Ring": "tolkien",
}
ALPHA = 0.85
CYCLERANK_K = 5


@pytest.mark.benchmark(group="table2-amazon")
def test_bench_pagerank_amazon(benchmark, amazon_graph):
    """Time the global PageRank column of Table II."""
    ranking = benchmark(pagerank, amazon_graph, alpha=ALPHA)
    assert set(ranking.top_labels(5)) <= set(AMAZON_POPULAR_ITEMS)


@pytest.mark.benchmark(group="table2-amazon")
@pytest.mark.parametrize("reference", sorted(REFERENCES))
def test_bench_cyclerank_amazon(benchmark, amazon_graph, reference):
    """Time the CycleRank columns of Table II (K=5, sigma=e^-n)."""
    ranking = benchmark(
        cyclerank, amazon_graph, reference, max_cycle_length=CYCLERANK_K, scoring="exp"
    )
    assert ranking.top_labels(1) == [reference]
    community = set(AMAZON_COMMUNITIES[REFERENCES[reference]])
    assert set(ranking.top_labels(5, exclude=(reference,))) <= community


@pytest.mark.benchmark(group="table2-amazon")
@pytest.mark.parametrize("reference", sorted(REFERENCES))
def test_bench_personalized_pagerank_amazon(benchmark, amazon_graph, reference):
    """Time the Personalized PageRank columns of Table II (alpha=0.85)."""
    ranking = benchmark(personalized_pagerank, amazon_graph, reference, alpha=ALPHA)
    assert ranking.top_labels(1) == [reference]


@pytest.mark.benchmark(group="table2-amazon")
def test_regenerate_table2(benchmark, amazon_graph):
    """Regenerate Table II end-to-end and write it to benchmarks/output/."""

    def build_table() -> ComparisonTable:
        columns = {"PageRank": pagerank(amazon_graph, alpha=ALPHA)}
        for reference in REFERENCES:
            columns[f"Cyclerank [{reference}]"] = cyclerank(
                amazon_graph, reference, max_cycle_length=CYCLERANK_K, scoring="exp"
            )
            columns[f"Pers.PageRank [{reference}]"] = personalized_pagerank(
                amazon_graph, reference, alpha=ALPHA
            )
        return ComparisonTable.from_rankings(
            columns,
            k=5,
            title=(
                "Table II (reproduced): top-5 items by PR (a=0.85), CR (K=5, exp) and "
                "PPR (a=0.85) on the synthetic Amazon co-purchase graph"
            ),
        )

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report = write_report("table2_amazon.txt", table.to_text(show_scores=False))
    assert report.exists()

    # The headline observation of Table II: PPR suggests the Harry Potter
    # series for the Tolkien query, CycleRank does not.
    tolkien_ppr = table.column("Pers.PageRank [The Fellowship of the Ring]")
    tolkien_cyclerank = table.column("Cyclerank [The Fellowship of the Ring]")
    assert any("Harry Potter" in label for label in tolkien_ppr)
    assert not any("Harry Potter" in label for label in tolkien_cyclerank)
