"""Ablation — how much do the personalized algorithms agree with each other?

The demo's algorithm-comparison use case is qualitative (side-by-side top-5
columns); this ablation condenses it into pairwise agreement matrices over
all personalized algorithms — the seven of the paper plus the extension
algorithms registered on top (approximate PPR, rooted HITS, personalized
Katz) — for the paper's reference nodes.

Expected shape (asserted): the walk-based family (Personalized PageRank, its
push and Monte-Carlo approximations, personalized Katz) clusters together,
while CycleRank sits apart from Personalized PageRank — the disagreement
Tables I and II illustrate.
"""

from __future__ import annotations

import pytest

from repro.algorithms.registry import get_algorithm
from repro.analysis.agreement import agreement_matrix

from _harness import write_report

#: Personalized algorithms compared, with per-algorithm parameters chosen to
#: match the paper's Table I settings where applicable.
ALGORITHMS = {
    "Cyclerank": ("cyclerank", {"k": 3, "sigma": "exp"}),
    "Pers. PageRank": ("personalized-pagerank", {"alpha": 0.85}),
    "PPR (push)": ("ppr-push", {"alpha": 0.85, "epsilon": 1e-8}),
    "PPR (Monte Carlo)": ("ppr-montecarlo", {"alpha": 0.85, "num_walks": 20000}),
    "Pers. CheiRank": ("personalized-cheirank", {"alpha": 0.85}),
    "Pers. 2DRank": ("personalized-2drank", {"alpha": 0.85}),
    "Pers. HITS": ("personalized-hits", {"alpha": 0.85}),
    "Pers. Katz": ("personalized-katz", {"beta": 0.01}),
}

REFERENCES = ("Freddie Mercury", "Pasta")


def _rankings_for(graph, reference):
    rankings = {}
    for display_name, (registry_name, parameters) in ALGORITHMS.items():
        algorithm = get_algorithm(registry_name)
        rankings[display_name] = algorithm.run(graph, source=reference, parameters=parameters)
    return rankings


@pytest.mark.benchmark(group="ablation-agreement")
@pytest.mark.parametrize("reference", REFERENCES)
def test_bench_agreement_matrix(benchmark, enwiki_2018, reference):
    """Time running all personalized algorithms + building the agreement matrix."""

    def run():
        return agreement_matrix(_rankings_for(enwiki_2018, reference), measure="overlap", k=10)

    matrix = benchmark.pedantic(run, rounds=1, iterations=1)
    # The exact solver and its push approximation must be nearly interchangeable.
    assert matrix.value("Pers. PageRank", "PPR (push)") >= 0.8
    # CycleRank must disagree with PPR more than the PPR approximations do.
    assert matrix.value("Cyclerank", "Pers. PageRank") < matrix.value(
        "PPR (push)", "Pers. PageRank"
    )


@pytest.mark.benchmark(group="ablation-agreement")
def test_regenerate_agreement_report(benchmark, enwiki_2018):
    """Write the agreement matrices for both Table-I references."""

    def build_report() -> str:
        sections = []
        for reference in REFERENCES:
            matrix = agreement_matrix(
                _rankings_for(enwiki_2018, reference), measure="overlap", k=10
            )
            sections.append(f"Reference {reference!r}\n{'-' * 40}\n{matrix.to_text()}")
            best = matrix.most_similar_pair()
            worst = matrix.least_similar_pair()
            sections.append(
                f"most similar pair:  {best[0]} / {best[1]} ({best[2]:.2f})\n"
                f"least similar pair: {worst[0]} / {worst[1]} ({worst[2]:.2f})"
            )
        return "\n\n".join(sections)

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    report = write_report("ablation_agreement.txt", content)
    assert report.exists()
