"""Ablation — CycleRank's two design choices: the cycle-length bound K and σ(n).

The paper fixes K=3 for Wikipedia, K=5 for the sparser Amazon graph, and
states that the exponential damping σ(n)=e⁻ⁿ was "experimentally found to be
the best choice".  This ablation sweeps both knobs on the synthetic enwiki
snapshot and records:

* the runtime growth as K increases (cycle enumeration is exponential in K,
  which is why the paper keeps K small);
* how much the top-5 changes with K (measured against the K=3 reference);
* how the four scoring functions reorder the results while leaving the
  support (which nodes get a positive score) unchanged.

Results are written to ``benchmarks/output/ablation_cyclerank.txt``.
"""

from __future__ import annotations

import pytest

from repro.algorithms.cyclerank import CycleRankStatistics, cyclerank
from repro.ranking.metrics import overlap_at_k
from repro.scoring import available_scoring_functions

from _harness import write_report

REFERENCE = "Freddie Mercury"
K_VALUES = (2, 3, 4, 5)
SCORING_FUNCTIONS = tuple(available_scoring_functions())


@pytest.mark.benchmark(group="ablation-cyclerank-k")
@pytest.mark.parametrize("k", K_VALUES)
def test_bench_cyclerank_k_sweep(benchmark, enwiki_2018, k):
    """Time CycleRank as the maximum cycle length K grows."""
    ranking = benchmark(
        cyclerank, enwiki_2018, REFERENCE, max_cycle_length=k, scoring="exp"
    )
    assert ranking.top_labels(1) == [REFERENCE]


@pytest.mark.benchmark(group="ablation-cyclerank-sigma")
@pytest.mark.parametrize("sigma", SCORING_FUNCTIONS)
def test_bench_cyclerank_scoring_sweep(benchmark, enwiki_2018, sigma):
    """Time CycleRank under each scoring function (K fixed at 3)."""
    ranking = benchmark(
        cyclerank, enwiki_2018, REFERENCE, max_cycle_length=3, scoring=sigma
    )
    assert ranking.top_labels(1) == [REFERENCE]


@pytest.mark.benchmark(group="ablation-cyclerank-report")
def test_regenerate_cyclerank_ablation_report(benchmark, enwiki_2018):
    """Write the K / sigma ablation summary to benchmarks/output/."""

    def build_report() -> str:
        lines = [
            "CycleRank ablation on the synthetic enwiki 2018-03-01 snapshot",
            f"reference article: {REFERENCE!r}",
            "=" * 70,
            "",
            "K sweep (sigma = exp):",
            f"{'K':>3}  {'cycles':>8}  {'nodes>0':>8}  {'top-5 overlap with K=3':>24}",
        ]
        baseline = cyclerank(enwiki_2018, REFERENCE, max_cycle_length=3, scoring="exp")
        for k in K_VALUES:
            statistics = CycleRankStatistics()
            ranking = cyclerank(
                enwiki_2018, REFERENCE, max_cycle_length=k, scoring="exp",
                statistics=statistics,
            )
            overlap = overlap_at_k(ranking, baseline, 5)
            lines.append(
                f"{k:>3}  {statistics.total_cycles:>8}  {statistics.nodes_on_cycles:>8}  "
                f"{overlap:>24.2f}"
            )
        lines.extend([
            "",
            "Scoring-function sweep (K = 3):",
            f"{'sigma':>6}  {'top-5 (reference excluded)'}",
        ])
        support_sizes = set()
        for sigma in SCORING_FUNCTIONS:
            ranking = cyclerank(enwiki_2018, REFERENCE, max_cycle_length=3, scoring=sigma)
            support_sizes.add(ranking.nonzero_count())
            top = ", ".join(ranking.top_labels(5, exclude=(REFERENCE,)))
            lines.append(f"{sigma:>6}  {top}")
        lines.append("")
        lines.append(
            f"support size (nodes with positive score) is identical for every sigma: "
            f"{sorted(support_sizes)}"
        )
        assert len(support_sizes) == 1
        return "\n".join(lines)

    content = benchmark.pedantic(build_report, rounds=1, iterations=1)
    report = write_report("ablation_cyclerank.txt", content)
    assert report.exists()
