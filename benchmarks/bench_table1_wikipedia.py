"""Table I — Top-5 by PageRank, CycleRank and Personalized PageRank on enwiki.

Paper parameters: PageRank with alpha=0.85, CycleRank with K=3 and
sigma=e^-n, Personalized PageRank with alpha=0.3; reference articles
"Freddie Mercury" and "Pasta" on the English Wikipedia snapshot of
2018-03-01.

The benchmarks time each algorithm run on the synthetic snapshot; the module
also writes the regenerated table to ``benchmarks/output/table1_wikipedia.txt``
and asserts the published shape: the PageRank column is made of globally
central articles, the CycleRank columns stay inside the reference's topical
neighbourhood, and the PPR columns promote at least one node with a very
high global in-degree.
"""

from __future__ import annotations

import pytest

from repro.algorithms.cyclerank import cyclerank
from repro.algorithms.pagerank import pagerank
from repro.algorithms.personalized_pagerank import personalized_pagerank
from repro.datasets.seeds import WIKIPEDIA_GLOBAL_HUBS, WIKIPEDIA_TOPICS
from repro.ranking.comparison import ComparisonTable

from _harness import write_report

REFERENCES = ("Freddie Mercury", "Pasta")
PAGERANK_ALPHA = 0.85
PPR_ALPHA = 0.3
CYCLERANK_K = 3


@pytest.mark.benchmark(group="table1-wikipedia")
def test_bench_pagerank_enwiki(benchmark, enwiki_2018):
    """Time the global PageRank column of Table I."""
    ranking = benchmark(pagerank, enwiki_2018, alpha=PAGERANK_ALPHA)
    assert set(ranking.top_labels(5)) <= set(WIKIPEDIA_GLOBAL_HUBS)


@pytest.mark.benchmark(group="table1-wikipedia")
@pytest.mark.parametrize("reference", REFERENCES)
def test_bench_cyclerank_enwiki(benchmark, enwiki_2018, reference):
    """Time the CycleRank columns of Table I (K=3, sigma=e^-n)."""
    ranking = benchmark(
        cyclerank, enwiki_2018, reference, max_cycle_length=CYCLERANK_K, scoring="exp"
    )
    assert ranking.top_labels(1) == [reference]
    topical = set(WIKIPEDIA_TOPICS[reference].all_nodes())
    assert set(ranking.top_labels(5, exclude=(reference,))) <= topical


@pytest.mark.benchmark(group="table1-wikipedia")
@pytest.mark.parametrize("reference", REFERENCES)
def test_bench_personalized_pagerank_enwiki(benchmark, enwiki_2018, reference):
    """Time the Personalized PageRank columns of Table I (alpha=0.3)."""
    ranking = benchmark(personalized_pagerank, enwiki_2018, reference, alpha=PPR_ALPHA)
    assert ranking.top_labels(1) == [reference]


@pytest.mark.benchmark(group="table1-wikipedia")
def test_regenerate_table1(benchmark, enwiki_2018):
    """Regenerate Table I end-to-end and write it to benchmarks/output/."""

    def build_table() -> ComparisonTable:
        columns = {"PageRank": pagerank(enwiki_2018, alpha=PAGERANK_ALPHA)}
        for reference in REFERENCES:
            columns[f"Cyclerank [{reference}]"] = cyclerank(
                enwiki_2018, reference, max_cycle_length=CYCLERANK_K, scoring="exp"
            )
            columns[f"Pers.PageRank [{reference}]"] = personalized_pagerank(
                enwiki_2018, reference, alpha=PPR_ALPHA
            )
        return ComparisonTable.from_rankings(
            columns,
            k=5,
            title=(
                "Table I (reproduced): top-5 articles by PR (a=0.85), CR (K=3, exp) and "
                "PPR (a=0.3) on the synthetic enwiki 2018-03-01 snapshot"
            ),
        )

    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    report = write_report("table1_wikipedia.txt", table.to_text(show_scores=False))
    assert report.exists()

    # Shape assertions mirroring the paper's discussion of Table I.
    for reference in REFERENCES:
        cyclerank_top = set(table.column(f"Cyclerank [{reference}]"))
        ppr_top = set(table.column(f"Pers.PageRank [{reference}]"))
        assert cyclerank_top != ppr_top
        # PPR promotes at least one node outside the reference's core
        # neighbourhood with a very high global in-degree.
        core = set(WIKIPEDIA_TOPICS[reference].core) | {reference}
        in_degrees = enwiki_2018.in_degrees()
        median = sorted(in_degrees)[len(in_degrees) // 2]
        promoted = [label for label in ppr_top if label not in core]
        assert any(
            enwiki_2018.in_degree(label) >= 5 * max(median, 1) for label in promoted
        )
