"""Figure 1 — the platform architecture and the five-step task lifecycle.

Figure 1 of the paper is the component diagram (datastore, API gateway,
computational nodes, Web UI); the accompanying text defines the task
lifecycle: (1) the Task Builder assembles a task, (2) the Scheduler fetches
the dataset and invokes an Executor node, (3) the computation is off-loaded
to the workers while the Status component polls, (4) results and logs are
written to the datastore, (5) the API returns the results to the Web UI.

The benchmarks time that full lifecycle end-to-end (as the interactive demo
experiences it) and its per-component pieces, and write a trace of one run to
``benchmarks/output/fig1_platform_lifecycle.txt``.
"""

from __future__ import annotations

import pytest

from repro.datasets.catalog import DatasetCatalog
from repro.datasets.wikipedia import generate_wikilink_graph
from repro.platform.datastore import DataStore
from repro.platform.gateway import ApiGateway
from repro.platform.tasks import TaskState
from repro.platform.webui import WebUI

from _harness import write_report


@pytest.fixture(scope="module")
def bench_catalog(enwiki_2018):
    """A catalog holding the Table-I dataset plus a smaller edition."""
    catalog = DatasetCatalog()
    catalog.register_graph("enwiki-2018", enwiki_2018, family="wikipedia",
                           description="synthetic enwiki 2018-03-01")
    catalog.register_graph(
        "nlwiki-2018",
        generate_wikilink_graph("nl", "2018-03-01"),
        family="wikipedia",
        description="synthetic nlwiki 2018-03-01",
    )
    return catalog


QUERIES = [
    {"dataset_id": "enwiki-2018", "algorithm": "cyclerank",
     "source": "Fake news", "parameters": {"k": 3, "sigma": "exp"}},
    {"dataset_id": "enwiki-2018", "algorithm": "personalized-pagerank",
     "source": "Fake news", "parameters": {"alpha": 0.3}},
    {"dataset_id": "enwiki-2018", "algorithm": "pagerank",
     "parameters": {"alpha": 0.3}},
]


@pytest.mark.benchmark(group="fig1-platform")
def test_bench_full_lifecycle_async(benchmark, bench_catalog):
    """Time the asynchronous lifecycle: submit, execute on workers, poll, fetch."""
    gateway = ApiGateway(catalog=bench_catalog, num_workers=2)

    def lifecycle() -> str:
        comparison_id = gateway.run_queries(QUERIES, synchronous=False)
        gateway.wait_for(comparison_id, timeout_seconds=120)
        table = gateway.get_comparison_table(comparison_id, k=5)
        assert table.rows[0][0] == "Fake news"
        return comparison_id

    try:
        comparison_id = benchmark.pedantic(lifecycle, rounds=3, iterations=1)
        assert gateway.get_status(comparison_id).state is TaskState.COMPLETED
    finally:
        gateway.shutdown()


@pytest.mark.benchmark(group="fig1-platform")
def test_bench_full_lifecycle_synchronous(benchmark, bench_catalog):
    """Time the synchronous lifecycle (single worker, no polling overhead)."""
    gateway = ApiGateway(catalog=bench_catalog, num_workers=1)

    def lifecycle() -> str:
        return gateway.run_queries(QUERIES, synchronous=True)

    try:
        comparison_id = benchmark.pedantic(lifecycle, rounds=3, iterations=1)
        assert len(gateway.get_rankings(comparison_id)) == len(QUERIES)
    finally:
        gateway.shutdown()


@pytest.mark.benchmark(group="fig1-platform")
def test_bench_gateway_discovery_endpoints(benchmark, bench_catalog):
    """Time the discovery endpoints the Web UI calls to populate its forms."""
    gateway = ApiGateway(catalog=bench_catalog, num_workers=1)

    def discover():
        datasets = gateway.list_datasets()
        algorithms = gateway.list_algorithms()
        return datasets, algorithms

    try:
        datasets, algorithms = benchmark(discover)
        assert len(datasets) == 2
        assert len(algorithms) >= 7
    finally:
        gateway.shutdown()


@pytest.mark.benchmark(group="fig1-platform")
def test_bench_datastore_result_round_trip(benchmark):
    """Time storing and reading back one serialised result (step 4 of the lifecycle)."""
    datastore = DataStore()
    payload = {"rankings": {str(i): {"scores": list(range(100))} for i in range(3)}}

    counter = {"value": 0}

    def round_trip():
        counter["value"] += 1
        result_id = f"result-{counter['value']}"
        datastore.put_result(result_id, payload)
        return datastore.get_result(result_id)

    stored = benchmark(round_trip)
    assert "rankings" in stored


@pytest.mark.benchmark(group="fig1-platform")
def test_regenerate_fig1_trace(benchmark, bench_catalog):
    """Record one full lifecycle trace (logs + rendered results) as the figure artefact."""
    gateway = ApiGateway(catalog=bench_catalog, num_workers=2)

    def traced_lifecycle() -> str:
        comparison_id = gateway.run_queries(QUERIES, synchronous=False)
        gateway.wait_for(comparison_id, timeout_seconds=120)
        return comparison_id

    try:
        comparison_id = benchmark.pedantic(traced_lifecycle, rounds=1, iterations=1)
        ui = WebUI(gateway)
        lines = [
            "Figure 1 (reproduced): one pass through the platform lifecycle",
            "=" * 70,
            "",
            "Rendered results view:",
            ui.render_results(comparison_id, k=5),
            "",
            "Execution log (datastore):",
            *(f"  {line}" for line in gateway.get_logs(comparison_id)),
        ]
        report = write_report("fig1_platform_lifecycle.txt", "\n".join(lines))
        assert report.exists()
        progress = gateway.get_status(comparison_id)
        assert progress.state is TaskState.COMPLETED
        assert progress.completed_queries == len(QUERIES)
    finally:
        gateway.shutdown()
