"""Temporal dataset comparison — the same query across yearly snapshots.

The paper's dataset-comparison section notes that "a similar analysis can
also be performed by comparing snapshots of a graph at different points in
time, another functionality available in the demo".  This benchmark runs
CycleRank for "Freddie Mercury" on the four yearly snapshots of the English
edition (2003, 2008, 2013, 2018), times the per-snapshot queries and the
full comparison, and writes the snapshot table (with growth statistics and
head stability) to ``benchmarks/output/dataset_snapshots.txt``.

Expected shape: the graph grows monotonically across snapshots, the
reference stays at rank 1 everywhere, and the head of the ranking is largely
stable between consecutive snapshots (overlap@5 well above 0.5).
"""

from __future__ import annotations

import pytest

from repro.algorithms.cyclerank import cyclerank
from repro.analysis.temporal import snapshot_comparison
from repro.datasets.seeds import WIKIPEDIA_SNAPSHOTS
from repro.datasets.wikipedia import generate_wikilink_graph

from _harness import write_report

REFERENCE = "Freddie Mercury"
#: Oldest-to-newest order for the temporal comparison.
SNAPSHOT_ORDER = tuple(reversed(WIKIPEDIA_SNAPSHOTS))


@pytest.fixture(scope="module")
def yearly_snapshots():
    return {
        snapshot: generate_wikilink_graph("en", snapshot) for snapshot in SNAPSHOT_ORDER
    }


@pytest.mark.benchmark(group="dataset-snapshots")
@pytest.mark.parametrize("snapshot", SNAPSHOT_ORDER)
def test_bench_cyclerank_per_snapshot(benchmark, yearly_snapshots, snapshot):
    """Time the CycleRank query on each yearly snapshot."""
    graph = yearly_snapshots[snapshot]
    ranking = benchmark(cyclerank, graph, REFERENCE, max_cycle_length=3, scoring="exp")
    assert ranking.top_labels(1) == [REFERENCE]


@pytest.mark.benchmark(group="dataset-snapshots")
def test_regenerate_snapshot_comparison(benchmark, yearly_snapshots):
    """Run the full temporal comparison and write the report."""

    def compare():
        return snapshot_comparison(
            yearly_snapshots, "cyclerank", source=REFERENCE,
            parameters={"k": 3, "sigma": "exp"},
        )

    comparison = benchmark.pedantic(compare, rounds=1, iterations=1)
    report = write_report(
        "dataset_snapshots.txt",
        "Temporal dataset comparison (reproduced): CycleRank (K=3, exp) for "
        f"{REFERENCE!r} across enwiki snapshots\n" + "=" * 70 + "\n\n"
        + comparison.to_text(5),
    )
    assert report.exists()

    # Shape assertions: monotone growth and a largely stable head.
    node_counts = [comparison.graph_sizes[s]["nodes"] for s in comparison.snapshots]
    assert node_counts == sorted(node_counts)
    stability = comparison.head_stability(5)
    assert stability, "at least two snapshots must contain the reference"
    assert all(value >= 0.4 for value in stability.values())
